"""Documentation checks: resolvable links + executable code blocks.

Run from the repository root (CI's docs job and ``tests/docs`` both do)::

    PYTHONPATH=src python tools/check_docs.py

Checks, over ``README.md`` and ``docs/*.md``:

1. **Links resolve** — every relative markdown link points at an existing
   file (or directory), and every anchor (``#fragment``, same-file or
   cross-file) matches a heading in the target document using GitHub's
   slug rules.  External (``http(s)://``, ``mailto:``) links are not
   fetched.
2. **Doctests pass** — every fenced ```` ```python ```` block containing
   interpreter examples (``>>>``) is executed with :mod:`doctest`, exactly
   as ``python -m doctest`` would run a text file.
3. **Generated pages are fresh** — ``docs/scenarios.md`` matches the
   rendering of the scenario registry, and ``docs/validation.md``
   regenerates byte-identically from the committed campaign artifact
   ``docs/validation_campaign.json``.
4. **Spec snippets parse** — every fenced ```` ```json ```` block in
   ``docs/api.md`` is a valid experiment spec: it must load with
   ``json.loads`` and construct through ``ExperimentSpec.from_dict``.

Exit status 0 when everything passes, 1 otherwise (with one line per
problem).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: ``[text](target)`` markdown links (images share the syntax via ``![``).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ATX headings, used to build the set of valid anchors per document.
_HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code blocks with an info string.
_FENCE_PATTERN = re.compile(r"^```(\w*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def repo_root() -> Path:
    """The repository root (this file lives in ``<root>/tools/``)."""
    return Path(__file__).resolve().parents[1]


def documentation_files(root: Path) -> List[Path]:
    """The markdown files the checks cover."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text.

    Lowercase, punctuation dropped, spaces become hyphens; existing hyphens
    survive (so ``--workers`` contributes ``--workers``).
    """
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set:
    """All valid anchor slugs of a markdown document."""
    slugs = set()
    for match in _HEADING_PATTERN.finditer(markdown):
        slugs.add(github_slug(match.group(1)))
    return slugs


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:"))


def check_links(path: Path, root: Path) -> List[str]:
    """Problems with the markdown links of one file (empty when clean)."""
    problems: List[str] = []
    markdown = path.read_text(encoding="utf-8")
    for match in _LINK_PATTERN.finditer(markdown):
        target = match.group(1)
        if _is_external(target):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}: broken link -> {target}")
                continue
            anchor_source = resolved if resolved.is_file() else None
        else:
            anchor_source = path  # same-document anchor
        if anchor and anchor_source is not None and anchor_source.suffix == ".md":
            slugs = heading_slugs(anchor_source.read_text(encoding="utf-8"))
            if anchor.lower() not in slugs:
                problems.append(
                    f"{path.relative_to(root)}: broken anchor -> {target} "
                    f"(no heading slug {anchor!r} in {anchor_source.name})"
                )
    return problems


def python_doctest_blocks(markdown: str) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, source)`` for python blocks with ``>>>`` examples."""
    for match in _FENCE_PATTERN.finditer(markdown):
        language, body = match.group(1), match.group(2)
        if language not in ("python", "pycon"):
            continue
        if ">>>" not in body:
            continue
        line = markdown.count("\n", 0, match.start()) + 1
        yield line, body


def check_doctests(path: Path, root: Path) -> List[str]:
    """Doctest failures in one file's python code blocks (empty when clean)."""
    problems: List[str] = []
    markdown = path.read_text(encoding="utf-8")
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
    for line, body in python_doctest_blocks(markdown):
        name = f"{path.relative_to(root)}:{line}"
        test = parser.get_doctest(body, {}, name, str(path), line)
        output: List[str] = []
        runner.run(test, out=output.append)
        if runner.failures:
            problems.append(f"{name}: doctest failed\n{''.join(output)}")
            runner = doctest.DocTestRunner(
                verbose=False, optionflags=doctest.ELLIPSIS
            )  # fresh counters for the next block
    return problems


def check_generated(root: Path) -> List[str]:
    """Stale generated pages under ``root`` (empty when clean).

    Each generated page is only checked when it exists under ``root``, so
    the checker stays usable on synthetic documentation trees (the unit
    tests exercise it on temporary directories).
    """
    problems: List[str] = []

    scenarios_page = root / "docs" / "scenarios.md"
    if scenarios_page.exists():
        from repro.scenarios.docs import render_scenarios_markdown

        if scenarios_page.read_text(encoding="utf-8") != render_scenarios_markdown():
            problems.append(
                f"{scenarios_page.relative_to(root)}: stale; regenerate with "
                "`PYTHONPATH=src python -m repro.scenarios.docs`"
            )

    validation_page = root / "docs" / "validation.md"
    if validation_page.exists():
        artifact = root / "docs" / "validation_campaign.json"
        if not artifact.exists():
            problems.append(
                f"{validation_page.relative_to(root)}: campaign artifact "
                f"{artifact.relative_to(root)} is missing"
            )
        else:
            from repro.exceptions import ValidationError
            from repro.validation.artifacts import load_campaign_dict
            from repro.validation.report import render_validation_markdown

            try:
                rendering = render_validation_markdown(load_campaign_dict(artifact))
            except ValidationError as error:
                problems.append(
                    f"{artifact.relative_to(root)}: unreadable campaign "
                    f"artifact — {error}"
                )
            else:
                if validation_page.read_text(encoding="utf-8") != rendering:
                    problems.append(
                        f"{validation_page.relative_to(root)}: not regenerable from "
                        f"{artifact.relative_to(root)}; regenerate with "
                        "`PYTHONPATH=src python -m repro.validation.report`"
                    )
    return problems


def json_spec_blocks(markdown: str) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, source)`` for fenced ``json`` blocks."""
    for match in _FENCE_PATTERN.finditer(markdown):
        language, body = match.group(1), match.group(2)
        if language != "json":
            continue
        line = markdown.count("\n", 0, match.start()) + 1
        yield line, body


#: Pages whose fenced ``json`` blocks must all be loadable experiment
#: specs.  Response payloads and other non-spec JSON on these pages use a
#: ``jsonc`` fence instead, which this check deliberately skips.
_SPEC_SNIPPET_PAGES = ("docs/api.md", "docs/service.md", "docs/solver.md")


def check_spec_snippets(root: Path) -> List[str]:
    """Invalid experiment-spec snippets in the spec pages (empty when clean).

    The API and service documentation promise that every JSON block is a
    loadable :class:`~repro.api.spec.ExperimentSpec`; this check keeps the
    promise honest by constructing each one through
    ``ExperimentSpec.from_dict``.
    """
    import json

    from repro.api import ExperimentSpec
    from repro.exceptions import ReproError

    problems: List[str] = []
    for page_name in _SPEC_SNIPPET_PAGES:
        page = root / page_name
        if not page.exists():
            continue
        markdown = page.read_text(encoding="utf-8")
        for line, body in json_spec_blocks(markdown):
            name = f"{page.relative_to(root)}:{line}"
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as error:
                problems.append(f"{name}: spec snippet is not valid JSON — {error}")
                continue
            try:
                ExperimentSpec.from_dict(payload)
            except ReproError as error:
                problems.append(f"{name}: spec snippet does not parse — {error}")
    return problems


def run_checks(root: Path) -> List[str]:
    """All documentation problems under ``root`` (empty when clean)."""
    problems: List[str] = []
    for path in documentation_files(root):
        problems.extend(check_links(path, root))
        problems.extend(check_doctests(path, root))
    problems.extend(check_generated(root))
    problems.extend(check_spec_snippets(root))
    return problems


def main() -> int:
    root = repo_root()
    files = documentation_files(root)
    problems = run_checks(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs check: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
