"""Service identity check: the job server answers exactly like ``repro run``.

For every spec in ``examples/specs/*.json`` (or ``--specs``), submit the
spec to a running experiment service through the client, wait for the job,
and assert:

1. **Byte-identity** — the served result equals the bytes a direct
   in-process ``run(spec)`` produces (``ResultSet.json_text()``), i.e. the
   service is a transport, not a different engine.  Skip with
   ``--skip-direct``.
2. **Warmth** (``--expect-warm``) — the finished job's progress counters
   report zero fresh results (``store_misses == 0`` and
   ``store_puts == 0``): every answer came from the shared warm store.

With ``--url`` the check drives an already-running server (CI starts one
with ``repro-mac-game serve`` first).  Without it, the check is
self-contained: it starts an in-process service on ``--store`` (a
temporary directory by default), runs the cold pass, then restarts the
service with a fresh queue on the same store and runs the warm pass —
the acceptance criterion of the service PR in one command::

    PYTHONPATH=src python tools/check_service.py

Exit status 0 when everything holds, 1 otherwise (one line per problem).
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import ExperimentSpec, run as run_experiment  # noqa: E402
from repro.api.engine import runner_for  # noqa: E402
from repro.service import JobFailedError, ServiceClient  # noqa: E402


def direct_bytes(spec: ExperimentSpec) -> bytes:
    """What ``repro run spec.json --out`` would write (cold, no store)."""
    return run_experiment(spec, runner=runner_for(spec)).json_text().encode("utf-8")


def check_specs(
    client: ServiceClient,
    spec_paths: List[Path],
    expect_warm: bool,
    skip_direct: bool,
    timeout: float,
) -> List[str]:
    """Problems found submitting every spec (empty when clean)."""
    problems: List[str] = []
    for path in spec_paths:
        spec = ExperimentSpec.from_dict(json.loads(path.read_text()))
        job, created = client.submit(spec)
        job_id = str(job["job_id"])
        try:
            served = client.wait(job_id, timeout=timeout)
        except (JobFailedError, TimeoutError) as error:
            problems.append(f"{path.name}: job did not complete — {error}")
            continue
        verdicts = [f"{'new' if created else 'known'} job {job_id[:12]}…"]

        if not skip_direct:
            expected = direct_bytes(spec)
            if served != expected:
                problems.append(
                    f"{path.name}: served result differs from direct run "
                    f"({len(served)} vs {len(expected)} bytes)"
                )
            else:
                verdicts.append(f"byte-identical ({len(served)} bytes)")

        progress = client.status(job_id).get("progress", {})
        fresh = int(progress.get("store_misses", 0)) + int(
            progress.get("store_puts", 0)
        )
        if expect_warm:
            if fresh:
                problems.append(
                    f"{path.name}: expected a fully warm answer, saw "
                    f"{progress.get('store_misses', 0)} store misses / "
                    f"{progress.get('store_puts', 0)} puts"
                )
            else:
                verdicts.append("fully warm (zero fresh results)")
        else:
            verdicts.append(f"{fresh} fresh result(s)")
        print(f"== {path.name}: {', '.join(verdicts)}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running service (e.g. http://127.0.0.1:8642/v1); "
        "omit to start an in-process service and run both passes",
    )
    parser.add_argument(
        "--specs",
        default=str(REPO_ROOT / "examples" / "specs" / "*.json"),
        help="glob of spec files to submit (default: examples/specs/*.json)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory for the in-process service (default: a tempdir)",
    )
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help="assert every job reports zero fresh results",
    )
    parser.add_argument(
        "--skip-direct",
        action="store_true",
        help="skip the byte-identity comparison against a direct run",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="per-job completion timeout in seconds",
    )
    args = parser.parse_args(argv)

    spec_paths = [Path(path) for path in sorted(glob.glob(args.specs))]
    if not spec_paths:
        print(f"no spec files match {args.specs}", file=sys.stderr)
        return 1

    problems: List[str] = []
    if args.url:
        client = ServiceClient(args.url)
        problems += check_specs(
            client, spec_paths, args.expect_warm, args.skip_direct, args.timeout
        )
    else:
        from repro.service import ExperimentService

        store_dir = Path(args.store) if args.store else Path(tempfile.mkdtemp())
        print(f"# cold pass: in-process service on {store_dir}")
        with ExperimentService(store_dir=store_dir, workers=2) as service:
            problems += check_specs(
                ServiceClient(service.url),
                spec_paths,
                expect_warm=False,
                skip_direct=args.skip_direct,
                timeout=args.timeout,
            )
        print("# warm pass: fresh queue, same store")
        with ExperimentService(
            store_dir=store_dir, queue_dir=store_dir / "jobs-warm", workers=2
        ) as service:
            problems += check_specs(
                ServiceClient(service.url),
                spec_paths,
                expect_warm=True,
                skip_direct=True,
                timeout=args.timeout,
            )

    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"service check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"service check: {len(spec_paths)} spec(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
