"""Benchmark regression gate: fresh simulator throughput vs a baseline.

Run from the repository root (CI's bench-smoke job does, right after the
simulator benchmark regenerates ``BENCH_simulator.json``)::

    python tools/check_bench.py \
        --baseline benchmarks/BENCH_simulator.json \
        --fresh BENCH_simulator.json

Compares the per-protocol ``events_per_second`` of the fresh artifact
against the committed baseline:

* ratio below ``--fail-below`` (default 0.7×) → **regression**, exit 1;
* ratio above ``--warn-above`` (default 1.5×) → warning only — either the
  engine genuinely got faster (refresh the baseline) or the runner machine
  is not comparable, both worth a human look;
* anything in between → pass.

Protocols present in the baseline but missing from the fresh artifact are
failures (the bench silently losing coverage is itself a regression); new
protocols not yet in the baseline are reported but don't gate.

The artifact's ``batched`` section (the array-batched replication engine)
is gated the same way, plus an absolute floor: every batched protocol's
``speedup_vs_scalar`` must reach ``--min-batched-speedup`` (default 5×,
``0`` disables).  Repeatable ``--batched-speedup-floor NAME=RATIO`` flags
override the global floor per protocol (CI starts the freshly batched
dmac/scpmac kernels at 3×).  The speedup is a within-process ratio of the
two engines over the same seeds, so unlike raw throughput it is stable
across runner machines.

``--service BENCH_service.json`` additionally gates the experiment
service's warm-hit throughput against the absolute
``--min-service-warm-rps`` floor (no baseline needed: warm hits serve
stored bytes, so even a slow runner clears a conservative floor unless the
serving path itself regressed).

``--solver BENCH_solver.json`` gates the adaptive grid solver's aggregate
``evaluation_speedup`` against ``--min-solver-speedup`` (default 5×,
``0`` disables).  The speedup is a ratio of grid-point *counts* at a fixed
resolution — fully deterministic and machine-independent — so the floor is
hard: dropping below it means the refinement strategy itself regressed,
not the runner.

Throughput on shared CI runners is noisy, so the failure threshold is
deliberately loose: it catches "accidentally made the event loop 2× slower"
class regressions, not single-digit percentages.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Expected artifact identity (see ``benchmarks/bench_simulator.py``).
BENCH_SCHEMA = "repro.bench.simulator"
BENCH_SCHEMA_VERSION = 1

#: Service bench artifact identity (see ``benchmarks/bench_service.py``).
SERVICE_SCHEMA = "repro.bench.service"
SERVICE_SCHEMA_VERSION = 1

#: Solver bench artifact identity (see ``benchmarks/bench_solvers.py``).
SOLVER_SCHEMA = "repro.bench.solver"
SOLVER_SCHEMA_VERSION = 1


def load_artifact(path: Path) -> Dict[str, object]:
    """Load and sanity-check one ``BENCH_simulator.json`` artifact.

    Args:
        path: The artifact file.

    Returns:
        The decoded payload.

    Raises:
        SystemExit: with a one-line message when the file is missing,
            unparsable, or not a simulator bench artifact.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: bench artifact not found: {path}")
    except json.JSONDecodeError as error:
        sys.exit(f"error: {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        sys.exit(f"error: {path} is not a {BENCH_SCHEMA!r} artifact")
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        sys.exit(
            f"error: {path} has schema_version {payload.get('schema_version')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(payload.get("protocols"), dict):
        sys.exit(f"error: {path} has no per-protocol measurements")
    return payload


def throughputs(payload: Dict[str, object]) -> Dict[str, float]:
    """Per-protocol ``events_per_second``, skipping malformed entries."""
    result: Dict[str, float] = {}
    for name, row in payload["protocols"].items():  # type: ignore[union-attr]
        if isinstance(row, dict):
            value = row.get("events_per_second")
            if isinstance(value, (int, float)) and value > 0:
                result[str(name)] = float(value)
    return result


def batched_stats(payload: Dict[str, object]) -> Dict[str, Dict[str, float]]:
    """Per-protocol batched-engine stats; empty when the artifact predates
    the ``batched`` section (schema version 1 artifacts without it stay
    valid)."""
    section = payload.get("batched")
    result: Dict[str, Dict[str, float]] = {}
    if not isinstance(section, dict):
        return result
    for name, row in section.items():
        if not isinstance(row, dict):
            continue
        value = row.get("events_per_second")
        speedup = row.get("speedup_vs_scalar")
        if isinstance(value, (int, float)) and value > 0:
            result[str(name)] = {
                "events_per_second": float(value),
                "speedup_vs_scalar": (
                    float(speedup) if isinstance(speedup, (int, float)) else 0.0
                ),
            }
    return result


def parse_speedup_floor(spec: str) -> "tuple[str, float]":
    """Parse one ``--batched-speedup-floor NAME=RATIO`` argument."""
    name, separator, value = spec.partition("=")
    if not separator or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=RATIO, got {spec!r}"
        )
    try:
        ratio = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number") from None
    if ratio < 0:
        raise argparse.ArgumentTypeError(f"floor must be >= 0, got {ratio}")
    return name, ratio


def check_batched_speedups(
    fresh: Dict[str, Dict[str, float]],
    min_speedup: float,
    floors: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Enforce the absolute batched-vs-scalar speedup floor.

    Args:
        fresh: Freshly measured batched stats (:func:`batched_stats`).
        min_speedup: Required ``speedup_vs_scalar``; ``0`` disables.
        floors: Per-protocol overrides of ``min_speedup`` (a protocol's
            floor of ``0`` disables the check for it alone).

    Returns:
        The list of failure messages (empty when the floor holds).
    """
    failures: List[str] = []
    floors = floors or {}
    for name in sorted(fresh):
        floor = floors.get(name, min_speedup)
        if floor <= 0:
            continue
        speedup = fresh[name]["speedup_vs_scalar"]
        line = f"batched {name}: {speedup:.1f}x vs scalar (floor {floor:g}x)"
        if speedup < floor:
            failures.append(
                f"batched {name}: {speedup:.1f}x < {floor:g}x speedup floor"
            )
            print(f"FAIL {line}")
        else:
            print(f"OK   {line}")
    for name in sorted(set(floors) - set(fresh)):
        failures.append(
            f"batched {name}: speedup floor configured but protocol missing "
            f"from the fresh artifact"
        )
        print(f"FAIL batched {name}: floored protocol missing from fresh artifact")
    return failures


def load_service_artifact(path: Path) -> Dict[str, object]:
    """Load and sanity-check one ``BENCH_service.json`` artifact."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: service bench artifact not found: {path}")
    except json.JSONDecodeError as error:
        sys.exit(f"error: {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or payload.get("schema") != SERVICE_SCHEMA:
        sys.exit(f"error: {path} is not a {SERVICE_SCHEMA!r} artifact")
    if payload.get("schema_version") != SERVICE_SCHEMA_VERSION:
        sys.exit(
            f"error: {path} has schema_version {payload.get('schema_version')!r}, "
            f"expected {SERVICE_SCHEMA_VERSION}"
        )
    return payload


def check_service_bench(
    payload: Dict[str, object], min_warm_rps: float
) -> List[str]:
    """Enforce the experiment-service warm-hit throughput floor.

    Warm requests are served from the queue's result file — no solving —
    so unlike raw solver throughput an *absolute* floor travels across
    machines: anything below ``min_warm_rps`` means the HTTP/queue path
    itself regressed (e.g. an accidental re-execution per request).
    ``0`` disables the check.

    Returns:
        The list of failure messages (empty when the floor holds).
    """
    failures: List[str] = []
    warm_rps = payload.get("warm_requests_per_second")
    if not isinstance(warm_rps, (int, float)) or warm_rps <= 0:
        failures.append("service: artifact has no usable warm_requests_per_second")
        print("FAIL service: no usable warm_requests_per_second in artifact")
        return failures
    cold = payload.get("cold_latency_seconds")
    if isinstance(cold, (int, float)):
        print(f"NOTE service: cold submit->result latency {cold:.3f}s (not gated)")
    if min_warm_rps <= 0:
        print(f"NOTE service: warm hits {warm_rps:,.0f} req/s (floor disabled)")
        return failures
    line = f"service: warm hits {warm_rps:,.0f} req/s (floor {min_warm_rps:g})"
    if warm_rps < min_warm_rps:
        failures.append(
            f"service: {warm_rps:,.0f} warm req/s < {min_warm_rps:g} floor"
        )
        print(f"FAIL {line}")
    else:
        print(f"OK   {line}")
    return failures


def load_solver_artifact(path: Path) -> Dict[str, object]:
    """Load and sanity-check one ``BENCH_solver.json`` artifact."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: solver bench artifact not found: {path}")
    except json.JSONDecodeError as error:
        sys.exit(f"error: {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or payload.get("schema") != SOLVER_SCHEMA:
        sys.exit(f"error: {path} is not a {SOLVER_SCHEMA!r} artifact")
    if payload.get("schema_version") != SOLVER_SCHEMA_VERSION:
        sys.exit(
            f"error: {path} has schema_version {payload.get('schema_version')!r}, "
            f"expected {SOLVER_SCHEMA_VERSION}"
        )
    return payload


def check_solver_bench(
    payload: Dict[str, object], min_speedup: float
) -> List[str]:
    """Enforce the adaptive solver's aggregate evaluation-speedup floor.

    The speedup is nominal grid points over points actually evaluated at a
    fixed resolution — a deterministic count ratio, not a timing — so an
    absolute floor travels across machines.  Per-rule speedups are printed
    for context but only the aggregate gates: 1-D rules have almost no
    grid to skip, the aggregate is dominated by the rules where the full
    grid actually hurts.  ``0`` disables the check.

    Returns:
        The list of failure messages (empty when the floor holds).
    """
    failures: List[str] = []
    rules = payload.get("rules")
    if isinstance(rules, dict):
        for name in sorted(rules):
            row = rules[name]
            if not isinstance(row, dict):
                continue
            speedup = row.get("evaluation_speedup")
            if isinstance(speedup, (int, float)):
                print(
                    f"NOTE solver {name}: {speedup:.2f}x fewer evaluations "
                    f"({row.get('adaptive_evaluations')}/"
                    f"{row.get('nominal_evaluations')} grid points)"
                )
    aggregate = payload.get("aggregate")
    speedup = aggregate.get("evaluation_speedup") if isinstance(aggregate, dict) else None
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        failures.append("solver: artifact has no usable aggregate evaluation_speedup")
        print("FAIL solver: no usable aggregate evaluation_speedup in artifact")
        return failures
    if min_speedup <= 0:
        print(f"NOTE solver: aggregate {speedup:.2f}x (floor disabled)")
        return failures
    line = f"solver: aggregate {speedup:.2f}x fewer evaluations (floor {min_speedup:g}x)"
    if speedup < min_speedup:
        failures.append(
            f"solver: {speedup:.2f}x < {min_speedup:g}x evaluation-speedup floor"
        )
        print(f"FAIL {line}")
    else:
        print(f"OK   {line}")
    return failures


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    fail_below: float,
    warn_above: float,
) -> List[str]:
    """Compare throughputs and print one line per protocol.

    Args:
        baseline: Committed per-protocol events/second.
        fresh: Freshly measured per-protocol events/second.
        fail_below: Failure threshold on ``fresh / baseline``.
        warn_above: Warning threshold on ``fresh / baseline``.

    Returns:
        The list of failure messages (empty when the gate passes).
    """
    failures: List[str] = []
    for name in sorted(baseline):
        if name not in fresh:
            failures.append(f"{name}: missing from the fresh artifact")
            print(f"FAIL {name}: baseline has it, fresh artifact does not")
            continue
        ratio = fresh[name] / baseline[name]
        line = (
            f"{name}: {fresh[name]:,.0f} events/s vs baseline "
            f"{baseline[name]:,.0f} ({ratio:.2f}x)"
        )
        if ratio < fail_below:
            failures.append(f"{name}: {ratio:.2f}x < {fail_below}x floor")
            print(f"FAIL {line}")
        elif ratio > warn_above:
            print(f"WARN {line} — faster than the baseline; consider refreshing it")
        else:
            print(f"OK   {line}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"NOTE {name}: not in the baseline yet ({fresh[name]:,.0f} events/s)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/BENCH_simulator.json"),
        help="committed baseline artifact",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=Path("BENCH_simulator.json"),
        help="freshly generated artifact to gate",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=0.7,
        help="fail when fresh/baseline throughput drops below this ratio",
    )
    parser.add_argument(
        "--warn-above",
        type=float,
        default=1.5,
        help="warn when fresh/baseline throughput exceeds this ratio",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=5.0,
        help="required batched-engine speedup_vs_scalar (0 disables)",
    )
    parser.add_argument(
        "--batched-speedup-floor",
        type=parse_speedup_floor,
        action="append",
        default=[],
        metavar="NAME=RATIO",
        help="per-protocol override of --min-batched-speedup (repeatable); "
        "a floored protocol missing from the fresh artifact fails the gate",
    )
    parser.add_argument(
        "--service",
        type=Path,
        default=None,
        metavar="PATH",
        help="also gate a BENCH_service.json artifact "
        "(see benchmarks/bench_service.py)",
    )
    parser.add_argument(
        "--min-service-warm-rps",
        type=float,
        default=25.0,
        help="required warm-hit throughput of the experiment service in "
        "requests/second (absolute floor, no baseline; 0 disables)",
    )
    parser.add_argument(
        "--solver",
        type=Path,
        default=None,
        metavar="PATH",
        help="also gate a BENCH_solver.json artifact "
        "(see benchmarks/bench_solvers.py)",
    )
    parser.add_argument(
        "--min-solver-speedup",
        type=float,
        default=5.0,
        help="required aggregate evaluation_speedup of the adaptive grid "
        "solver (absolute floor, deterministic count ratio; 0 disables)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    if not 0 < args.fail_below <= 1:
        sys.exit(f"error: --fail-below must be in (0, 1], got {args.fail_below}")
    if args.warn_above < 1:
        sys.exit(f"error: --warn-above must be >= 1, got {args.warn_above}")
    if args.min_batched_speedup < 0:
        sys.exit(
            "error: --min-batched-speedup must be >= 0, "
            f"got {args.min_batched_speedup}"
        )

    baseline_payload = load_artifact(args.baseline)
    fresh_payload = load_artifact(args.fresh)
    baseline = throughputs(baseline_payload)
    fresh = throughputs(fresh_payload)
    if not baseline:
        sys.exit(f"error: {args.baseline} contains no usable throughput entries")

    failures = compare(baseline, fresh, args.fail_below, args.warn_above)

    # The batched section gates like the scalar one (a batched protocol
    # vanishing from the fresh artifact is a lost-coverage failure) …
    baseline_batched = batched_stats(baseline_payload)
    fresh_batched = batched_stats(fresh_payload)
    failures += compare(
        {f"batched/{name}": row["events_per_second"] for name, row in baseline_batched.items()},
        {f"batched/{name}": row["events_per_second"] for name, row in fresh_batched.items()},
        args.fail_below,
        args.warn_above,
    )
    # … plus the absolute speedup floor on the fresh measurements.
    failures += check_batched_speedups(
        fresh_batched,
        args.min_batched_speedup,
        dict(args.batched_speedup_floor),
    )

    gated = len(baseline) + len(set(baseline_batched) | set(fresh_batched))
    if args.service is not None:
        failures += check_service_bench(
            load_service_artifact(args.service), args.min_service_warm_rps
        )
        gated += 1
    if args.solver is not None:
        failures += check_solver_bench(
            load_solver_artifact(args.solver), args.min_solver_speedup
        )
        gated += 1

    if failures:
        print(f"bench gate: {len(failures)} regression(s) vs {args.baseline}")
        return 1
    print(f"bench gate: all {gated} gated entries within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
