"""Packet-level simulator benchmark: events/second per protocol.

Times one fixed scenario through all four MAC simulators (X-MAC, DMAC,
LMAC, SCP-MAC) and reports the event-engine throughput, then fans a batch
of independently seeded replications out over the runtime's process pool
and asserts the runtime guarantee extended to simulation workloads: the
per-replication metrics of a parallel fan-out are identical to a serial
loop.  A third stage times the array-batched replication engine against a
scalar loop over the same seeds, asserts the results are bit-identical,
and records the ``speedup_vs_scalar`` that ``tools/check_bench.py`` gates
(≥5× by default).  The measurements are written to
``BENCH_simulator.json`` (uploaded by the CI bench-smoke job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Tuple

from benchmarks.conftest import BENCH_WORKERS, assert_speedup_if_required, print_series
from repro.network.topology import RingTopology
from repro.protocols.registry import create_protocol
from repro.runtime import build_runner
from repro.scenario import Scenario
from repro.simulation import (
    SimulationConfig,
    simulate_protocol,
    simulate_protocol_batched,
)

#: Fixed benchmark environment: small enough to run routinely, busy enough
#: (one sample per node per minute) that the event loop dominates.
SCENARIO = Scenario(topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 60.0)

#: Mid-box parameter vector per protocol (the bench measures the engine,
#: not the optimizer, so any admissible point works).
PROTOCOL_PARAMS = {
    "xmac": {"wakeup_interval": 0.3},
    "dmac": {"frame_length": 1.0},
    "lmac": {"slot_length": 0.02, "slot_count": 9.0},
    "scpmac": {"poll_interval": 0.3},
}

HORIZON = 600.0
REPLICATIONS = 6

#: Protocols with an array-batched kernel (see repro.simulation.batched) —
#: since the engine-completion PR, all four of them.
BATCHED_PROTOCOLS = ("dmac", "lmac", "scpmac", "xmac")

ARTIFACT = Path("BENCH_simulator.json")


def _simulate(payload: Tuple[object, dict, SimulationConfig]) -> Tuple[int, float, float, int]:
    """One replication's comparison key (module-level for process pools)."""
    model, params, config = payload
    result = simulate_protocol(model, params, config)
    return (
        config.seed,
        result.bottleneck_ring_energy,
        result.max_ring_delay(),
        result.delivered_packets,
    )


def test_simulator_throughput_and_parallel_replications(benchmark):
    artifact = {
        "schema": "repro.bench.simulator",
        "schema_version": 1,
        "scenario": {"depth": 3, "density": 4, "sampling_period_s": 60.0},
        "horizon_s": HORIZON,
        "protocols": {},
        "replications": {},
        "batched": {},
    }

    # Stage 1: events/second per protocol, one seeded run each.
    rows = []
    for name, params in PROTOCOL_PARAMS.items():
        model = create_protocol(name, SCENARIO)
        started = time.perf_counter()
        result = simulate_protocol(model, params, SimulationConfig(horizon=HORIZON, seed=1))
        seconds = time.perf_counter() - started
        events_per_second = result.processed_events / seconds
        artifact["protocols"][name] = {
            "events": result.processed_events,
            "seconds": seconds,
            "events_per_second": events_per_second,
            "delivered": result.delivered_packets,
        }
        rows.append(
            {
                "protocol": name,
                "events": result.processed_events,
                "events_per_s": round(events_per_second),
                "delivery": round(result.delivery_ratio, 3),
            }
        )
        assert result.processed_events > 0
        assert result.delivered_packets > 0
    print_series("Simulator throughput (events/second)", rows)

    # Stage 2: replication fan-out, serial loop vs process pool — identical
    # metrics, submission order preserved.
    model = create_protocol("scpmac", SCENARIO)
    payloads = [
        (model, PROTOCOL_PARAMS["scpmac"], SimulationConfig(horizon=HORIZON, seed=seed))
        for seed in range(1, REPLICATIONS + 1)
    ]
    serial_started = time.perf_counter()
    serial = [_simulate(payload) for payload in payloads]
    serial_seconds = time.perf_counter() - serial_started

    parallel_started = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: build_runner(workers=BENCH_WORKERS, use_cache=False).executor.map_ordered(
            _simulate, payloads
        ),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = time.perf_counter() - parallel_started

    assert parallel == serial
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 1.0
    artifact["replications"] = {
        "count": REPLICATIONS,
        "workers": BENCH_WORKERS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
    }
    print_series(
        f"Replication fan-out {REPLICATIONS}x — serial {serial_seconds:.2f}s "
        f"vs process[{BENCH_WORKERS}] {parallel_seconds:.2f}s",
        [{"seed": seed, "energy": energy, "delay": delay} for seed, energy, delay, _ in serial],
    )

    # Stage 3: array-batched replication engine vs a scalar loop over the
    # same seeds — the differential guarantee (bit-identical results) and
    # the throughput win are measured back to back in the same process.
    batched_rows = []
    for name in BATCHED_PROTOCOLS:
        model = create_protocol(name, SCENARIO)
        params = PROTOCOL_PARAMS[name]
        configs = [
            SimulationConfig(horizon=HORIZON, seed=seed)
            for seed in range(1, REPLICATIONS + 1)
        ]

        scalar_started = time.perf_counter()
        scalar_results = [simulate_protocol(model, params, config) for config in configs]
        scalar_seconds = time.perf_counter() - scalar_started

        batched_started = time.perf_counter()
        batched_results = simulate_protocol_batched(model, params, configs)
        batched_seconds = time.perf_counter() - batched_started

        for config, scalar_result, batched_result in zip(
            configs, scalar_results, batched_results
        ):
            assert batched_result.engine == "batched", (
                f"{name} fell back to the scalar driver"
            )
            assert batched_result.as_dict() == scalar_result.as_dict(), (
                f"batched {name} diverged from scalar at seed {config.seed}"
            )
        total_events = sum(result.processed_events for result in batched_results)
        batched_eps = total_events / batched_seconds if batched_seconds > 0 else 0.0
        engine_speedup = scalar_seconds / batched_seconds if batched_seconds > 0 else 1.0
        artifact["batched"][name] = {
            "replications": REPLICATIONS,
            "events": total_events,
            "seconds": batched_seconds,
            "events_per_second": batched_eps,
            "scalar_seconds": scalar_seconds,
            "speedup_vs_scalar": engine_speedup,
        }
        batched_rows.append(
            {
                "protocol": name,
                "events": total_events,
                "events_per_s": round(batched_eps),
                "speedup": round(engine_speedup, 1),
            }
        )
        # Sanity floor only — the real ≥5x gate lives in tools/check_bench.py
        # (--min-batched-speedup), where it is configurable per runner.
        assert engine_speedup > 1.0, (
            f"batched {name} slower than scalar ({engine_speedup:.2f}x)"
        )
    print_series(
        f"Batched replication engine ({REPLICATIONS} seeds, bit-identical)",
        batched_rows,
    )

    ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    assert_speedup_if_required(speedup)
