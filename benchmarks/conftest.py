"""Shared helpers for the benchmark harness.

Every paper figure (and each ablation) has one benchmark per sub-plot.  The
benches use ``benchmark.pedantic(..., rounds=1, iterations=1)``: the solves
are deterministic, so a single round both times the reproduction and keeps
the whole harness fast enough to run routinely.  Each bench prints the same
rows/series the paper plots, and asserts the qualitative claims (who wins,
which way the trade-off point moves) so a regression in the models or the
solver fails the harness instead of silently changing the story.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table

#: Solver grid used by the figure benches (coarser than the library default;
#: the SLSQP polish makes the final optima identical to within tolerance).
BENCH_GRID = 48


def print_series(title: str, rows) -> None:
    """Print a labelled series table below the benchmark output."""
    print(f"\n=== {title} ===")
    print(format_table(rows))


@pytest.fixture(scope="session")
def figure_grid() -> int:
    """Grid resolution shared by the figure benches."""
    return BENCH_GRID
