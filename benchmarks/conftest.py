"""Shared helpers for the benchmark harness.

Every paper figure (and each ablation) has one benchmark per sub-plot.  The
benches use ``benchmark.pedantic(..., rounds=1, iterations=1)``: the solves
are deterministic, so a single round both times the reproduction and keeps
the whole harness fast enough to run routinely.  Each bench prints the same
rows/series the paper plots, and asserts the qualitative claims (who wins,
which way the trade-off point moves) so a regression in the models or the
solver fails the harness instead of silently changing the story.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.reporting import format_table

#: Solver grid used by the figure benches (coarser than the library default;
#: the SLSQP polish makes the final optima identical to within tolerance).
#: ``REPRO_BENCH_GRID`` overrides it, so CI can run a reduced-size smoke
#: pass of the same benches.
BENCH_GRID = int(os.environ.get("REPRO_BENCH_GRID", "48"))

#: Worker processes used by the parallel-speedup benches.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

#: Set ``REPRO_ASSERT_SPEEDUP=1`` to make the speedup benches *fail* below
#: this ratio (meaningful only on a multi-core runner; plain timing is
#: always printed).
SPEEDUP_FLOOR = 1.5


def assert_speedup_if_required(speedup: float) -> None:
    """Enforce the speedup floor when the environment opts in."""
    if os.environ.get("REPRO_ASSERT_SPEEDUP") == "1":
        assert speedup > SPEEDUP_FLOOR, (
            f"parallel speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )


def print_series(title: str, rows) -> None:
    """Print a labelled series table below the benchmark output."""
    print(f"\n=== {title} ===")
    print(format_table(rows))


@pytest.fixture(scope="session")
def figure_grid() -> int:
    """Grid resolution shared by the figure benches."""
    return BENCH_GRID


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker count shared by the parallel-speedup benches."""
    return BENCH_WORKERS
