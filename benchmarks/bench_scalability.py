"""Scalability benchmark (paper's claim, last sentence of the abstract).

The framework's players are the performance metrics, not the nodes, so the
solve cost must stay essentially flat as the network grows.  The bench times
the full game solve across network sizes from dozens to thousands of nodes
and asserts that the cost grows far slower than the node count.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.analysis.scalability import scalability_study
from repro.core.requirements import ApplicationRequirements
from repro.protocols import XMACModel

SIZES = [(3, 4), (5, 8), (8, 10), (12, 16)]
REQUIREMENTS = ApplicationRequirements(energy_budget=0.06, max_delay=6.0)


def _run_study():
    return scalability_study(
        XMACModel,
        sizes=SIZES,
        requirements=REQUIREMENTS,
        grid_points_per_dimension=48,
        random_starts=2,
    )


def test_scalability_with_network_size(benchmark):
    records = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    rows = [
        {
            "depth": record.depth,
            "density": record.density,
            "nodes": record.node_count,
            "solve [s]": record.solve_seconds,
            "E* [J/s]": record.energy_star,
            "L* [ms]": record.delay_star * 1000.0,
        }
        for record in records
    ]
    print_series("Scalability: game solve time vs network size (X-MAC)", rows)

    nodes = [record.node_count for record in records]
    times = [record.solve_seconds for record in records]
    assert nodes[-1] / nodes[0] > 40  # 48 nodes -> 2304 nodes
    # Solve time may wobble with solver iterations, but it must not scale
    # anywhere near linearly with the node count.
    assert times[-1] < 8.0 * max(times[0], 0.05)
    # Larger, deeper networks pay more delay at the agreement.
    assert records[-1].delay_star > records[0].delay_star
