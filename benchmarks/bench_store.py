"""Persistent result store benchmark: cold solve vs warm store replay.

Runs one requirement sweep twice against the same on-disk
:class:`~repro.store.ResultStore` — a cold pass that actually solves (and
writes behind), and a warm pass in a fresh process-equivalent state (new
cache instance, same store) that must answer everything from disk.  The
bench reports both timings and the replay speedup, and asserts the store's
two contracts:

* the warm pass performs **zero** fresh solves (every lookup hits), and
* the warm rows are identical to the cold rows — decoding a stored
  solution loses nothing.

A second timing measures raw store round-trip throughput (puts then gets
of the same records) to keep an eye on the codec + fsync-free atomic
rename cost itself.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_GRID, print_series
from repro.api import ExperimentSpec, run_experiment, runner_for
from repro.store import ResultStore

#: The swept delay bounds; enough units that replay wins measurably, and
#: comfortably feasible even at the CI smoke grid (infeasible cells are
#: recorded as data, not stored, so they would dirty the warm-pass counts).
DELAYS = [round(0.4 + 0.05 * step, 2) for step in range(12)]


def _sweep_spec() -> ExperimentSpec:
    return (
        ExperimentSpec.experiment("sweep", name="bench-store-sweep")
        .with_scenario("paper-default")
        .with_protocols("xmac", "lmac")
        .with_sweep("max_delay", DELAYS)
        .with_solver(grid_points=BENCH_GRID)
    )


def test_store_replay_beats_cold_solve(benchmark, tmp_path):
    spec = _sweep_spec()
    store_root = tmp_path / "store"

    started = time.perf_counter()
    cold = run_experiment(spec, runner=runner_for(spec, store=ResultStore(store_root)))
    cold_seconds = time.perf_counter() - started
    assert len(cold.ok_records) == len(cold.records), "sweep range must stay feasible"
    assert cold.metadata["store_puts"] == len(cold.records)

    def warm_pass():
        # Fresh store handle *and* fresh cache: the replay must come from
        # disk, exactly like a resumed run in a new process.
        runner = runner_for(spec, store=ResultStore(store_root))
        return run_experiment(spec, runner=runner)

    warm = benchmark.pedantic(warm_pass, rounds=1, iterations=1)
    warm_seconds = benchmark.stats.stats.mean

    assert warm.metadata["store_misses"] == 0
    assert warm.metadata["store_puts"] == 0
    assert warm.metadata["store_hits"] == len(warm.records)
    assert warm.rows() == cold.rows()

    print_series(
        f"store replay ({len(cold.records)} units, grid={BENCH_GRID})",
        [
            {
                "pass": "cold solve+put",
                "seconds": f"{cold_seconds:.3f}",
                "per_unit_ms": f"{1000 * cold_seconds / len(cold.records):.1f}",
            },
            {
                "pass": "warm replay",
                "seconds": f"{warm_seconds:.3f}",
                "per_unit_ms": f"{1000 * warm_seconds / len(warm.records):.1f}",
            },
            {
                "pass": "speedup",
                "seconds": f"{cold_seconds / max(warm_seconds, 1e-9):.1f}x",
                "per_unit_ms": "",
            },
        ],
    )


def test_store_roundtrip_throughput(benchmark, tmp_path):
    spec = _sweep_spec()
    seed_store = ResultStore(tmp_path / "seed")
    result = run_experiment(spec, runner=runner_for(spec, store=seed_store))
    records = [
        (digest, seed_store.get(digest)) for digest in seed_store.digests()
    ]
    assert records and all(payload is not None for _, payload in records)

    def roundtrip():
        target = ResultStore(tmp_path / "roundtrip")
        for digest, payload in records:
            target.put(digest, payload, kind="solve")
        return [target.get(digest) for digest, _ in records]

    replayed = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert replayed == [payload for _, payload in records]
    seconds = benchmark.stats.stats.mean
    print_series(
        "store round-trip",
        [
            {
                "records": len(records),
                "seconds": f"{seconds:.3f}",
                "records_per_second": f"{len(records) / max(seconds, 1e-9):,.0f}",
            }
        ],
    )
    assert result.metadata["store_puts"] == len(records)
