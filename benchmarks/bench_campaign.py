"""Monte-Carlo validation campaign benchmark.

Times a small campaign (2 scenarios × 2 protocols × 3 replications) serial
vs process-pool and asserts the runtime's core guarantee extended to the
simulation workload: the JSON artifact of a parallel campaign is
byte-identical to a serial one.  Also asserts the campaign's substantive
claim — every feasible cell agrees with its analytical prediction within
tolerance at the Nash bargaining point.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_GRID, BENCH_WORKERS, assert_speedup_if_required, print_series
from repro.runtime import build_runner
from repro.validation import CampaignSpec, campaign_to_json, run_campaign

SPEC = CampaignSpec(
    scenarios=("paper-default", "high-rate"),
    protocols=("xmac", "lmac"),
    replications=3,
    horizon=800.0,
    grid_points_per_dimension=min(BENCH_GRID, 40),
)


def test_campaign_parallel_equals_serial(benchmark):
    serial_started = time.perf_counter()
    serial = run_campaign(SPEC, build_runner(workers=1, use_cache=False))
    serial_seconds = time.perf_counter() - serial_started

    parallel_started = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_campaign(SPEC, build_runner(workers=BENCH_WORKERS, use_cache=False)),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = time.perf_counter() - parallel_started

    rows = serial.rows()
    print_series(
        f"Campaign {len(SPEC.scenarios)}×{len(SPEC.protocols)}×{SPEC.replications} "
        f"— serial {serial_seconds:.2f}s vs process[{BENCH_WORKERS}] "
        f"{parallel_seconds:.2f}s",
        rows,
    )

    # The artifact, not just the rows: byte identity across worker counts.
    assert campaign_to_json(serial) == campaign_to_json(parallel)
    # Every feasible cell validates the analytical model within tolerance.
    assert serial.feasible_cells
    assert serial.passed, [cell.scenario + "/" + cell.protocol for cell in serial.failed_cells]
    assert_speedup_if_required(serial_seconds / parallel_seconds)
