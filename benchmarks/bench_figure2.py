"""Figure 2 benchmark: E-L trade-off with Lmax fixed at 6 s, Ebudget swept.

One benchmark per sub-figure (2a X-MAC, 2b DMAC, 2c LMAC).  Each prints the
series the paper plots and asserts the paper's qualitative observation that
raising the energy budget moves the agreement in favour of the delay player
(``L*`` is non-increasing in ``Ebudget``).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.experiments.config import FIGURE_ENERGY_BUDGETS, FIGURE_MAX_DELAY_FIXED
from repro.experiments.figure2 import reproduce_figure2


def _run_protocol(protocol: str, grid: int):
    # use_cache=False: these benches time the actual solves.
    results = reproduce_figure2(
        protocols=(protocol,),
        energy_budgets=FIGURE_ENERGY_BUDGETS,
        max_delay=FIGURE_MAX_DELAY_FIXED,
        grid_points_per_dimension=grid,
        use_cache=False,
    )
    return results[protocol]


def _check_and_print(sweep, label: str) -> None:
    assert not sweep.infeasible_values, f"{label}: some Ebudget values were infeasible"
    assert len(sweep.solutions) == len(FIGURE_ENERGY_BUDGETS)
    stars = [solution.delay_star for solution in sweep.solutions]
    assert all(
        later <= earlier + 1e-9 for earlier, later in zip(stars, stars[1:])
    ), f"{label}: raising Ebudget must not increase the agreed delay"
    for budget, solution in zip(FIGURE_ENERGY_BUDGETS, sweep.solutions):
        assert solution.energy_star <= budget * 1.001
        assert solution.delay_star <= FIGURE_MAX_DELAY_FIXED * 1.001
        assert solution.delay_best <= solution.delay_star <= solution.delay_worst * 1.001
        assert abs(solution.bargaining.fairness_residual) < 0.1
    print_series(label, sweep.series())


@pytest.mark.parametrize(
    "protocol, subfigure",
    [("xmac", "Figure 2a (X-MAC)"), ("dmac", "Figure 2b (DMAC)"), ("lmac", "Figure 2c (LMAC)")],
)
def test_figure2(benchmark, figure_grid, protocol, subfigure):
    sweep = benchmark.pedantic(
        _run_protocol, args=(protocol, figure_grid), rounds=1, iterations=1
    )
    _check_and_print(sweep, subfigure)


def test_figure2_protocol_energy_ordering(benchmark, figure_grid):
    """At the largest budget, X-MAC's delay-optimal corner is the cheapest of
    the three protocols (the x-axis ranges of the paper's sub-figures)."""
    results = benchmark.pedantic(
        reproduce_figure2,
        kwargs={"grid_points_per_dimension": figure_grid, "use_cache": False},
        rounds=1,
        iterations=1,
    )
    worst_energy = {
        name: results[name].solutions[-1].energy_worst for name in ("xmac", "dmac", "lmac")
    }
    assert worst_energy["xmac"] < worst_energy["dmac"]
    assert worst_energy["xmac"] < worst_energy["lmac"]
