"""Bargaining-rule ablation: Nash vs Kalai–Smorodinsky vs egalitarian vs utilitarian.

The paper chooses the Nash Bargaining Solution.  This bench applies the other
classical rules to the same sampled energy-delay frontier (X-MAC, figure
scenario) and reports how the agreed operating point shifts, plus which
axioms each rule satisfies on this game — the quantitative justification for
the paper's choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.experiments.config import figure_scenario
from repro.gametheory import (
    BargainingGame,
    check_all_axioms,
    egalitarian_solution,
    kalai_smorodinsky_solution,
    nash_bargaining_solution,
    utilitarian_solution,
)
from repro.protocols import XMACModel

RULES = {
    "nash": nash_bargaining_solution,
    "kalai-smorodinsky": kalai_smorodinsky_solution,
    "egalitarian": egalitarian_solution,
    "utilitarian": utilitarian_solution,
}


def _build_discrete_game():
    model = XMACModel(figure_scenario())
    requirements = ApplicationRequirements(energy_budget=0.06, max_delay=6.0)
    solution = EnergyDelayGame(model, requirements, grid_points_per_dimension=60).solve()
    space = model.parameter_space
    grid = np.linspace(space.lower_bounds[0], space.upper_bounds[0], 600)
    costs = []
    for value in grid:
        point = [float(value)]
        if not model.is_admissible(point):
            continue
        energy = model.system_energy(point)
        delay = model.system_latency(point)
        if energy <= solution.energy_worst and delay <= solution.delay_worst:
            costs.append((energy, delay))
    game = BargainingGame.from_costs(
        costs,
        disagreement_costs=(solution.energy_worst, solution.delay_worst),
        player_names=("energy", "delay"),
    )
    return game, solution


def test_bargaining_rule_ablation(benchmark):
    game, continuous = benchmark.pedantic(_build_discrete_game, rounds=1, iterations=1)
    rows = []
    selected = {}
    for name, rule in RULES.items():
        point = rule(game)
        energy, delay = -point.payoff[0], -point.payoff[1]
        selected[name] = (energy, delay)
        axioms = check_all_axioms(game, rule)
        rows.append(
            {
                "rule": name,
                "E [J/s]": energy,
                "L [ms]": delay * 1000.0,
                "pareto": axioms["pareto_optimality"].satisfied,
                "scale-invariant": axioms["scale_invariance"].satisfied,
                "IIA": axioms["independence_of_irrelevant_alternatives"].satisfied,
            }
        )
    rows.append(
        {
            "rule": "nash (continuous P4)",
            "E [J/s]": continuous.energy_star,
            "L [ms]": continuous.delay_star * 1000.0,
            "pareto": True,
            "scale-invariant": True,
            "IIA": True,
        }
    )
    print_series("Bargaining-rule ablation (X-MAC, figure scenario)", rows)

    # The discretized Nash point matches the continuous (P4) solution.
    assert selected["nash"][0] == pytest.approx(continuous.energy_star, rel=0.05)
    assert selected["nash"][1] == pytest.approx(continuous.delay_star, rel=0.05)
    # Every rule picks a point dominated by the disagreement corner.
    for energy, delay in selected.values():
        assert energy <= continuous.energy_worst * 1.001
        assert delay <= continuous.delay_worst * 1.001
    # The Nash rule satisfies all four axioms on this game.
    nash_axioms = check_all_axioms(game, nash_bargaining_solution)
    assert all(check.satisfied for check in nash_axioms.values())
