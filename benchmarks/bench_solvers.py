"""Solver ablation: grid search vs multi-start SLSQP vs the hybrid default.

DESIGN.md calls out the solver as a substitution (the paper only says
"convex programming"), so this bench checks that the choice does not matter:
all three backends land on the same (P1) optimum for every protocol, and the
hybrid is never worse than either component.

A third stage measures the adaptive coarse-to-fine grid stage against the
exhaustive scan at the paper's 60-point resolution, asserts the results
are field-for-field identical, and writes the per-rule evaluation counts,
seconds, and speedups to ``BENCH_solver.json`` — whose aggregate
``evaluation_speedup`` is gated (≥5× by default) by
``tools/check_bench.py --solver``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import assert_speedup_if_required, print_series
from repro.core.problems import DelayMinimizationProblem, EnergyMinimizationProblem
from repro.core.requirements import ApplicationRequirements
from repro.optimization import adaptive_grid_search, batched
from repro.optimization.constrained import multistart_slsqp
from repro.optimization.grid import grid_search
from repro.optimization.hybrid import hybrid_solve
from repro.protocols.registry import available_protocols, create_protocol, paper_protocols
from repro.runtime import BatchRunner, SolveTask, build_runner
from repro.scenario import Scenario
from repro.network.topology import RingTopology

#: Where the adaptive-vs-exhaustive measurements land (CI uploads this and
#: gates it through ``tools/check_bench.py --solver``).
SOLVER_ARTIFACT = Path("BENCH_solver.json")

#: The paper's figure resolution — the grid the adaptive solver is sold on.
PAPER_GRID_POINTS = 60

REQUIREMENTS = ApplicationRequirements(energy_budget=0.06, max_delay=4.0)
SCENARIO = Scenario(topology=RingTopology(depth=5, density=8), sampling_rate=1.0 / 3600.0)

SOLVERS = {
    "grid": lambda *args, **kwargs: grid_search(*args, points_per_dimension=160, **kwargs),
    "multistart-slsqp": lambda *args, **kwargs: multistart_slsqp(*args, random_starts=6, **kwargs),
    "hybrid": lambda *args, **kwargs: hybrid_solve(*args, grid_points_per_dimension=80, **kwargs),
}


def _solve_p1_with_every_solver():
    rows = []
    results = {}
    for name, model in paper_protocols(SCENARIO).items():
        problem = EnergyMinimizationProblem(model, REQUIREMENTS)
        per_protocol = {}
        for solver_name, solver in SOLVERS.items():
            outcome = problem.solve(solver)
            per_protocol[solver_name] = outcome
            rows.append(
                {
                    "protocol": model.name,
                    "solver": solver_name,
                    "E_best [J/s]": outcome.point.energy,
                    "L_worst [ms]": outcome.point.delay * 1000.0,
                    "evaluations": outcome.evaluations,
                }
            )
        results[name] = per_protocol
    return rows, results


def test_solver_ablation_on_energy_minimization(benchmark):
    rows, results = benchmark.pedantic(_solve_p1_with_every_solver, rounds=1, iterations=1)
    print_series("Solver ablation on (P1)", rows)
    for protocol, outcomes in results.items():
        energies = {name: outcome.point.energy for name, outcome in outcomes.items()}
        reference = energies["hybrid"]
        # The pure grid is quantized to its resolution; a few percent of
        # disagreement with the polished optimum is expected and acceptable.
        assert energies["grid"] == pytest.approx(reference, rel=0.05), protocol
        assert energies["multistart-slsqp"] == pytest.approx(reference, rel=0.02), protocol
        # The hybrid must be at least as good as either component.
        assert reference <= min(energies.values()) * (1 + 1e-9), protocol


def _full_game_tasks() -> list:
    """One complete game solve per (protocol, delay bound): a 12-task grid."""
    tasks = []
    for name in available_protocols():
        model = create_protocol(name, SCENARIO)
        for max_delay in (2.0, 4.0, 6.0):
            tasks.append(
                SolveTask(
                    model=model,
                    requirements=REQUIREMENTS.with_max_delay(max_delay),
                    solver_options={"grid_points_per_dimension": 60},
                    label=name,
                    tag=max_delay,
                )
            )
    return tasks


def _grid_problems(model):
    """The two single-objective rules the grid stage answers per protocol."""
    p1 = EnergyMinimizationProblem(model, REQUIREMENTS)
    p2 = DelayMinimizationProblem(model, REQUIREMENTS)
    return {
        "P1-energy": (
            batched(model.system_energy, model.energy_many),
            p1.space,
            p1.constraints(),
        ),
        "P2-delay": (
            batched(model.system_latency, model.latency_many),
            p2.space,
            p2.constraints(),
        ),
    }


def test_adaptive_vs_exhaustive_grid(benchmark):
    """Adaptive coarse-to-fine vs exhaustive scan at the paper resolution.

    Identical results (same point, value, tie-break, feasibility) with the
    evaluation counts, wall clock, and speedups written to
    ``BENCH_solver.json``.  The hard ≥5× floor on the aggregate evaluation
    speedup lives in ``tools/check_bench.py`` (``--min-solver-speedup``),
    where it is configurable per runner.
    """

    def _measure():
        artifact = {
            "schema": "repro.bench.solver",
            "schema_version": 1,
            "grid_points_per_dimension": PAPER_GRID_POINTS,
            "rules": {},
            "aggregate": {},
        }
        rows = []
        nominal_total = 0
        adaptive_total = 0
        for name in available_protocols():
            model = create_protocol(name, SCENARIO)
            for rule, (objective, space, constraints) in _grid_problems(model).items():
                started = time.perf_counter()
                exhaustive = grid_search(
                    objective,
                    space,
                    constraints,
                    points_per_dimension=PAPER_GRID_POINTS,
                )
                exhaustive_seconds = time.perf_counter() - started
                started = time.perf_counter()
                adaptive = adaptive_grid_search(
                    objective,
                    space,
                    constraints,
                    points_per_dimension=PAPER_GRID_POINTS,
                )
                adaptive_seconds = time.perf_counter() - started

                # The differential guarantee, asserted in the bench too.
                assert np.array_equal(exhaustive.x, adaptive.x), (name, rule)
                assert exhaustive.value == adaptive.value, (name, rule)
                assert exhaustive.feasible == adaptive.feasible, (name, rule)
                assert exhaustive.evaluations == adaptive.evaluations, (name, rule)

                work = adaptive.work
                actual = work["coarse_evaluations"] + work["refined_evaluations"]
                nominal = exhaustive.evaluations
                speedup = nominal / actual if actual else 1.0
                nominal_total += nominal
                adaptive_total += actual
                artifact["rules"][f"{name}/{rule}"] = {
                    "nominal_evaluations": nominal,
                    "adaptive_evaluations": actual,
                    "cells_pruned": work["cells_pruned"],
                    "exhaustive_seconds": exhaustive_seconds,
                    "adaptive_seconds": adaptive_seconds,
                    "evaluation_speedup": speedup,
                }
                rows.append(
                    {
                        "rule": f"{name}/{rule}",
                        "nominal": nominal,
                        "adaptive": actual,
                        "speedup": round(speedup, 2),
                    }
                )
                # Sanity floor only: the adaptive stage must never do *more*
                # work than the grid it replaces.
                assert actual <= nominal, (name, rule)
        aggregate_speedup = nominal_total / adaptive_total if adaptive_total else 1.0
        artifact["aggregate"] = {
            "nominal_evaluations": nominal_total,
            "adaptive_evaluations": adaptive_total,
            "evaluation_speedup": aggregate_speedup,
        }
        return artifact, rows

    artifact, rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    aggregate = artifact["aggregate"]
    print_series(
        f"Adaptive grid stage at {PAPER_GRID_POINTS} points/axis "
        f"(aggregate {aggregate['evaluation_speedup']:.2f}x fewer evaluations)",
        rows,
    )
    SOLVER_ARTIFACT.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    assert aggregate["evaluation_speedup"] > 1.0


def test_batched_game_solves_parallel_speedup(benchmark, bench_workers):
    """Serial vs process-pool wall clock for a (protocol × Lmax) solve grid,
    with exact equality of every outcome."""
    tasks = _full_game_tasks()

    started = time.perf_counter()
    serial = BatchRunner(cache=None).run(tasks)
    serial_seconds = time.perf_counter() - started

    runner = build_runner(workers=bench_workers, use_cache=False)
    started = time.perf_counter()
    parallel = benchmark.pedantic(runner.run, args=(tasks,), rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - started

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print_series(
        "Batched game solves: serial vs parallel",
        [
            {"mode": "serial[1]", "seconds": serial_seconds, "speedup": 1.0},
            {
                "mode": f"process[{bench_workers}]",
                "seconds": parallel_seconds,
                "speedup": speedup,
            },
        ],
    )
    assert [outcome.ok for outcome in serial] == [outcome.ok for outcome in parallel]
    assert [outcome.solution.as_dict() for outcome in serial if outcome.ok] == [
        outcome.solution.as_dict() for outcome in parallel if outcome.ok
    ]
    assert_speedup_if_required(speedup)
