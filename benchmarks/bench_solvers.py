"""Solver ablation: grid search vs multi-start SLSQP vs the hybrid default.

DESIGN.md calls out the solver as a substitution (the paper only says
"convex programming"), so this bench checks that the choice does not matter:
all three backends land on the same (P1) optimum for every protocol, and the
hybrid is never worse than either component.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import assert_speedup_if_required, print_series
from repro.core.problems import EnergyMinimizationProblem
from repro.core.requirements import ApplicationRequirements
from repro.optimization.constrained import multistart_slsqp
from repro.optimization.grid import grid_search
from repro.optimization.hybrid import hybrid_solve
from repro.protocols.registry import available_protocols, create_protocol, paper_protocols
from repro.runtime import BatchRunner, SolveTask, build_runner
from repro.scenario import Scenario
from repro.network.topology import RingTopology

REQUIREMENTS = ApplicationRequirements(energy_budget=0.06, max_delay=4.0)
SCENARIO = Scenario(topology=RingTopology(depth=5, density=8), sampling_rate=1.0 / 3600.0)

SOLVERS = {
    "grid": lambda *args, **kwargs: grid_search(*args, points_per_dimension=160, **kwargs),
    "multistart-slsqp": lambda *args, **kwargs: multistart_slsqp(*args, random_starts=6, **kwargs),
    "hybrid": lambda *args, **kwargs: hybrid_solve(*args, grid_points_per_dimension=80, **kwargs),
}


def _solve_p1_with_every_solver():
    rows = []
    results = {}
    for name, model in paper_protocols(SCENARIO).items():
        problem = EnergyMinimizationProblem(model, REQUIREMENTS)
        per_protocol = {}
        for solver_name, solver in SOLVERS.items():
            outcome = problem.solve(solver)
            per_protocol[solver_name] = outcome
            rows.append(
                {
                    "protocol": model.name,
                    "solver": solver_name,
                    "E_best [J/s]": outcome.point.energy,
                    "L_worst [ms]": outcome.point.delay * 1000.0,
                    "evaluations": outcome.evaluations,
                }
            )
        results[name] = per_protocol
    return rows, results


def test_solver_ablation_on_energy_minimization(benchmark):
    rows, results = benchmark.pedantic(_solve_p1_with_every_solver, rounds=1, iterations=1)
    print_series("Solver ablation on (P1)", rows)
    for protocol, outcomes in results.items():
        energies = {name: outcome.point.energy for name, outcome in outcomes.items()}
        reference = energies["hybrid"]
        # The pure grid is quantized to its resolution; a few percent of
        # disagreement with the polished optimum is expected and acceptable.
        assert energies["grid"] == pytest.approx(reference, rel=0.05), protocol
        assert energies["multistart-slsqp"] == pytest.approx(reference, rel=0.02), protocol
        # The hybrid must be at least as good as either component.
        assert reference <= min(energies.values()) * (1 + 1e-9), protocol


def _full_game_tasks() -> list:
    """One complete game solve per (protocol, delay bound): a 12-task grid."""
    tasks = []
    for name in available_protocols():
        model = create_protocol(name, SCENARIO)
        for max_delay in (2.0, 4.0, 6.0):
            tasks.append(
                SolveTask(
                    model=model,
                    requirements=REQUIREMENTS.with_max_delay(max_delay),
                    solver_options={"grid_points_per_dimension": 60},
                    label=name,
                    tag=max_delay,
                )
            )
    return tasks


def test_batched_game_solves_parallel_speedup(benchmark, bench_workers):
    """Serial vs process-pool wall clock for a (protocol × Lmax) solve grid,
    with exact equality of every outcome."""
    tasks = _full_game_tasks()

    started = time.perf_counter()
    serial = BatchRunner(cache=None).run(tasks)
    serial_seconds = time.perf_counter() - started

    runner = build_runner(workers=bench_workers, use_cache=False)
    started = time.perf_counter()
    parallel = benchmark.pedantic(runner.run, args=(tasks,), rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - started

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print_series(
        "Batched game solves: serial vs parallel",
        [
            {"mode": "serial[1]", "seconds": serial_seconds, "speedup": 1.0},
            {
                "mode": f"process[{bench_workers}]",
                "seconds": parallel_seconds,
                "speedup": speedup,
            },
        ],
    )
    assert [outcome.ok for outcome in serial] == [outcome.ok for outcome in parallel]
    assert [outcome.solution.as_dict() for outcome in serial if outcome.ok] == [
        outcome.solution.as_dict() for outcome in parallel if outcome.ok
    ]
    assert_speedup_if_required(speedup)
