"""Figure 1 benchmark: E-L trade-off with Ebudget fixed at 0.06 J, Lmax swept.

One benchmark per sub-figure (1a X-MAC, 1b DMAC, 1c LMAC).  Each prints the
series the paper plots (corner points and Nash bargaining point per ``Lmax``)
and asserts the paper's qualitative observations:

* relaxing the delay bound moves the agreement in favour of the energy
  player (``E*`` is non-increasing in ``Lmax``),
* every agreed point satisfies the requirements and lies between the two
  players' optima,
* the agreement is proportionally fair.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import assert_speedup_if_required, print_series
from repro.experiments.config import FIGURE_DELAY_BOUNDS, FIGURE_ENERGY_BUDGET_FIXED
from repro.experiments.figure1 import figure1_rows, reproduce_figure1
from repro.runtime import SolveCache, build_runner


def _run_protocol(protocol: str, grid: int):
    # use_cache=False: these benches time the actual solves; the cache-hit
    # path has its own bench below.
    results = reproduce_figure1(
        protocols=(protocol,),
        delay_bounds=FIGURE_DELAY_BOUNDS,
        energy_budget=FIGURE_ENERGY_BUDGET_FIXED,
        grid_points_per_dimension=grid,
        use_cache=False,
    )
    return results[protocol]


def _check_and_print(sweep, label: str) -> None:
    assert not sweep.infeasible_values, f"{label}: some Lmax values were infeasible"
    assert len(sweep.solutions) == len(FIGURE_DELAY_BOUNDS)
    stars = [solution.energy_star for solution in sweep.solutions]
    assert all(
        later <= earlier + 1e-9 for earlier, later in zip(stars, stars[1:])
    ), f"{label}: relaxing Lmax must not increase the agreed energy"
    for bound, solution in zip(FIGURE_DELAY_BOUNDS, sweep.solutions):
        assert solution.delay_star <= bound * 1.001
        assert solution.energy_star <= FIGURE_ENERGY_BUDGET_FIXED * 1.001
        assert solution.energy_best <= solution.energy_star <= solution.energy_worst * 1.001
        assert abs(solution.bargaining.fairness_residual) < 0.1
    print_series(label, sweep.series())


@pytest.mark.parametrize(
    "protocol, subfigure",
    [("xmac", "Figure 1a (X-MAC)"), ("dmac", "Figure 1b (DMAC)"), ("lmac", "Figure 1c (LMAC)")],
)
def test_figure1(benchmark, figure_grid, protocol, subfigure):
    sweep = benchmark.pedantic(
        _run_protocol, args=(protocol, figure_grid), rounds=1, iterations=1
    )
    _check_and_print(sweep, subfigure)


def test_figure1_saturation_structure(benchmark, figure_grid):
    """The paper's saturation pattern: X-MAC's trade-off points coincide for
    large ``Lmax`` (its energy optimum becomes interior), DMAC saturates only
    near the synchronization bound, LMAC keeps improving up to 6 s."""
    results = benchmark.pedantic(
        reproduce_figure1,
        kwargs={"grid_points_per_dimension": figure_grid, "use_cache": False},
        rounds=1,
        iterations=1,
    )
    xmac = [s.energy_star for s in results["xmac"].solutions]
    lmac = [s.energy_star for s in results["lmac"].solutions]
    # X-MAC: identical agreements once the delay bound stops binding (>= 3 s).
    assert xmac[2] == pytest.approx(xmac[5], rel=1e-3)
    # X-MAC: the bound still bites at 1 s and 2 s.
    assert xmac[0] > xmac[2] * 1.05
    # LMAC: every relaxation of the bound keeps improving the energy player.
    assert all(later < earlier for earlier, later in zip(lmac, lmac[1:]))


def test_figure1_parallel_speedup(benchmark, figure_grid, bench_workers):
    """Serial vs process-pool wall clock for the full Figure-1 grid.

    The parallel run is the benchmarked subject; the serial run is timed
    alongside to report the speedup.  Output equality is asserted exactly —
    parallelism must be invisible in the results.
    """
    kwargs = {"grid_points_per_dimension": figure_grid}

    started = time.perf_counter()
    serial = reproduce_figure1(runner=build_runner(workers=1, use_cache=False), **kwargs)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = benchmark.pedantic(
        reproduce_figure1,
        kwargs={"runner": build_runner(workers=bench_workers, use_cache=False), **kwargs},
        rounds=1,
        iterations=1,
    )
    parallel_seconds = time.perf_counter() - started

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print_series(
        "Figure 1: serial vs parallel runtime",
        [
            {"mode": "serial[1]", "seconds": serial_seconds, "speedup": 1.0},
            {
                "mode": f"process[{bench_workers}]",
                "seconds": parallel_seconds,
                "speedup": speedup,
            },
        ],
    )
    assert figure1_rows(serial) == figure1_rows(parallel), "parallel output must be bit-identical"
    assert_speedup_if_required(speedup)


def test_figure1_cache_hit_path(benchmark, figure_grid):
    """A warm solve cache answers the whole figure grid in near-zero time."""
    cache = SolveCache()
    kwargs = {"grid_points_per_dimension": figure_grid}
    cold_runner = build_runner(workers=1, cache=cache)

    started = time.perf_counter()
    cold = reproduce_figure1(runner=cold_runner, **kwargs)
    cold_seconds = time.perf_counter() - started

    warm_runner = build_runner(workers=1, cache=cache)
    started = time.perf_counter()
    warm = benchmark.pedantic(
        reproduce_figure1, kwargs={"runner": warm_runner, **kwargs}, rounds=1, iterations=1
    )
    warm_seconds = time.perf_counter() - started

    print_series(
        "Figure 1: cold vs warm solve cache",
        [
            {"cache": "cold", "seconds": cold_seconds},
            {"cache": "warm", "seconds": warm_seconds},
        ],
    )
    stats = warm_runner.cache_stats()
    assert stats.hits == sum(len(sweep.values) for sweep in warm.values())
    assert figure1_rows(warm) == figure1_rows(cold)
    assert warm_seconds < cold_seconds / 10.0, "cache-hit path should be >10x faster"
