"""Scalar vs. vectorized grid evaluation.

The grid stage of the hybrid solver evaluates the protocol cost surfaces
``E(X)`` / ``L(X)`` and the constraint margins over the full parameter grid.
Since the batched evaluation layer (``energy_many`` / ``latency_many`` /
``capacity_margin_many``) landed, that happens in a handful of NumPy calls
instead of one Python call per point.

These benches time *both* paths of ``grid_search`` on the paper's Figure-1
problem (P1 with ``Ebudget = 0.06``, ``Lmax = 6``) at the figure's grid
resolution, assert the results are **bit-identical** (same point, value,
feasibility, violation and evaluation count), and enforce the ≥5× speedup
floor the vectorization exists for.  In practice the speedup is one to three
orders of magnitude (largest for LMAC, whose 2-D grid has ``60² = 3600``
points).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.core.problems import EnergyMinimizationProblem, NashBargainingProblem
from repro.core.requirements import ApplicationRequirements
from repro.experiments.config import (
    FIGURE_ENERGY_BUDGET_FIXED,
    FIGURE_GRID_POINTS,
    figure_scenario,
)
from repro.optimization.grid import grid_search
from repro.protocols.registry import PAPER_PROTOCOL_NAMES, create_protocol

#: The hard floor of the vectorization acceptance criterion.
VECTORIZED_SPEEDUP_FLOOR = 5.0

#: Figure-1 requirements at the loosest delay bound.
_REQUIREMENTS_KWARGS = {"energy_budget": FIGURE_ENERGY_BUDGET_FIXED, "max_delay": 6.0}


def _figure1_problem(protocol: str) -> EnergyMinimizationProblem:
    scenario = figure_scenario()
    model = create_protocol(protocol, scenario)
    requirements = ApplicationRequirements(
        sampling_rate=scenario.sampling_rate, **_REQUIREMENTS_KWARGS
    )
    return EnergyMinimizationProblem(model, requirements)


def _time_both_paths(problem, grid_points: int):
    """Run the same grid search scalar and vectorized; return results + times."""
    objective = problem._energy_objective()  # noqa: SLF001 - bench probes the solver wiring
    constraints = problem.constraints()
    kwargs = {"points_per_dimension": grid_points}

    started = time.perf_counter()
    scalar = grid_search(objective, problem.space, constraints, vectorize=False, **kwargs)
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    vectorized = grid_search(objective, problem.space, constraints, vectorize=True, **kwargs)
    vectorized_seconds = time.perf_counter() - started
    return scalar, vectorized, scalar_seconds, vectorized_seconds


def _assert_bit_identical(scalar, vectorized) -> None:
    assert np.array_equal(scalar.x, vectorized.x), "grid optimum moved"
    assert scalar.value == vectorized.value, "objective value differs"
    assert scalar.feasible == vectorized.feasible
    assert scalar.evaluations == vectorized.evaluations
    assert scalar.constraint_violation == vectorized.constraint_violation


def test_vectorized_grid_figure1(benchmark, figure_grid):
    """Figure-1 (P1) grids, all three paper protocols: both paths, one floor.

    The benchmarked subject is the vectorized evaluation of all three
    protocol grids; the scalar path is timed alongside.  The speedup floor
    is asserted on the aggregate wall clock, which is dominated by LMAC's
    two-dimensional grid — exactly the case the vectorization targets.
    """
    problems = {name: _figure1_problem(name) for name in PAPER_PROTOCOL_NAMES}

    def run_vectorized():
        return {
            name: grid_search(
                problem._energy_objective(),  # noqa: SLF001
                problem.space,
                problem.constraints(),
                points_per_dimension=figure_grid,
                vectorize=True,
            )
            for name, problem in problems.items()
        }

    rows = []
    scalar_total = 0.0
    vectorized_total = 0.0
    for name, problem in problems.items():
        scalar, vectorized, scalar_seconds, vectorized_seconds = _time_both_paths(
            problem, figure_grid
        )
        _assert_bit_identical(scalar, vectorized)
        scalar_total += scalar_seconds
        vectorized_total += vectorized_seconds
        rows.append(
            {
                "protocol": name,
                "grid_points": scalar.evaluations,
                "scalar_ms": scalar_seconds * 1e3,
                "vectorized_ms": vectorized_seconds * 1e3,
                "speedup": scalar_seconds / max(vectorized_seconds, 1e-12),
            }
        )
    benchmark.pedantic(run_vectorized, rounds=1, iterations=1)

    speedup = scalar_total / max(vectorized_total, 1e-12)
    rows.append(
        {
            "protocol": "TOTAL",
            "grid_points": sum(row["grid_points"] for row in rows),
            "scalar_ms": scalar_total * 1e3,
            "vectorized_ms": vectorized_total * 1e3,
            "speedup": speedup,
        }
    )
    print_series("Figure-1 grid: scalar vs vectorized evaluation", rows)
    assert speedup >= VECTORIZED_SPEEDUP_FLOOR, (
        f"vectorized grid evaluation is only {speedup:.1f}x faster than scalar "
        f"(floor: {VECTORIZED_SPEEDUP_FLOOR}x)"
    )


@pytest.mark.parametrize("protocol", PAPER_PROTOCOL_NAMES)
def test_vectorized_grid_per_protocol(benchmark, figure_grid, protocol):
    """Per-protocol bit-identity + timing record at the figure resolution."""
    problem = _figure1_problem(protocol)
    scalar, vectorized, scalar_seconds, vectorized_seconds = _time_both_paths(
        problem, figure_grid
    )
    _assert_bit_identical(scalar, vectorized)
    benchmark.pedantic(
        lambda: grid_search(
            problem._energy_objective(),  # noqa: SLF001
            problem.space,
            problem.constraints(),
            points_per_dimension=figure_grid,
            vectorize=True,
        ),
        rounds=1,
        iterations=1,
    )
    print_series(
        f"{protocol}: scalar vs vectorized grid",
        [
            {
                "path": "scalar",
                "grid_points": scalar.evaluations,
                "seconds": scalar_seconds,
                "speedup": 1.0,
            },
            {
                "path": "vectorized",
                "grid_points": vectorized.evaluations,
                "seconds": vectorized_seconds,
                "speedup": scalar_seconds / max(vectorized_seconds, 1e-12),
            },
        ],
    )


def test_vectorized_nash_objective_bit_identity(figure_grid):
    """The (P4) log objective evaluates bit-identically point-wise vs batched.

    ``np.log`` is not guaranteed to round like ``math.log``, so the batched
    Nash objective computes the gains vectorized and applies ``math.log``
    per element; this bench-side check pins that contract at the figure
    resolution.
    """
    scenario = figure_scenario()
    for name in PAPER_PROTOCOL_NAMES:
        model = create_protocol(name, scenario)
        requirements = ApplicationRequirements(
            sampling_rate=scenario.sampling_rate, **_REQUIREMENTS_KWARGS
        )
        problem = NashBargainingProblem(
            model,
            requirements,
            disagreement_energy=FIGURE_ENERGY_BUDGET_FIXED,
            disagreement_delay=6.0,
        )
        grid = problem.space.grid(figure_grid)
        batched_values = problem.objective_many(grid)
        scalar_values = np.array([problem.objective(row) for row in grid])
        assert np.array_equal(batched_values, scalar_values), name
