"""Model-vs-simulation benchmark.

The brief announcement has no experimental section; this bench provides the
reproduction's substitute: for every protocol of the paper, run the
packet-level simulator at the parameters chosen by the Nash bargaining
solution and check that the analytical energy/delay the game was solved with
agree with the measured values.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.analysis.validation import validate_protocol
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.network.topology import RingTopology
from repro.protocols.registry import paper_protocols
from repro.scenario import Scenario
from repro.simulation import SimulationConfig

#: Simulation scenario: unsaturated traffic (one reading per node every ten
#: minutes) on a four-ring network, the regime the paper's traffic model
#: assumes.
SCENARIO = Scenario(topology=RingTopology(depth=4, density=6), sampling_rate=1.0 / 600.0)
REQUIREMENTS = ApplicationRequirements(
    energy_budget=0.06, max_delay=4.0, sampling_rate=SCENARIO.sampling_rate
)
CONFIG = SimulationConfig(horizon=4000.0, seed=11)


def _validate_all():
    reports = {}
    for name, model in paper_protocols(SCENARIO).items():
        solution = EnergyDelayGame(model, REQUIREMENTS, grid_points_per_dimension=48).solve()
        reports[name] = validate_protocol(model, solution.bargaining.point.parameters, CONFIG)
    return reports


def test_simulation_validates_analytical_models(benchmark):
    reports = benchmark.pedantic(_validate_all, rounds=1, iterations=1)
    rows = []
    for name, report in reports.items():
        rows.append(
            {
                "protocol": report.protocol,
                "E model [mW]": report.analytical_energy * 1000.0,
                "E sim [mW]": report.simulated_energy * 1000.0,
                "E err": f"{report.energy_error:.1%}",
                "L model [ms]": report.analytical_delay * 1000.0,
                "L sim [ms]": report.simulated_delay * 1000.0,
                "L err": f"{report.delay_error:.1%}",
                "delivery": f"{report.delivery_ratio:.1%}",
            }
        )
    print_series("Model vs simulation at the Nash bargaining point", rows)
    for name, report in reports.items():
        assert report.delivery_ratio > 0.95, name
        assert report.energy_error < 0.35, (name, report.as_dict())
        assert report.delay_error < 0.6, (name, report.as_dict())
