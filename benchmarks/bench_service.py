"""Experiment service benchmark: job latency and warm-hit throughput.

Starts a real service (ThreadingHTTPServer + worker pool on a temporary
store) and measures the two numbers that matter for the job-server layer
itself, with the solver cost factored out:

* **cold latency** — wall-clock from ``POST /v1/jobs`` of a small sweep
  spec to its result bytes being served (includes queue claim, the actual
  solves, atomic result publish, and the poll loop);
* **warm-hit throughput** — requests/second of the steady state every
  repeat client sees: resubmitting the spec (idempotent POST answered
  from the dedup table) and fetching the stored result bytes.

The bench asserts the service contracts along the way — byte-identity
with a direct in-process run, one execution despite resubmission, a fully
warm re-run on a fresh queue — and emits ``BENCH_service.json``
(``repro.bench.service`` schema v1), which CI gates through
``tools/check_bench.py --service`` with an absolute warm-rps floor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import BENCH_GRID, print_series
from repro.api import ExperimentSpec, run_experiment, runner_for
from repro.service import ExperimentService, ServiceClient

ARTIFACT = Path("BENCH_service.json")

#: Submit+fetch pairs of the warm-throughput measurement.
WARM_CYCLES = 50


def _spec() -> ExperimentSpec:
    return (
        ExperimentSpec.experiment("sweep", name="bench-service-sweep")
        .with_scenario("paper-default")
        .with_protocols("xmac")
        .with_sweep("max_delay", [2.0, 4.0, 6.0])
        .with_solver(grid_points=BENCH_GRID)
    )


def test_service_latency_and_warm_throughput(benchmark, tmp_path):
    spec = _spec()
    store_dir = tmp_path / "store"

    with ExperimentService(store_dir=store_dir, workers=2) as service:
        client = ServiceClient(service.url)

        started = time.perf_counter()
        served = client.run(spec, timeout=600)
        cold_seconds = time.perf_counter() - started

        direct = run_experiment(spec, runner=runner_for(spec))
        assert served == direct.json_text().encode("utf-8")
        job_id = spec.spec_hash()

        def warm_cycles():
            for _ in range(WARM_CYCLES):
                _, created = client.submit(spec)
                assert not created  # dedup: never a second execution
                assert client.result_bytes(job_id) is not None
            return client.status(job_id)

        status = benchmark.pedantic(warm_cycles, rounds=1, iterations=1)
        warm_seconds = benchmark.stats.stats.mean
        warm_requests = 2 * WARM_CYCLES  # one POST + one GET per cycle
        warm_rps = warm_requests / warm_seconds
        assert status["attempts"] == 1  # resubmission never re-ran the job

    # A fresh queue over the same store answers without any fresh solves.
    with ExperimentService(
        store_dir=store_dir, queue_dir=tmp_path / "queue-warm", workers=1
    ) as warm_service:
        warm_client = ServiceClient(warm_service.url)
        assert warm_client.run(spec, timeout=600) == served
        progress = warm_client.status(job_id)["progress"]
        assert progress["store_misses"] == 0
        assert progress["store_puts"] == 0

    artifact = {
        "schema": "repro.bench.service",
        "schema_version": 1,
        "grid_points": BENCH_GRID,
        "units": len(direct.records),
        "workers": 2,
        "cold_latency_seconds": round(cold_seconds, 6),
        "warm_requests": warm_requests,
        "warm_seconds": round(warm_seconds, 6),
        "warm_requests_per_second": round(warm_rps, 3),
    }
    ARTIFACT.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    print_series(
        f"experiment service ({len(direct.records)} units, grid={BENCH_GRID})",
        [
            {
                "measure": "cold submit->result",
                "seconds": f"{cold_seconds:.3f}",
                "req_per_s": "-",
            },
            {
                "measure": f"warm hits ({warm_requests} requests)",
                "seconds": f"{warm_seconds:.3f}",
                "req_per_s": f"{warm_rps:,.0f}",
            },
        ],
    )
