"""Abstract base class for duty-cycled MAC analytical models.

The paper requires, for every protocol, two system-wide cost functions of the
tunable parameter vector ``X``:

* ``E(X)`` — the energy consumption of the most loaded node (ring 1), broken
  down into carrier sensing, transmission, reception, overhearing and
  synchronization, exactly the decomposition written in Section 2;
* ``L(X)`` — the end-to-end delay of the node farthest from the sink
  (ring ``D``), i.e. the sum of per-hop latencies along its path.

Concrete subclasses (:class:`~repro.protocols.xmac.XMACModel`,
:class:`~repro.protocols.dmac.DMACModel`,
:class:`~repro.protocols.lmac.LMACModel`, …) provide the per-ring energy
breakdown, the per-hop latency and the protocol-specific capacity
constraints; this base class provides the aggregation logic, parameter
coercion and feasibility helpers shared by all of them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Union

import numpy as np

from repro.core.parameters import ParameterSpace
from repro.exceptions import ConfigurationError
from repro.network.traffic import TrafficModel
from repro.scenario import Scenario

#: A parameter vector may be given as a mapping, a sequence or a numpy array.
ParameterVector = Union[Mapping[str, float], Sequence[float], np.ndarray]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-node energy consumption split by cause, in joules per second.

    The attributes follow the decomposition in Section 2 of the paper:
    ``E_n = E_cs + E_tx + E_rx + E_ovr + E_stx + E_srx``.
    """

    carrier_sense: float
    transmit: float
    receive: float
    overhear: float
    sync_transmit: float = 0.0
    sync_receive: float = 0.0
    sleep: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "carrier_sense",
            "transmit",
            "receive",
            "overhear",
            "sync_transmit",
            "sync_receive",
            "sleep",
        ):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0:
                raise ConfigurationError(
                    f"EnergyBreakdown.{name} must be a finite non-negative number, got {value!r}"
                )

    @property
    def total(self) -> float:
        """Total per-node energy consumption in joules per second."""
        return (
            self.carrier_sense
            + self.transmit
            + self.receive
            + self.overhear
            + self.sync_transmit
            + self.sync_receive
            + self.sleep
        )

    def as_dict(self) -> Dict[str, float]:
        """Return the breakdown as a dictionary including the total."""
        return {
            "carrier_sense": self.carrier_sense,
            "transmit": self.transmit,
            "receive": self.receive,
            "overhear": self.overhear,
            "sync_transmit": self.sync_transmit,
            "sync_receive": self.sync_receive,
            "sleep": self.sleep,
            "total": self.total,
        }


class DutyCycledMACModel(abc.ABC):
    """Analytical energy/latency model of one duty-cycled MAC protocol.

    Args:
        scenario: The shared evaluation environment (topology, traffic,
            radio, frame sizes).

    Subclasses must define :attr:`name`, :attr:`family`, and implement
    :meth:`parameter_space`, :meth:`energy_breakdown`, :meth:`hop_latency`,
    :meth:`duty_cycle` and :meth:`capacity_margin`.
    """

    #: Short protocol identifier, e.g. ``"X-MAC"``.
    name: str = "abstract"
    #: Protocol family, e.g. ``"preamble-sampling"``.
    family: str = "abstract"

    #: Maximum admissible channel utilization of the bottleneck node.  The
    #: traffic model assumes an unsaturated network; keeping the busy
    #: fraction below this threshold keeps that assumption honest.
    max_utilization: float = 0.8

    def __init__(self, scenario: Scenario) -> None:
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"scenario must be a Scenario, got {type(scenario).__name__}"
            )
        self._scenario = scenario
        self._traffic = scenario.traffic

    # ------------------------------------------------------------------ #
    # Environment access
    # ------------------------------------------------------------------ #

    @property
    def scenario(self) -> Scenario:
        """The evaluation environment this model is bound to."""
        return self._scenario

    @property
    def traffic(self) -> TrafficModel:
        """The traffic model induced by the scenario."""
        return self._traffic

    # ------------------------------------------------------------------ #
    # Abstract protocol-specific pieces
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def parameter_space(self) -> ParameterSpace:
        """The box of admissible tunable parameters ``Theta``."""

    @abc.abstractmethod
    def energy_breakdown(self, params: ParameterVector, ring: int) -> EnergyBreakdown:
        """Per-node energy breakdown (J/s) for a node in the given ring."""

    @abc.abstractmethod
    def hop_latency(self, params: ParameterVector, ring: int) -> float:
        """Expected one-hop forwarding latency (seconds) at the given ring.

        ``ring`` is the ring of the *transmitting* node, i.e. the latency of
        the link from ring ``d`` toward ring ``d - 1``.
        """

    @abc.abstractmethod
    def duty_cycle(self, params: ParameterVector, ring: int) -> float:
        """Fraction of time the radio of a ring-``d`` node is awake (0..1]."""

    @abc.abstractmethod
    def capacity_margin(self, params: ParameterVector) -> float:
        """Slack of the bottleneck capacity constraint.

        Returns a value that is ``>= 0`` when the configuration keeps the
        most loaded node's channel utilization below
        :attr:`max_utilization`, and negative (by the amount of violation)
        otherwise.
        """

    # ------------------------------------------------------------------ #
    # Aggregation (shared by all protocols)
    # ------------------------------------------------------------------ #

    def node_energy(self, params: ParameterVector, ring: int) -> float:
        """Total per-node energy (J/s) for a node in the given ring."""
        return self.energy_breakdown(params, ring).total

    def system_energy(self, params: ParameterVector) -> float:
        """System-wide energy ``E(X) = max_n E_n`` (J/s).

        With the ring traffic model the maximum is attained at ring 1 (the
        nodes that relay everything), but the maximum is computed over all
        rings to keep the definition faithful to the paper.
        """
        values = self.ring_energies(params)
        return max(values.values())

    def ring_energies(self, params: ParameterVector) -> Dict[int, float]:
        """Per-ring node energy (J/s), keyed by ring index."""
        params = self.coerce(params)
        return {
            ring: self.node_energy(params, ring)
            for ring in self._scenario.topology.rings()
        }

    def e2e_latency(self, params: ParameterVector, source_ring: int | None = None) -> float:
        """End-to-end delay (seconds) of a packet generated at ``source_ring``.

        Defaults to the farthest ring ``D``.  The delay is the sum of the
        per-hop latencies along the shortest path ``d, d-1, …, 1``.
        """
        params = self.coerce(params)
        depth = self._scenario.depth
        if source_ring is None:
            source_ring = depth
        if not (1 <= source_ring <= depth):
            raise ConfigurationError(
                f"source_ring must be in [1, {depth}], got {source_ring!r}"
            )
        return sum(self.hop_latency(params, ring) for ring in range(1, source_ring + 1))

    def system_latency(self, params: ParameterVector) -> float:
        """System-wide delay ``L(X) = max_n L_n`` (seconds): the ring-``D`` delay."""
        return self.e2e_latency(params, self._scenario.depth)

    def lifetime_days(self, params: ParameterVector, battery_joules: float = 2.0 * 3600 * 3) -> float:
        """Estimated bottleneck-node lifetime in days for a given battery.

        Defaults to a pair of AA cells (~2 Ah at 3 V ≈ 21.6 kJ); only used by
        examples and reports, never by the optimization itself.
        """
        if battery_joules <= 0:
            raise ConfigurationError("battery_joules must be positive")
        power = self.system_energy(params)
        if power <= 0:
            raise ConfigurationError("system energy must be positive")
        return battery_joules / power / 86400.0

    # ------------------------------------------------------------------ #
    # Constraints and feasibility
    # ------------------------------------------------------------------ #

    def constraint_margins(self, params: ParameterVector) -> List[float]:
        """All inequality-constraint slacks (``>= 0`` means satisfied).

        By default this is the capacity margin plus the box-bound margins;
        subclasses can extend it.
        """
        params_array = self.coerce_array(params)
        space = self.parameter_space
        margins: List[float] = [self.capacity_margin(params)]
        margins.extend(float(m) for m in (params_array - space.lower_bounds))
        margins.extend(float(m) for m in (space.upper_bounds - params_array))
        return margins

    def is_admissible(self, params: ParameterVector, tolerance: float = 1e-9) -> bool:
        """Whether a parameter vector satisfies all protocol constraints."""
        return all(margin >= -tolerance for margin in self.constraint_margins(params))

    # ------------------------------------------------------------------ #
    # Parameter coercion helpers
    # ------------------------------------------------------------------ #

    def coerce(self, params: ParameterVector) -> Dict[str, float]:
        """Normalize any accepted parameter representation to a dictionary."""
        space = self.parameter_space
        if isinstance(params, Mapping):
            # Validate names and ordering through the space round-trip.
            return space.to_dict(space.to_array(params))
        return space.to_dict(np.asarray(params, dtype=float))

    def coerce_array(self, params: ParameterVector) -> np.ndarray:
        """Normalize any accepted parameter representation to a solver array."""
        space = self.parameter_space
        if isinstance(params, Mapping):
            return space.to_array(params)
        array = np.asarray(params, dtype=float).ravel()
        if array.shape[0] != space.dimension:
            raise ConfigurationError(
                f"{self.name}: expected {space.dimension} parameters, got {array.shape[0]}"
            )
        return array

    def coerce_grid(self, grid: np.ndarray) -> np.ndarray:
        """Normalize a batch of parameter vectors to a ``(n, dimension)`` array.

        Args:
            grid: A 2-D array of shape ``(n, dimension)`` (one solver-ordered
                parameter vector per row, e.g. the output of
                :meth:`~repro.core.parameters.ParameterSpace.grid`), or a 1-D
                array of length ``dimension`` treated as a single row.

        Returns:
            A float ``(n, dimension)`` array.

        Raises:
            ConfigurationError: if the trailing dimension does not match the
                parameter space.
        """
        array = np.asarray(grid, dtype=float)
        dimension = self.parameter_space.dimension
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2 or array.shape[1] != dimension:
            raise ConfigurationError(
                f"{self.name}: expected a (n, {dimension}) parameter grid, "
                f"got shape {np.asarray(grid).shape}"
            )
        return array

    # ------------------------------------------------------------------ #
    # Batched (vectorized) evaluation
    # ------------------------------------------------------------------ #
    #
    # The batched methods evaluate whole parameter grids at once and are the
    # hot path of the grid solver and the frontier extraction.  The base
    # implementations fall back to the scalar methods row by row, so any
    # user-defined protocol is automatically correct; the built-in protocols
    # override them with NumPy element-wise formulas that are *bit-identical*
    # to the scalar path (same operations in the same order on float64).
    # Unlike the scalar path, the batched path does not validate each
    # point's energy breakdown — callers are expected to stay inside the
    # parameter box, where the breakdowns are well-formed by construction.

    def energy_many(self, grid: np.ndarray) -> np.ndarray:
        """System energy ``E(X)`` (J/s) for every row of a parameter grid.

        Args:
            grid: ``(n, dimension)`` array of solver-ordered parameter rows.

        Returns:
            ``(n,)`` array with ``E(X)`` per row, bit-identical to calling
            :meth:`system_energy` on each row.
        """
        grid = self.coerce_grid(grid)
        return np.array([self.system_energy(row) for row in grid], dtype=float)

    def latency_many(self, grid: np.ndarray) -> np.ndarray:
        """System delay ``L(X)`` (seconds) for every row of a parameter grid.

        Args:
            grid: ``(n, dimension)`` array of solver-ordered parameter rows.

        Returns:
            ``(n,)`` array with ``L(X)`` per row, bit-identical to calling
            :meth:`system_latency` on each row.
        """
        grid = self.coerce_grid(grid)
        return np.array([self.system_latency(row) for row in grid], dtype=float)

    def capacity_margin_many(self, grid: np.ndarray) -> np.ndarray:
        """Capacity-constraint slack for every row of a parameter grid.

        Args:
            grid: ``(n, dimension)`` array of solver-ordered parameter rows.

        Returns:
            ``(n,)`` array with :meth:`capacity_margin` per row.
        """
        grid = self.coerce_grid(grid)
        return np.array([self.capacity_margin(row) for row in grid], dtype=float)

    def is_admissible_many(self, grid: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
        """Batched twin of :meth:`is_admissible` for a parameter grid.

        When the subclass keeps the base constraint structure (capacity
        margin plus box bounds), the whole grid is checked with three NumPy
        comparisons; a subclass that overrides :meth:`constraint_margins` or
        :meth:`is_admissible` to add protocol-specific constraints is
        checked row by row through its own :meth:`is_admissible`, so custom
        constraints are never silently ignored.

        Args:
            grid: ``(n, dimension)`` array of solver-ordered parameter rows.
            tolerance: Slack allowed on every constraint margin.

        Returns:
            ``(n,)`` boolean array, ``True`` where the row satisfies all
            protocol constraints — identical to calling
            :meth:`is_admissible` per row.
        """
        grid = self.coerce_grid(grid)
        cls = type(self)
        base_constraints = (
            cls.constraint_margins is DutyCycledMACModel.constraint_margins
            and cls.is_admissible is DutyCycledMACModel.is_admissible
        )
        if base_constraints:
            space = self.parameter_space
            return (
                (self.capacity_margin_many(grid) >= -tolerance)
                & ((grid - space.lower_bounds) >= -tolerance).all(axis=1)
                & ((space.upper_bounds - grid) >= -tolerance).all(axis=1)
            )
        return np.array(
            [self.is_admissible(row, tolerance) for row in grid], dtype=bool
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def evaluate(self, params: ParameterVector) -> Dict[str, object]:
        """One-stop evaluation used by examples, the CLI and reports."""
        params_dict = self.coerce(params)
        bottleneck = self._scenario.topology.bottleneck_ring
        return {
            "protocol": self.name,
            "family": self.family,
            "parameters": params_dict,
            "energy_j_per_s": self.system_energy(params_dict),
            "delay_s": self.system_latency(params_dict),
            "duty_cycle_bottleneck": self.duty_cycle(params_dict, bottleneck),
            "energy_breakdown": self.energy_breakdown(params_dict, bottleneck).as_dict(),
            "capacity_margin": self.capacity_margin(params_dict),
            "admissible": self.is_admissible(params_dict),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(scenario={self._scenario.describe()})"
