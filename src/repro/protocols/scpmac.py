"""SCP-MAC analytical model (extension beyond the paper).

SCP-MAC (Ye, Silva, Heidemann, SenSys 2006) synchronizes the channel-polling
times of neighbouring nodes, so a sender only has to transmit a short wake-up
tone spanning the (small) synchronization error instead of strobing for half
a wake-up interval like X-MAC.  The price is a periodic synchronization
exchange.

The protocol is not part of the paper's evaluation; it is included because
the paper cites it ([10]) as the canonical example of single-objective MAC
optimization, and because it provides a fourth point of comparison for the
framework (a second preamble-sampling protocol with a very different
energy/latency balance).  It demonstrates that the game framework is not
tied to the three protocols of the paper.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict

import numpy as np

from repro.core.parameters import Parameter, ParameterSpace
from repro.protocols.base import DutyCycledMACModel, EnergyBreakdown, ParameterVector
from repro.scenario import Scenario


class SCPMACModel(DutyCycledMACModel):
    """Analytical energy/latency model of SCP-MAC.

    Args:
        scenario: Shared evaluation environment.
        sync_error: Residual clock synchronization error (seconds); the
            wake-up tone must span twice this value.
        sync_period: Interval (seconds) between synchronization exchanges.
        min_poll_interval: Smallest admissible polling interval ``Tp``.
        max_poll_interval: Largest admissible polling interval ``Tp``.
    """

    name = "SCP-MAC"
    family = "preamble-sampling"

    #: Parameter-space key of the polling interval.
    POLL_INTERVAL = "poll_interval"

    def __init__(
        self,
        scenario: Scenario,
        sync_error: float = 0.002,
        sync_period: float = 60.0,
        min_poll_interval: float = 0.01,
        max_poll_interval: float = 10.0,
    ) -> None:
        super().__init__(scenario)
        if sync_error <= 0 or sync_period <= 0:
            raise ValueError("sync_error and sync_period must be positive")
        self._sync_error = float(sync_error)
        self._sync_period = float(sync_period)
        self._min_poll = float(min_poll_interval)
        self._max_poll = min(float(max_poll_interval), scenario.sampling_period)
        if self._min_poll <= 0 or self._min_poll >= self._max_poll:
            raise ValueError(
                f"SCP-MAC poll interval bounds are inconsistent: [{self._min_poll}, {self._max_poll}]"
            )

    # ------------------------------------------------------------------ #
    # Synchronization constants (shared with the simulated behaviour)
    # ------------------------------------------------------------------ #

    @property
    def sync_error(self) -> float:
        """Residual clock synchronization error (seconds).

        The wakeup tone spans twice this value; the simulated behaviour
        reads it so simulator and closed-form model describe the same tone.
        """
        return self._sync_error

    @property
    def sync_period(self) -> float:
        """Interval (seconds) between periodic SYNC exchanges."""
        return self._sync_period

    # ------------------------------------------------------------------ #
    # Parameter space
    # ------------------------------------------------------------------ #

    @cached_property
    def parameter_space(self) -> ParameterSpace:
        """Single tunable: the synchronized channel-polling interval ``Tp``."""
        return ParameterSpace(
            [
                Parameter(
                    name=self.POLL_INTERVAL,
                    lower=self._min_poll,
                    upper=self._max_poll,
                    unit="s",
                    description="SCP-MAC synchronized channel-polling interval Tp",
                )
            ]
        )

    @cached_property
    def _times(self) -> Dict[str, float]:
        radio = self.scenario.radio
        packets = self.scenario.packets
        tone = 2.0 * self._sync_error
        return {
            "tone": tone,
            "data": packets.data_airtime(radio),
            "ack": packets.ack_airtime(radio),
            "sync": packets.sync_airtime(radio),
            "poll": radio.wakeup_time + radio.carrier_sense_time,
            "exchange": packets.data_airtime(radio) + radio.turnaround_time + packets.ack_airtime(radio),
        }

    def _poll_interval(self, params: ParameterVector) -> float:
        return self.coerce(params)[self.POLL_INTERVAL]

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #

    def energy_breakdown(self, params: ParameterVector, ring: int) -> EnergyBreakdown:
        """Per-node energy (J/s) of a ring-``d`` node running SCP-MAC."""
        poll = self._poll_interval(params)
        radio = self.scenario.radio
        times = self._times
        traffic = self.traffic.ring_traffic(ring)

        carrier_sense = times["poll"] * radio.power_rx / poll
        transmit = traffic.output * (
            times["tone"] * radio.power_tx
            + times["data"] * radio.power_tx
            + times["ack"] * radio.power_rx
        )
        receive = traffic.input * (
            0.5 * times["tone"] * radio.power_rx
            + times["data"] * radio.power_rx
            + times["ack"] * radio.power_tx
        )
        overhear = traffic.background * 0.5 * times["tone"] * radio.power_rx
        sync_transmit = times["sync"] * radio.power_tx / self._sync_period
        sync_receive = (
            self.scenario.density * times["sync"] * radio.power_rx / self._sync_period
        )
        sleep = radio.power_sleep * max(0.0, 1.0 - self.duty_cycle(params, ring))
        return EnergyBreakdown(
            carrier_sense=carrier_sense,
            transmit=transmit,
            receive=receive,
            overhear=overhear,
            sync_transmit=sync_transmit,
            sync_receive=sync_receive,
            sleep=sleep,
        )

    # ------------------------------------------------------------------ #
    # Latency, duty cycle, capacity
    # ------------------------------------------------------------------ #

    def hop_latency(self, params: ParameterVector, ring: int) -> float:
        """Expected per-hop latency: wait for the next synchronized poll."""
        del ring
        poll = self._poll_interval(params)
        times = self._times
        return 0.5 * poll + times["tone"] + times["exchange"]

    def duty_cycle(self, params: ParameterVector, ring: int) -> float:
        """Fraction of time the radio is awake."""
        poll = self._poll_interval(params)
        times = self._times
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            times["poll"] / poll
            + traffic.output * (times["tone"] + times["exchange"])
            + traffic.input * (0.5 * times["tone"] + times["exchange"])
            + traffic.background * 0.5 * times["tone"]
            + (1.0 + self.scenario.density) * times["sync"] / self._sync_period
        )
        return min(1.0, awake)

    # ------------------------------------------------------------------ #
    # Batched evaluation (bit-identical to the scalar formulas above)
    # ------------------------------------------------------------------ #

    def _duty_cycle_many(self, poll: np.ndarray, ring: int) -> np.ndarray:
        """Element-wise twin of :meth:`duty_cycle` for a poll-interval column."""
        times = self._times
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            times["poll"] / poll
            + traffic.output * (times["tone"] + times["exchange"])
            + traffic.input * (0.5 * times["tone"] + times["exchange"])
            + traffic.background * 0.5 * times["tone"]
            + (1.0 + self.scenario.density) * times["sync"] / self._sync_period
        )
        return np.minimum(1.0, awake)

    def energy_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``E(X)``: max over rings of the per-node energy."""
        poll = self.coerce_grid(grid)[:, 0]
        radio = self.scenario.radio
        times = self._times
        best = None
        for ring in self.scenario.topology.rings():
            traffic = self.traffic.ring_traffic(ring)
            carrier_sense = times["poll"] * radio.power_rx / poll
            transmit = traffic.output * (
                times["tone"] * radio.power_tx
                + times["data"] * radio.power_tx
                + times["ack"] * radio.power_rx
            )
            receive = traffic.input * (
                0.5 * times["tone"] * radio.power_rx
                + times["data"] * radio.power_rx
                + times["ack"] * radio.power_tx
            )
            overhear = traffic.background * 0.5 * times["tone"] * radio.power_rx
            sync_transmit = times["sync"] * radio.power_tx / self._sync_period
            sync_receive = (
                self.scenario.density * times["sync"] * radio.power_rx / self._sync_period
            )
            sleep = radio.power_sleep * np.maximum(
                0.0, 1.0 - self._duty_cycle_many(poll, ring)
            )
            total = (
                carrier_sense + transmit + receive + overhear + sync_transmit + sync_receive + sleep
            )
            best = total if best is None else np.maximum(best, total)
        return best

    def latency_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``L(X)``: one synchronized-poll wait per hop."""
        poll = self.coerce_grid(grid)[:, 0]
        times = self._times
        hop = 0.5 * poll + times["tone"] + times["exchange"]
        total = 0.0
        for _ in range(1, self.scenario.depth + 1):
            total = total + hop
        return total

    def capacity_margin_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized bottleneck channel-utilization slack."""
        poll = self.coerce_grid(grid)[:, 0]
        times = self._times
        bottleneck = self.scenario.topology.bottleneck_ring
        traffic = self.traffic.ring_traffic(bottleneck)
        per_second_airtime = (traffic.peak_output + traffic.peak_input) * (times["tone"] + times["exchange"])
        contention_stretch = 1.0 + traffic.background * poll * times["exchange"]
        return self.max_utilization - per_second_airtime * contention_stretch

    def capacity_margin(self, params: ParameterVector) -> float:
        """Bottleneck channel-utilization slack.

        All transmissions in a neighbourhood are squeezed into the instants
        right after the synchronized polls, so contention is fiercer than in
        X-MAC; the per-poll traffic of the bottleneck neighbourhood — at its
        peak (bursty) rate — must fit into the admissible utilization.
        """
        poll = self._poll_interval(params)
        times = self._times
        bottleneck = self.scenario.topology.bottleneck_ring
        traffic = self.traffic.ring_traffic(bottleneck)
        per_second_airtime = (traffic.peak_output + traffic.peak_input) * (times["tone"] + times["exchange"])
        # The neighbourhood's packets all contend within the polling epochs.
        contention_stretch = 1.0 + traffic.background * poll * times["exchange"]
        return self.max_utilization - per_second_airtime * contention_stretch
