"""LMAC analytical model.

LMAC (van Hoesel & Havinga, 2004) is a frame-based (TDMA) protocol: time is
divided into frames of ``N`` slots and every node owns exactly one slot per
frame, chosen so that no two nodes within two hops share a slot.  A slot
starts with a short *control* section — transmitted by the slot owner and
received by all of its neighbours — that advertises the addressee of the data
unit that follows; nodes that are not addressed switch their radio off for
the data section.  Because slot ownership removes contention entirely, the
protocol's costs are dominated by the fixed per-slot overheads: every node
wakes up for the control section (plus a clock-drift guard) of *every* slot
of the frame, and transmits its own control message once per frame even when
it has no data.

Tunable parameters:

* ``slot_length`` — the duration of one slot.  Longer slots dilute the fixed
  control/guard overhead (cheaper) but stretch the frame (slower).
* ``slot_count`` — the number of slots per frame ``N``.  It must be at least
  the two-hop neighbourhood size (``2C + 1``) for a collision-free slot
  assignment to exist; more slots lengthen the frame without saving energy,
  so the optimizer drives this to its lower bound, which is itself a useful
  sanity check of the optimization substrate.

Per-hop latency is dominated by waiting for the forwarding node's own slot,
``Tf / 2`` on average with ``Tf = N * slot_length``.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict

import numpy as np

from repro.core.parameters import Parameter, ParameterSpace
from repro.exceptions import ConfigurationError
from repro.protocols.base import DutyCycledMACModel, EnergyBreakdown, ParameterVector
from repro.scenario import Scenario


class LMACModel(DutyCycledMACModel):
    """Analytical energy/latency model of LMAC.

    Args:
        scenario: Shared evaluation environment.
        guard_time: Per-slot clock-drift guard during which the receiver must
            already be listening (seconds).
        max_frame: Largest admissible frame length in seconds, bounded by how
            much clock drift the guard time can absorb between control
            messages.
        max_slot_count_factor: Upper bound on the slot count expressed as a
            multiple of the minimum (two-hop neighbourhood) slot count.
    """

    name = "LMAC"
    family = "frame-based-tdma"

    #: Parameter-space keys.
    SLOT_LENGTH = "slot_length"
    SLOT_COUNT = "slot_count"

    def __init__(
        self,
        scenario: Scenario,
        guard_time: float = 0.002,
        max_frame: float = 10.0,
        max_slot_count_factor: float = 2.0,
    ) -> None:
        super().__init__(scenario)
        if guard_time < 0:
            raise ConfigurationError(f"guard_time must be >= 0, got {guard_time!r}")
        if max_frame <= 0:
            raise ConfigurationError(f"max_frame must be positive, got {max_frame!r}")
        if max_slot_count_factor < 1.0:
            raise ConfigurationError(
                f"max_slot_count_factor must be >= 1, got {max_slot_count_factor!r}"
            )
        self._guard_time = float(guard_time)
        self._max_frame = float(max_frame)
        self._max_slot_count_factor = float(max_slot_count_factor)

    # ------------------------------------------------------------------ #
    # Slot structure
    # ------------------------------------------------------------------ #

    @cached_property
    def _times(self) -> Dict[str, float]:
        radio = self.scenario.radio
        packets = self.scenario.packets
        return {
            "control": packets.control_airtime(radio),
            "data": packets.data_airtime(radio),
            "wakeup": radio.wakeup_time,
            "listen_per_slot": packets.control_airtime(radio) + self._guard_time + radio.wakeup_time,
        }

    @property
    def min_slot_count(self) -> int:
        """Smallest collision-free slot count: the two-hop neighbourhood size."""
        return 2 * self.scenario.density + 1

    @property
    def max_slot_count(self) -> int:
        """Largest admissible slot count."""
        return int(round(self.min_slot_count * self._max_slot_count_factor))

    @property
    def min_slot_length(self) -> float:
        """Smallest slot that fits guard + control section + one data unit."""
        times = self._times
        return times["control"] + times["data"] + self._guard_time + times["wakeup"]

    @property
    def max_slot_length(self) -> float:
        """Largest admissible slot, from the frame-length (drift) bound."""
        return self._max_frame / self.min_slot_count

    @cached_property
    def parameter_space(self) -> ParameterSpace:
        """Two tunables: slot length and slot count."""
        if self.max_slot_length <= self.min_slot_length:
            raise ConfigurationError(
                "LMAC parameter space is empty: the drift-bounded maximum slot "
                f"({self.max_slot_length:.4f}s) does not exceed the minimum slot "
                f"({self.min_slot_length:.4f}s); increase max_frame or shrink frames"
            )
        return ParameterSpace(
            [
                Parameter(
                    name=self.SLOT_LENGTH,
                    lower=self.min_slot_length,
                    upper=self.max_slot_length,
                    unit="s",
                    description="LMAC slot duration (control + guard + data section)",
                ),
                Parameter(
                    name=self.SLOT_COUNT,
                    lower=float(self.min_slot_count),
                    upper=float(self.max_slot_count),
                    unit="slots",
                    description="LMAC slots per frame (>= two-hop neighbourhood size)",
                    integer=True,
                ),
            ]
        )

    def _slot_length(self, params: ParameterVector) -> float:
        return self.coerce(params)[self.SLOT_LENGTH]

    def _slot_count(self, params: ParameterVector) -> float:
        return self.coerce(params)[self.SLOT_COUNT]

    def frame_length(self, params: ParameterVector) -> float:
        """Frame length ``Tf = N * slot_length`` in seconds."""
        values = self.coerce(params)
        return values[self.SLOT_LENGTH] * values[self.SLOT_COUNT]

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #

    def energy_breakdown(self, params: ParameterVector, ring: int) -> EnergyBreakdown:
        """Per-node energy (J/s) of a ring-``d`` node running LMAC.

        Components:

        * carrier sensing — waking up and listening to guard + control
          section of every slot of the frame,
        * transmit — the data units for outgoing packets,
        * receive — the data units of incoming packets (the control section
          announcing them is already counted under carrier sensing),
        * overhear — zero: slot ownership means non-addressed neighbours
          switch off after the control section, which is already accounted,
        * sync transmit — the node's own control message, sent every frame
          regardless of traffic (this is LMAC's signature fixed cost).
        """
        values = self.coerce(params)
        slot = values[self.SLOT_LENGTH]
        count = values[self.SLOT_COUNT]
        frame = slot * count
        radio = self.scenario.radio
        times = self._times
        traffic = self.traffic.ring_traffic(ring)

        # The node listens to every slot's guard + control except its own.
        carrier_sense = (count - 1.0) * times["listen_per_slot"] * radio.power_rx / frame
        transmit = traffic.output * times["data"] * radio.power_tx
        receive = traffic.input * times["data"] * radio.power_rx
        sync_transmit = (times["control"] + times["wakeup"]) * radio.power_tx / frame
        sleep = radio.power_sleep * max(0.0, 1.0 - self.duty_cycle(params, ring))
        return EnergyBreakdown(
            carrier_sense=carrier_sense,
            transmit=transmit,
            receive=receive,
            overhear=0.0,
            sync_transmit=sync_transmit,
            sync_receive=0.0,
            sleep=sleep,
        )

    # ------------------------------------------------------------------ #
    # Latency, duty cycle, capacity
    # ------------------------------------------------------------------ #

    def hop_latency(self, params: ParameterVector, ring: int) -> float:
        """Expected per-hop latency: wait for the forwarder's own slot.

        Slot assignments are not ordered along the routing path, so the
        expected wait at each hop is half a frame, plus the data section of
        the transmitting slot.
        """
        del ring
        return 0.5 * self.frame_length(params) + self._times["data"]

    def duty_cycle(self, params: ParameterVector, ring: int) -> float:
        """Fraction of time the radio is awake."""
        values = self.coerce(params)
        slot = values[self.SLOT_LENGTH]
        count = values[self.SLOT_COUNT]
        frame = slot * count
        times = self._times
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            (count - 1.0) * times["listen_per_slot"] / frame
            + (times["control"] + times["wakeup"]) / frame
            + traffic.output * times["data"]
            + traffic.input * times["data"]
        )
        return min(1.0, awake)

    # ------------------------------------------------------------------ #
    # Batched evaluation (bit-identical to the scalar formulas above)
    # ------------------------------------------------------------------ #

    def _duty_cycle_many(self, slot: np.ndarray, count: np.ndarray, ring: int) -> np.ndarray:
        """Element-wise twin of :meth:`duty_cycle` for slot/count columns."""
        frame = slot * count
        times = self._times
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            (count - 1.0) * times["listen_per_slot"] / frame
            + (times["control"] + times["wakeup"]) / frame
            + traffic.output * times["data"]
            + traffic.input * times["data"]
        )
        return np.minimum(1.0, awake)

    def energy_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``E(X)``: max over rings of the per-node energy."""
        grid = self.coerce_grid(grid)
        slot, count = grid[:, 0], grid[:, 1]
        frame = slot * count
        radio = self.scenario.radio
        times = self._times
        best = None
        for ring in self.scenario.topology.rings():
            traffic = self.traffic.ring_traffic(ring)
            carrier_sense = (count - 1.0) * times["listen_per_slot"] * radio.power_rx / frame
            transmit = traffic.output * times["data"] * radio.power_tx
            receive = traffic.input * times["data"] * radio.power_rx
            sync_transmit = (times["control"] + times["wakeup"]) * radio.power_tx / frame
            sleep = radio.power_sleep * np.maximum(
                0.0, 1.0 - self._duty_cycle_many(slot, count, ring)
            )
            total = carrier_sense + transmit + receive + 0.0 + sync_transmit + 0.0 + sleep
            best = total if best is None else np.maximum(best, total)
        return best

    def latency_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``L(X)``: half a frame of slot wait per hop."""
        grid = self.coerce_grid(grid)
        frame = grid[:, 0] * grid[:, 1]
        hop = 0.5 * frame + self._times["data"]
        total = 0.0
        for _ in range(1, self.scenario.depth + 1):
            total = total + hop
        return total

    def capacity_margin_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized bottleneck capacity slack."""
        grid = self.coerce_grid(grid)
        frame = grid[:, 0] * grid[:, 1]
        bottleneck = self.scenario.topology.bottleneck_ring
        offered_per_frame = self.traffic.peak_output_rate(bottleneck) * frame
        return self.max_utilization - offered_per_frame

    def capacity_margin(self, params: ParameterVector) -> float:
        """Bottleneck capacity slack: one data unit per owned slot per frame.

        The peak (bursty) output rate is what must fit into the owned slot.
        """
        frame = self.frame_length(params)
        bottleneck = self.scenario.topology.bottleneck_ring
        offered_per_frame = self.traffic.peak_output_rate(bottleneck) * frame
        return self.max_utilization - offered_per_frame
