"""X-MAC analytical model.

X-MAC (Buettner et al., SenSys 2006) is an asynchronous preamble-sampling
protocol: receivers sleep almost all the time and briefly poll the channel
every *wake-up interval* ``Tw``; a sender transmits a train of short,
addressed preamble strobes until the intended receiver wakes up, answers with
an early acknowledgement, and receives the data frame.  Non-addressed
neighbours that happen to wake during the strobe train overhear a single
strobe and go back to sleep.

The single tunable parameter is the wake-up interval ``Tw``:

* small ``Tw``  → frequent polling (expensive when idle) but short preambles
  and low per-hop latency;
* large ``Tw``  → cheap idle listening but each transmission must strobe for
  ``Tw / 2`` on average, and per-hop latency grows with ``Tw / 2``.

The resulting per-node energy is the classic U-shaped curve
``a / Tw + b·Tw + c`` whose minimiser moves with the traffic load, which is
exactly the structure the paper's Figure 1a exploits.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict

import numpy as np

from repro.core.parameters import Parameter, ParameterSpace
from repro.protocols.base import DutyCycledMACModel, EnergyBreakdown, ParameterVector
from repro.scenario import Scenario


class XMACModel(DutyCycledMACModel):
    """Analytical energy/latency model of X-MAC.

    Args:
        scenario: Shared evaluation environment.
        min_wakeup_interval: Smallest admissible ``Tw`` in seconds.  Bounded
            below by the time needed to poll the channel and exchange one
            strobe/ack pair.
        max_wakeup_interval: Largest admissible ``Tw`` in seconds.  Bounded
            above by the application sampling period (polling less often than
            packets arrive starves the queue).
    """

    name = "X-MAC"
    family = "preamble-sampling"

    #: Parameter-space key of the wake-up interval.
    WAKEUP_INTERVAL = "wakeup_interval"

    def __init__(
        self,
        scenario: Scenario,
        min_wakeup_interval: float = 0.01,
        max_wakeup_interval: float = 5.0,
    ) -> None:
        super().__init__(scenario)
        self._min_wakeup = float(min_wakeup_interval)
        self._max_wakeup = min(float(max_wakeup_interval), scenario.sampling_period)
        if self._min_wakeup <= 0 or self._min_wakeup >= self._max_wakeup:
            raise ValueError(
                "X-MAC wake-up interval bounds are inconsistent: "
                f"[{self._min_wakeup}, {self._max_wakeup}]"
            )

    # ------------------------------------------------------------------ #
    # Parameter space
    # ------------------------------------------------------------------ #

    @cached_property
    def parameter_space(self) -> ParameterSpace:
        """Single tunable: the wake-up (channel check) interval ``Tw``."""
        return ParameterSpace(
            [
                Parameter(
                    name=self.WAKEUP_INTERVAL,
                    lower=self._min_wakeup,
                    upper=self._max_wakeup,
                    unit="s",
                    description="X-MAC wake-up / channel-check interval Tw",
                )
            ]
        )

    # ------------------------------------------------------------------ #
    # Timing building blocks
    # ------------------------------------------------------------------ #

    @cached_property
    def _times(self) -> Dict[str, float]:
        """Pre-computed frame durations and derived powers."""
        radio = self.scenario.radio
        packets = self.scenario.packets
        strobe = packets.strobe_airtime(radio)
        ack = packets.ack_airtime(radio)
        data = packets.data_airtime(radio)
        gap = ack + 2.0 * radio.turnaround_time
        strobe_period = strobe + gap
        # Average power while strobing: alternate strobe transmissions with
        # listening gaps waiting for the receiver's early acknowledgement.
        strobe_power = (strobe * radio.power_tx + gap * radio.power_rx) / strobe_period
        return {
            "strobe": strobe,
            "ack": ack,
            "data": data,
            "gap": gap,
            "strobe_period": strobe_period,
            "strobe_power": strobe_power,
            "poll": radio.wakeup_time + radio.carrier_sense_time,
            "exchange": data + radio.turnaround_time + ack,
        }

    def _wakeup_interval(self, params: ParameterVector) -> float:
        return self.coerce(params)[self.WAKEUP_INTERVAL]

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #

    def energy_breakdown(self, params: ParameterVector, ring: int) -> EnergyBreakdown:
        """Per-node energy (J/s) of a ring-``d`` node running X-MAC.

        Components:

        * carrier sensing — one channel poll per wake-up interval,
        * transmit — strobing for ``Tw/2`` on average, then data + ack wait,
          for every outgoing packet,
        * receive — residual strobe + early ack + data, for every incoming
          packet,
        * overhear — one strobe period per background transmission (X-MAC's
          addressed strobes let non-targets abort early),
        * sleep — residual sleep-mode draw.
        """
        wakeup = self._wakeup_interval(params)
        times = self._times
        radio = self.scenario.radio
        traffic = self.traffic.ring_traffic(ring)

        carrier_sense = times["poll"] * radio.power_rx / wakeup
        transmit = traffic.output * (
            0.5 * wakeup * times["strobe_power"]
            + times["data"] * radio.power_tx
            + times["ack"] * radio.power_rx
        )
        receive = traffic.input * (
            (0.5 * times["strobe_period"] + times["strobe"]) * radio.power_rx
            + times["ack"] * radio.power_tx
            + times["data"] * radio.power_rx
        )
        overhear = traffic.background * 1.5 * times["strobe_period"] * radio.power_rx
        sleep = radio.power_sleep * max(0.0, 1.0 - self.duty_cycle(params, ring))
        return EnergyBreakdown(
            carrier_sense=carrier_sense,
            transmit=transmit,
            receive=receive,
            overhear=overhear,
            sync_transmit=0.0,
            sync_receive=0.0,
            sleep=sleep,
        )

    # ------------------------------------------------------------------ #
    # Latency, duty cycle, capacity
    # ------------------------------------------------------------------ #

    def hop_latency(self, params: ParameterVector, ring: int) -> float:
        """Expected per-hop latency: half a wake-up interval of strobing plus
        the strobe/ack handshake and the data exchange."""
        del ring  # X-MAC's per-hop latency is ring-independent under low load
        wakeup = self._wakeup_interval(params)
        times = self._times
        return 0.5 * wakeup + times["strobe_period"] + times["exchange"]

    def duty_cycle(self, params: ParameterVector, ring: int) -> float:
        """Fraction of time the radio is awake."""
        wakeup = self._wakeup_interval(params)
        times = self._times
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            times["poll"] / wakeup
            + traffic.output * (0.5 * wakeup + times["exchange"])
            + traffic.input * (0.5 * times["strobe_period"] + times["strobe"] + times["exchange"])
            + traffic.background * 1.5 * times["strobe_period"]
        )
        return min(1.0, awake)

    # ------------------------------------------------------------------ #
    # Batched evaluation (bit-identical to the scalar formulas above)
    # ------------------------------------------------------------------ #

    def _duty_cycle_many(self, wakeup: np.ndarray, ring: int) -> np.ndarray:
        """Element-wise twin of :meth:`duty_cycle` for a wake-up column."""
        times = self._times
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            times["poll"] / wakeup
            + traffic.output * (0.5 * wakeup + times["exchange"])
            + traffic.input * (0.5 * times["strobe_period"] + times["strobe"] + times["exchange"])
            + traffic.background * 1.5 * times["strobe_period"]
        )
        return np.minimum(1.0, awake)

    def energy_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``E(X)``: max over rings of the per-node energy."""
        wakeup = self.coerce_grid(grid)[:, 0]
        times = self._times
        radio = self.scenario.radio
        best = None
        for ring in self.scenario.topology.rings():
            traffic = self.traffic.ring_traffic(ring)
            carrier_sense = times["poll"] * radio.power_rx / wakeup
            transmit = traffic.output * (
                0.5 * wakeup * times["strobe_power"]
                + times["data"] * radio.power_tx
                + times["ack"] * radio.power_rx
            )
            receive = traffic.input * (
                (0.5 * times["strobe_period"] + times["strobe"]) * radio.power_rx
                + times["ack"] * radio.power_tx
                + times["data"] * radio.power_rx
            )
            overhear = traffic.background * 1.5 * times["strobe_period"] * radio.power_rx
            sleep = radio.power_sleep * np.maximum(
                0.0, 1.0 - self._duty_cycle_many(wakeup, ring)
            )
            total = carrier_sense + transmit + receive + overhear + 0.0 + 0.0 + sleep
            best = total if best is None else np.maximum(best, total)
        return best

    def latency_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``L(X)``: the ring-``D`` end-to-end delay."""
        wakeup = self.coerce_grid(grid)[:, 0]
        times = self._times
        hop = 0.5 * wakeup + times["strobe_period"] + times["exchange"]
        total = 0.0
        for _ in range(1, self.scenario.depth + 1):
            total = total + hop
        return total

    def capacity_margin_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized bottleneck channel-utilization slack."""
        wakeup = self.coerce_grid(grid)[:, 0]
        times = self._times
        bottleneck = self.scenario.topology.bottleneck_ring
        traffic = self.traffic.ring_traffic(bottleneck)
        busy = traffic.peak_output * (0.5 * wakeup + times["strobe_period"] + times["exchange"]) + (
            traffic.peak_input * (0.5 * times["strobe_period"] + times["strobe"] + times["exchange"])
        )
        return self.max_utilization - busy

    def capacity_margin(self, params: ParameterVector) -> float:
        """Bottleneck (ring-1) channel-utilization slack.

        Each outgoing packet occupies the channel for the strobe train plus
        the data exchange; each incoming packet for the residual strobe plus
        the exchange.  The busy fraction must stay below
        :attr:`max_utilization`.  Capacity is provisioned for the *peak*
        rates, so bursty traffic tightens this constraint.
        """
        wakeup = self._wakeup_interval(params)
        times = self._times
        bottleneck = self.scenario.topology.bottleneck_ring
        traffic = self.traffic.ring_traffic(bottleneck)
        busy = traffic.peak_output * (0.5 * wakeup + times["strobe_period"] + times["exchange"]) + (
            traffic.peak_input * (0.5 * times["strobe_period"] + times["strobe"] + times["exchange"])
        )
        return self.max_utilization - busy
