"""Analytical models of duty-cycled MAC protocols.

One module per protocol, each deriving per-node energy consumption (split
into carrier sensing, transmission, reception, overhearing and
synchronization), per-hop latency and channel-capacity constraints from the
shared :class:`~repro.scenario.Scenario`:

* :mod:`repro.protocols.xmac` — X-MAC, asynchronous preamble sampling.
* :mod:`repro.protocols.dmac` — DMAC, slotted contention-based with a
  staggered wake-up schedule along the gathering tree.
* :mod:`repro.protocols.lmac` — LMAC, frame-based (TDMA) with node-owned
  slots.
* :mod:`repro.protocols.scpmac` — SCP-MAC, scheduled channel polling
  (extension beyond the paper; useful for ablations).

:mod:`repro.protocols.registry` exposes a name-based factory used by the CLI
and the experiment drivers.
"""

from repro.protocols.base import DutyCycledMACModel, EnergyBreakdown
from repro.protocols.xmac import XMACModel
from repro.protocols.dmac import DMACModel
from repro.protocols.lmac import LMACModel
from repro.protocols.scpmac import SCPMACModel
from repro.protocols.registry import (
    PROTOCOL_FAMILIES,
    available_protocols,
    create_protocol,
    paper_protocols,
)

__all__ = [
    "DutyCycledMACModel",
    "EnergyBreakdown",
    "XMACModel",
    "DMACModel",
    "LMACModel",
    "SCPMACModel",
    "PROTOCOL_FAMILIES",
    "available_protocols",
    "create_protocol",
    "paper_protocols",
]
