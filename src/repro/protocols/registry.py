"""Name-based protocol factory.

The CLI, the experiment drivers and the benches refer to protocols by name
(``"xmac"``, ``"dmac"``, ``"lmac"``, ``"scpmac"``); this module maps those
names to the analytical model classes and instantiates them against a
scenario.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.exceptions import ConfigurationError
from repro.protocols.base import DutyCycledMACModel
from repro.protocols.dmac import DMACModel
from repro.protocols.lmac import LMACModel
from repro.protocols.scpmac import SCPMACModel
from repro.protocols.xmac import XMACModel
from repro.scenario import Scenario

#: Mapping from canonical lower-case protocol name to its model class.
_REGISTRY: Dict[str, Type[DutyCycledMACModel]] = {
    "xmac": XMACModel,
    "dmac": DMACModel,
    "lmac": LMACModel,
    "scpmac": SCPMACModel,
}

#: Aliases accepted on the command line and in configuration files.
_ALIASES: Dict[str, str] = {
    "x-mac": "xmac",
    "d-mac": "dmac",
    "l-mac": "lmac",
    "scp-mac": "scpmac",
    "scp": "scpmac",
}

#: Protocol family of each registered protocol (for reports).
PROTOCOL_FAMILIES: Dict[str, str] = {
    name: cls.family for name, cls in _REGISTRY.items()
}

#: The three protocols evaluated in the paper, in the paper's order.
PAPER_PROTOCOL_NAMES = ("xmac", "dmac", "lmac")

#: Names of the built-in protocols, which can be neither unregistered nor
#: overwritten.
_BUILTIN_NAMES = ("xmac", "dmac", "lmac", "scpmac")


def canonical_name(name: str) -> str:
    """Normalize a user-supplied protocol name to its canonical registry key."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown protocol {name!r}; known protocols: {known}")
    return key


def available_protocols() -> List[str]:
    """Canonical names of every registered protocol."""
    return sorted(_REGISTRY)


def protocol_class(name: str) -> Type[DutyCycledMACModel]:
    """Return the model class registered under ``name``."""
    return _REGISTRY[canonical_name(name)]


def create_protocol(name: str, scenario: Scenario, **kwargs: object) -> DutyCycledMACModel:
    """Instantiate the protocol model registered under ``name``.

    Extra keyword arguments are forwarded to the model constructor (e.g.
    ``max_frame=...`` for DMAC).
    """
    return protocol_class(name)(scenario, **kwargs)


def paper_protocols(scenario: Scenario) -> Dict[str, DutyCycledMACModel]:
    """Instantiate the three protocols of the paper against one scenario."""
    return {name: create_protocol(name, scenario) for name in PAPER_PROTOCOL_NAMES}


def register_protocol(
    name: str, cls: Type[DutyCycledMACModel], overwrite: bool = False
) -> None:
    """Register a user-defined protocol model under ``name``.

    This is the extension point for applying the framework to protocols
    beyond the built-in ones; see ``examples/custom_protocol.py``.  A
    registered protocol is addressable everywhere names are — including the
    ``protocols`` field of an :class:`~repro.api.spec.ExperimentSpec`,
    which resolves through this registry at plan time.

    Args:
        name: Registry key (normalized to lower case).
        cls: The model class.
        overwrite: Allow replacing an existing *user-registered* protocol
            of the same name (scripts and notebooks re-run registration);
            built-in protocols and aliases can never be replaced.

    Raises:
        ConfigurationError: if the name is already taken (and ``overwrite``
            is false, or the name is built-in/an alias) or the class does
            not derive from :class:`DutyCycledMACModel`.
    """
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("protocol name must be non-empty")
    if key in _BUILTIN_NAMES or key in _ALIASES:
        raise ConfigurationError(
            f"protocol name {name!r} is reserved by a built-in protocol"
        )
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"protocol name {name!r} is already registered "
            f"(pass overwrite=True to replace it)"
        )
    if not (isinstance(cls, type) and issubclass(cls, DutyCycledMACModel)):
        raise ConfigurationError("protocol class must derive from DutyCycledMACModel")
    _REGISTRY[key] = cls
    PROTOCOL_FAMILIES[key] = cls.family


def unregister_protocol(name: str) -> None:
    """Remove a previously registered user-defined protocol (test helper)."""
    key = name.strip().lower()
    if key in _BUILTIN_NAMES:
        raise ConfigurationError(f"built-in protocol {name!r} cannot be unregistered")
    _REGISTRY.pop(key, None)
    PROTOCOL_FAMILIES.pop(key, None)
