"""DMAC analytical model.

DMAC (Lu, Krishnamachari, Raghavendra, 2007) is a slotted, contention-based
protocol designed for data-gathering trees.  Nodes wake up according to a
*staggered* schedule: a node at depth ``d`` has its receive slot exactly when
its children (depth ``d + 1``) have their transmit slot, so a packet injected
into the tree ripples toward the sink in consecutive slots without waiting a
full frame at every hop.  Between its receive and transmit slots a node
sleeps for the remainder of the frame.

The tunable parameter is the frame length ``Tf`` (the period of the staggered
schedule):

* small ``Tf``  → the schedule comes around often: low latency, but the node
  pays the receive-slot and transmit-slot idle listening every frame;
* large ``Tf``  → the fixed per-frame cost is amortized over a long sleep,
  but a freshly generated packet waits ``Tf / 2`` on average for the next
  departure wave.

Unlike X-MAC there is no per-packet penalty that grows with ``Tf``, so the
energy is monotonically decreasing in ``Tf`` and the energy player always
pushes ``Tf`` against the delay constraint or the synchronization bound —
which is why the paper's Figure 1b saturates for large ``Lmax``.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict

import numpy as np

from repro.core.parameters import Parameter, ParameterSpace
from repro.protocols.base import DutyCycledMACModel, EnergyBreakdown, ParameterVector
from repro.scenario import Scenario


class DMACModel(DutyCycledMACModel):
    """Analytical energy/latency model of DMAC.

    Args:
        scenario: Shared evaluation environment.
        contention_window: Average contention time (seconds) spent listening
            before a data transmission within a slot.
        max_frame: Largest admissible frame length ``Tf`` in seconds.  Bounded
            by how long the staggered schedules can stay aligned given clock
            drift between re-synchronizations.
        sync_period: Interval (seconds) between schedule synchronization
            exchanges (SYNC frames); contributes a small fixed cost.
    """

    name = "DMAC"
    family = "slotted-contention"

    #: Parameter-space key of the frame length.
    FRAME_LENGTH = "frame_length"

    def __init__(
        self,
        scenario: Scenario,
        contention_window: float = 0.006,
        max_frame: float = 9.5,
        sync_period: float = 60.0,
    ) -> None:
        super().__init__(scenario)
        if contention_window <= 0:
            raise ValueError(f"contention_window must be positive, got {contention_window!r}")
        if sync_period <= 0:
            raise ValueError(f"sync_period must be positive, got {sync_period!r}")
        self._contention_window = float(contention_window)
        self._sync_period = float(sync_period)
        self._max_frame = min(float(max_frame), scenario.sampling_period)
        if self._max_frame <= self.min_frame:
            raise ValueError(
                f"max_frame ({self._max_frame}) must exceed the minimum frame "
                f"({self.min_frame})"
            )

    # ------------------------------------------------------------------ #
    # Slot structure
    # ------------------------------------------------------------------ #

    @cached_property
    def slot_time(self) -> float:
        """Duration ``mu`` of one DMAC slot: contention + data + ack."""
        radio = self.scenario.radio
        packets = self.scenario.packets
        return (
            self._contention_window
            + packets.data_airtime(radio)
            + radio.turnaround_time
            + packets.ack_airtime(radio)
            + radio.wakeup_time
        )

    @property
    def min_frame(self) -> float:
        """Smallest admissible frame: receive slot + transmit slot + one slot
        of slack for the staggered hand-off toward the parent."""
        return 3.0 * self.slot_time

    @property
    def max_frame(self) -> float:
        """Largest admissible frame (synchronization-drift bound)."""
        return self._max_frame

    @cached_property
    def parameter_space(self) -> ParameterSpace:
        """Single tunable: the frame length ``Tf``."""
        return ParameterSpace(
            [
                Parameter(
                    name=self.FRAME_LENGTH,
                    lower=self.min_frame,
                    upper=self._max_frame,
                    unit="s",
                    description="DMAC staggered-schedule frame length Tf",
                )
            ]
        )

    def _frame_length(self, params: ParameterVector) -> float:
        return self.coerce(params)[self.FRAME_LENGTH]

    @cached_property
    def _times(self) -> Dict[str, float]:
        radio = self.scenario.radio
        packets = self.scenario.packets
        return {
            "data": packets.data_airtime(radio),
            "ack": packets.ack_airtime(radio),
            "sync": packets.sync_airtime(radio),
            "exchange": packets.data_airtime(radio) + radio.turnaround_time + packets.ack_airtime(radio),
        }

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #

    def energy_breakdown(self, params: ParameterVector, ring: int) -> EnergyBreakdown:
        """Per-node energy (J/s) of a ring-``d`` node running DMAC.

        Components:

        * carrier sensing — the node is awake for its receive slot and its
          transmit slot every frame even when no traffic flows (the idle
          listening the protocol pays for staying on schedule),
        * transmit — contention + data + ack-wait per outgoing packet,
        * receive — the ack transmission per incoming packet (the data
          reception itself happens inside the receive slot already counted as
          idle listening, so only the ack is extra),
        * overhear — background transmissions that fall inside the node's
          awake window,
        * sync — periodic SYNC exchange with the parent and the children.
        """
        frame = self._frame_length(params)
        radio = self.scenario.radio
        times = self._times
        traffic = self.traffic.ring_traffic(ring)

        carrier_sense = 2.0 * self.slot_time * radio.power_rx / frame
        transmit = traffic.output * (
            0.5 * self._contention_window * radio.power_rx
            + times["data"] * radio.power_tx
            + times["ack"] * radio.power_rx
        )
        receive = traffic.input * times["ack"] * radio.power_tx
        awake_fraction = min(1.0, 2.0 * self.slot_time / frame)
        overhear = traffic.background * awake_fraction * times["data"] * radio.power_rx
        sync_transmit = times["sync"] * radio.power_tx / self._sync_period
        sync_receive = (
            (1.0 + traffic.input_links) * times["sync"] * radio.power_rx / self._sync_period
        )
        sleep = radio.power_sleep * max(0.0, 1.0 - self.duty_cycle(params, ring))
        return EnergyBreakdown(
            carrier_sense=carrier_sense,
            transmit=transmit,
            receive=receive,
            overhear=overhear,
            sync_transmit=sync_transmit,
            sync_receive=sync_receive,
            sleep=sleep,
        )

    # ------------------------------------------------------------------ #
    # Latency, duty cycle, capacity
    # ------------------------------------------------------------------ #

    def hop_latency(self, params: ParameterVector, ring: int) -> float:
        """Forwarding latency of one hop once the packet is inside the wave.

        Under the staggered schedule the parent's transmit slot immediately
        follows its receive slot, so every relay hop costs one slot time.
        The initial wait for the departure wave (``Tf / 2`` on average) is
        accounted once per packet in :meth:`e2e_latency`.
        """
        del params, ring
        return self.slot_time

    def e2e_latency(self, params: ParameterVector, source_ring: int | None = None) -> float:
        """End-to-end delay: initial ``Tf / 2`` wave wait plus one slot per hop."""
        frame = self._frame_length(params)
        return 0.5 * frame + super().e2e_latency(params, source_ring)

    def duty_cycle(self, params: ParameterVector, ring: int) -> float:
        """Fraction of time the radio is awake."""
        frame = self._frame_length(params)
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            2.0 * self.slot_time / frame
            + traffic.output * (0.5 * self._contention_window + self._times["exchange"])
            + traffic.input * self._times["ack"]
        )
        return min(1.0, awake)

    # ------------------------------------------------------------------ #
    # Batched evaluation (bit-identical to the scalar formulas above)
    # ------------------------------------------------------------------ #

    def _duty_cycle_many(self, frame: np.ndarray, ring: int) -> np.ndarray:
        """Element-wise twin of :meth:`duty_cycle` for a frame-length column."""
        traffic = self.traffic.ring_traffic(ring)
        awake = (
            2.0 * self.slot_time / frame
            + traffic.output * (0.5 * self._contention_window + self._times["exchange"])
            + traffic.input * self._times["ack"]
        )
        return np.minimum(1.0, awake)

    def energy_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``E(X)``: max over rings of the per-node energy."""
        frame = self.coerce_grid(grid)[:, 0]
        radio = self.scenario.radio
        times = self._times
        best = None
        for ring in self.scenario.topology.rings():
            traffic = self.traffic.ring_traffic(ring)
            carrier_sense = 2.0 * self.slot_time * radio.power_rx / frame
            transmit = traffic.output * (
                0.5 * self._contention_window * radio.power_rx
                + times["data"] * radio.power_tx
                + times["ack"] * radio.power_rx
            )
            receive = traffic.input * times["ack"] * radio.power_tx
            awake_fraction = np.minimum(1.0, 2.0 * self.slot_time / frame)
            overhear = traffic.background * awake_fraction * times["data"] * radio.power_rx
            sync_transmit = times["sync"] * radio.power_tx / self._sync_period
            sync_receive = (
                (1.0 + traffic.input_links) * times["sync"] * radio.power_rx / self._sync_period
            )
            sleep = radio.power_sleep * np.maximum(
                0.0, 1.0 - self._duty_cycle_many(frame, ring)
            )
            total = (
                carrier_sense + transmit + receive + overhear + sync_transmit + sync_receive + sleep
            )
            best = total if best is None else np.maximum(best, total)
        return best

    def latency_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized ``L(X)``: initial wave wait plus one slot per hop."""
        frame = self.coerce_grid(grid)[:, 0]
        hops = 0
        for _ in range(1, self.scenario.depth + 1):
            hops = hops + self.slot_time
        return 0.5 * frame + hops

    def capacity_margin_many(self, grid: np.ndarray) -> np.ndarray:
        """Vectorized bottleneck capacity slack."""
        frame = self.coerce_grid(grid)[:, 0]
        bottleneck = self.scenario.topology.bottleneck_ring
        offered_per_frame = (
            self.scenario.density * self.traffic.peak_output_rate(bottleneck) * frame
        )
        return self.max_utilization - offered_per_frame

    def capacity_margin(self, params: ParameterVector) -> float:
        """Bottleneck capacity slack.

        The transmit slot of ring 1 is shared by the ``C`` ring-1 nodes,
        which all sit in one collision domain around the sink, and the slot
        drains roughly one packet per frame per collision domain.  The
        aggregate offered load ``C * F_out(1) * Tf`` (i.e. the whole
        network's traffic) must therefore stay below
        :attr:`max_utilization` packets per frame.  The peak (bursty) rate
        is what must fit.
        """
        frame = self._frame_length(params)
        bottleneck = self.scenario.topology.bottleneck_ring
        offered_per_frame = (
            self.scenario.density * self.traffic.peak_output_rate(bottleneck) * frame
        )
        return self.max_utilization - offered_per_frame
