"""Execution engine: plan → :class:`~repro.api.results.ResultSet`.

Two layers live here.

The **grid primitive** — :class:`GridCell` / :func:`solve_grid` — is the one
way any part of the library turns "(scenario, protocol, requirements)"
cells into game solutions: it pushes every constructible cell through the
shared :class:`~repro.runtime.batch.BatchRunner` (solve cache, in-batch
dedup, process-pool fan-out with submission-order reassembly) and applies
the library-wide error policy (model-construction failures and infeasible
games are *data*; anything else re-raises).  The legacy entry points —
:class:`~repro.scenarios.suite.ScenarioSuite`, the sweep drivers in
:mod:`repro.analysis.sweep`, and :func:`repro.validation.campaign.run_campaign`
— all route through it, which is what makes a spec-driven run bit-identical
to the entry point it replaces.

The **executors** — one per workload kind — turn an
:class:`~repro.api.plan.ExperimentPlan` into records: :func:`run` resolves
the plan, assembles a runner from the spec's runtime policy (unless one is
passed in), dispatches to the kind's executor and wraps everything into a
:class:`ResultSet` with provenance and runtime metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.sweep import SweepResult, collect_sweep
from repro.analysis.validation import validate_protocols
from repro.api.plan import (
    ExperimentPlan,
    WorkUnit,
    campaign_spec_of,
    plan as expand_plan,
    resolve_scenario,
)
from repro.api.results import ResultRecord, ResultSet
from repro.api.spec import ExperimentSpec
from repro.core.requirements import ApplicationRequirements
from repro.core.results import GameSolution
from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.protocols.base import DutyCycledMACModel
from repro.protocols.registry import create_protocol
from repro.runtime import BatchRunner, SolveTask, build_runner
from repro.scenario import Scenario
from repro.scenarios.presets import scenario_preset
from repro.scenarios.suite import SuiteResult, suite_cells_from_outcomes
from repro.simulation.runner import SimulationConfig
from repro.validation.campaign import CampaignSpec, run_campaign

#: What :func:`run` accepts: a spec (planned implicitly) or an explicit plan.
Runnable = Union[ExperimentSpec, ExperimentPlan]


# ---------------------------------------------------------------------- #
# The grid primitive
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class GridCell:
    """One (scenario, protocol) game of a solve grid.

    Attributes:
        scenario: Scenario label (preset name, ``"custom"``, or ``""`` for
            sweeps over caller-supplied models).
        protocol: Canonical protocol name.
        model: The constructed protocol model, or ``None`` when
            construction failed (see ``build_error``).
        requirements: The cell's application requirements.
        solver_options: Options forwarded to the game solver.
        tag: Caller-defined payload carried into the outcome (sweeps put
            the swept value here).
        build_error: Why the model could not be constructed, when it
            could not (the cell is then data, never dispatched).
    """

    scenario: str
    protocol: str
    model: Optional[DutyCycledMACModel]
    requirements: Optional[ApplicationRequirements]
    solver_options: Mapping[str, object] = field(default_factory=dict)
    tag: Any = None
    build_error: str = ""


@dataclass(frozen=True)
class GridOutcome:
    """Result of one :class:`GridCell`, successful or not.

    Duck-type compatible with :class:`~repro.runtime.batch.TaskOutcome`
    (``ok`` / ``infeasible`` / ``solution`` / ``error`` / ``from_cache`` /
    ``tag``), so sweep folding works on either.
    """

    cell: GridCell
    solution: Optional[GameSolution] = None
    error: Optional[BaseException] = None
    from_cache: bool = False
    solve_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the cell's game produced a solution."""
        return self.solution is not None

    @property
    def infeasible(self) -> bool:
        """Whether the game had no feasible point."""
        return isinstance(self.error, InfeasibleProblemError)

    @property
    def build_failed(self) -> bool:
        """Whether the cell's model could not even be constructed."""
        return bool(self.cell.build_error)

    @property
    def tag(self) -> Any:
        """The cell's caller-defined payload."""
        return self.cell.tag

    @property
    def error_message(self) -> str:
        """Human-readable reason when the cell has no solution."""
        if self.cell.build_error:
            return self.cell.build_error
        return str(self.error) if self.error is not None else ""


def build_grid_cell(
    scenario_label: str,
    protocol: str,
    scenario: Scenario,
    requirements: ApplicationRequirements,
    solver_options: Mapping[str, object],
    tag: Any = None,
) -> GridCell:
    """Construct a cell's protocol model, capturing construction failures.

    The scenario may render the protocol's parameter space empty (e.g. a
    drift bound below the minimum slot): that is a property of the pair,
    not a failure, so it becomes a ``build_error`` cell instead of raising.
    Validation is forced *here*, not inside a pool worker where it would
    poison the batch.
    """
    try:
        model = create_protocol(protocol, scenario)
        model.parameter_space  # noqa: B018 - force lazy validation eagerly
    except (ConfigurationError, ValueError) as error:
        return GridCell(
            scenario=scenario_label,
            protocol=protocol,
            model=None,
            requirements=None,
            tag=tag,
            build_error=f"model construction failed: {error}",
        )
    return GridCell(
        scenario=scenario_label,
        protocol=protocol,
        model=model,
        requirements=requirements,
        solver_options=dict(solver_options),
        tag=tag,
    )


def solve_grid(cells: Sequence[GridCell], runner: BatchRunner) -> List[GridOutcome]:
    """Solve every constructible cell of a grid through one batch.

    Args:
        cells: The grid, in submission order.
        runner: Batch runner the solves are pushed through.

    Returns:
        One :class:`GridOutcome` per cell, in cell order.  Build failures
        and infeasible games are recorded in the outcome; any other solver
        error is re-raised (only infeasibility is data).
    """
    outcomes: List[Optional[GridOutcome]] = [None] * len(cells)
    tasks: List[SolveTask] = []
    positions: List[int] = []
    for position, cell in enumerate(cells):
        if cell.model is None:
            outcomes[position] = GridOutcome(cell=cell)
            continue
        positions.append(position)
        label = f"{cell.scenario}/{cell.protocol}" if cell.scenario else cell.protocol
        tasks.append(
            SolveTask(
                model=cell.model,
                requirements=cell.requirements,
                solver_options=dict(cell.solver_options),
                label=label,
                tag=cell.tag,
            )
        )
    for position, outcome in zip(positions, runner.run(tasks)):
        if not outcome.ok and not outcome.infeasible:
            # Only infeasibility is data; anything else is a real bug.
            raise outcome.error
        outcomes[position] = GridOutcome(
            cell=cells[position],
            solution=outcome.solution,
            error=outcome.error,
            from_cache=outcome.from_cache,
            solve_seconds=outcome.solve_seconds,
        )
    return [outcome for outcome in outcomes if outcome is not None]


# ---------------------------------------------------------------------- #
# Row shapes
# ---------------------------------------------------------------------- #


def _solution_row(
    scenario: str, protocol: str, solution: GameSolution
) -> Dict[str, object]:
    return {
        "scenario": scenario,
        "protocol": protocol,
        "feasible": True,
        "E_best": solution.energy_best,
        "L_worst": solution.delay_worst,
        "E_worst": solution.energy_worst,
        "L_best": solution.delay_best,
        "E_star": solution.energy_star,
        "L_star": solution.delay_star,
        "fairness_residual": solution.bargaining.fairness_residual,
    }


def _infeasible_row(scenario: str, protocol: str, reason: str) -> Dict[str, object]:
    return {
        "scenario": scenario,
        "protocol": protocol,
        "feasible": False,
        "error": reason[:80],
    }


# ---------------------------------------------------------------------- #
# Executors, one per workload kind
# ---------------------------------------------------------------------- #

#: An executor returns ``(records, raw)`` for one plan.
_Executor = Callable[
    [ExperimentSpec, ExperimentPlan, BatchRunner],
    Tuple[List[ResultRecord], Any],
]


def _solver_options_of(spec: ExperimentSpec, grid_points: int) -> Dict[str, object]:
    """The solver options one ``game-solve`` cell dispatches with.

    The grid-stage method comes from the spec's solver section unless the
    runtime policy overrides it (``--solver-method``), mirroring how
    ``sim_engine`` is resolved; the method knobs never reach the cache or
    store keys (see :func:`repro.runtime.cache.solve_key`).
    """
    solver = spec.solver
    method = spec.runtime.solver_method or solver.method
    return {
        "grid_points_per_dimension": int(grid_points),
        "method": method,
        "coarse_points": solver.coarse_points,
        "refine_rounds": solver.refine_rounds,
        "top_k": solver.top_k,
        **solver.options,
    }


def _unit_requirements(
    unit: WorkUnit, scenario: Scenario
) -> ApplicationRequirements:
    """The requirements a ``game-solve`` unit's settings describe."""
    settings = unit.settings
    if "parameter" in settings:
        swept = {settings["parameter"]: settings["value"]}
    else:
        swept = {}
    return ApplicationRequirements(
        energy_budget=float(swept.get("energy_budget", settings.get("energy_budget"))),
        max_delay=float(swept.get("max_delay", settings.get("max_delay"))),
        sampling_rate=scenario.sampling_rate,
    )


def _execute_solve(
    spec: ExperimentSpec, plan: ExperimentPlan, runner: BatchRunner
) -> Tuple[List[ResultRecord], Any]:
    _, scenario = resolve_scenario(spec.scenario)
    cells = []
    for unit in plan.units:
        model = create_protocol(unit.protocol, scenario)  # errors propagate
        cells.append(
            GridCell(
                scenario=unit.scenario,
                protocol=unit.protocol,
                model=model,
                requirements=_unit_requirements(unit, scenario),
                solver_options=_solver_options_of(spec, int(unit.settings["grid_points"])),
                tag=unit,
            )
        )
    records: List[ResultRecord] = []
    solutions: Dict[str, GameSolution] = {}
    for outcome in solve_grid(cells, runner):
        if not outcome.ok:
            # A single requested solve with no feasible point is an error,
            # exactly like the legacy `solve` entry point.
            raise outcome.error
        unit = outcome.tag
        solutions[unit.protocol] = outcome.solution
        records.append(
            ResultRecord(
                unit=unit,
                row=_solution_row(unit.scenario, unit.protocol, outcome.solution),
                value=outcome.solution,
            )
        )
    return records, solutions


def _execute_sweep_family(
    spec: ExperimentSpec, plan: ExperimentPlan, runner: BatchRunner
) -> Tuple[List[ResultRecord], Any]:
    _, scenario = resolve_scenario(spec.scenario)
    models: Dict[str, DutyCycledMACModel] = {}
    cells = []
    for unit in plan.units:
        if unit.protocol not in models:
            models[unit.protocol] = create_protocol(unit.protocol, scenario)
        cells.append(
            GridCell(
                scenario=unit.scenario,
                protocol=unit.protocol,
                model=models[unit.protocol],
                requirements=_unit_requirements(unit, scenario),
                solver_options=_solver_options_of(spec, int(unit.settings["grid_points"])),
                tag=float(unit.settings["value"]),
            )
        )
    outcomes = solve_grid(cells, runner)

    records: List[ResultRecord] = []
    by_protocol: Dict[str, List[int]] = {}
    for position, unit in enumerate(plan.units):
        by_protocol.setdefault(unit.protocol, []).append(position)
        outcome = outcomes[position]
        parameter = str(unit.settings["parameter"])
        value = float(unit.settings["value"])
        if outcome.ok:
            row = _solution_row(unit.scenario, unit.protocol, outcome.solution)
            # The swept requirement sits right after the tags, like the
            # legacy sweep series.
            row = {
                "scenario": row.pop("scenario"),
                "protocol": row.pop("protocol"),
                parameter: value,
                **row,
            }
            records.append(ResultRecord(unit=unit, row=row, value=outcome.solution))
        else:
            row = _infeasible_row(unit.scenario, unit.protocol, outcome.error_message)
            row = {
                "scenario": row.pop("scenario"),
                "protocol": row.pop("protocol"),
                parameter: value,
                **row,
            }
            records.append(
                ResultRecord(
                    unit=unit, row=row, ok=False, error=outcome.error_message
                )
            )

    parameter, _ = _axis_of(plan)
    sweeps: Dict[str, SweepResult] = {}
    for protocol, positions in by_protocol.items():
        values = [float(plan.units[i].settings["value"]) for i in positions]
        sweeps[protocol] = collect_sweep(
            models[protocol], parameter, values, [outcomes[i] for i in positions]
        )
    return records, sweeps


def _axis_of(plan: ExperimentPlan) -> Tuple[str, List[float]]:
    parameter = str(plan.units[0].settings["parameter"]) if plan.units else "max_delay"
    values = [float(unit.settings["value"]) for unit in plan.units]
    return parameter, values


def _execute_suite(
    spec: ExperimentSpec, plan: ExperimentPlan, runner: BatchRunner
) -> Tuple[List[ResultRecord], Any]:
    cells = []
    for unit in plan.units:
        preset = scenario_preset(unit.scenario)
        requirements = preset.requirements()
        if unit.settings.get("energy_budget") is not None:
            requirements = requirements.with_energy_budget(
                float(unit.settings["energy_budget"])
            )
        if unit.settings.get("max_delay") is not None:
            requirements = requirements.with_max_delay(
                float(unit.settings["max_delay"])
            )
        cells.append(
            build_grid_cell(
                scenario_label=unit.scenario,
                protocol=unit.protocol,
                scenario=preset.scenario,
                requirements=requirements,
                solver_options=_solver_options_of(spec, int(unit.settings["grid_points"])),
                tag=unit,
            )
        )
    outcomes = solve_grid(cells, runner)
    suite_result = SuiteResult(
        cells=suite_cells_from_outcomes(outcomes),
        runner_description=runner.describe(),
    )
    records = [
        ResultRecord(
            unit=outcome.tag,
            row=row,
            ok=cell.feasible,
            error="" if cell.feasible else (cell.error or ""),
            value=cell,
        )
        for outcome, cell, row in zip(
            outcomes, suite_result.cells, suite_result.rows()
        )
    ]
    return records, suite_result


def _execute_validate(
    spec: ExperimentSpec, plan: ExperimentPlan, runner: BatchRunner
) -> Tuple[List[ResultRecord], Any]:
    _, scenario = resolve_scenario(spec.scenario)
    jobs = []
    for unit in plan.units:
        model = create_protocol(unit.protocol, scenario)
        parameters = unit.settings.get("parameters")
        if parameters is None:
            space = model.parameter_space
            parameters = space.to_dict(space.midpoint())
        jobs.append((model, dict(parameters)))
    config = SimulationConfig(
        horizon=float(spec.simulation.horizon),
        seed=int(spec.simulation.seed),
        engine=spec.runtime.sim_engine,
    )
    reports = validate_protocols(jobs, config, executor=runner.executor)
    records = []
    for unit, report in zip(plan.units, reports):
        summary = dict(report.as_dict())
        parameters = summary.pop("parameters")
        row = {
            "scenario": unit.scenario,
            **summary,
            "parameters": ", ".join(
                f"{key}={value:.6g}" for key, value in parameters.items()
            ),
        }
        records.append(ResultRecord(unit=unit, row=row, value=report))
    return records, reports


def _execute_campaign(
    spec: ExperimentSpec, plan: ExperimentPlan, runner: BatchRunner
) -> Tuple[List[ResultRecord], Any]:
    if not plan.units:
        # An empty (fully filtered/sharded-away) plan must not fall through
        # to CampaignSpec, whose empty scenario/protocol tuples mean "all".
        return [], None
    scenarios = plan.scenario_names
    protocols = plan.protocol_names
    if len(plan.units) != len(scenarios) * len(protocols):
        raise ConfigurationError(
            "a campaign plan must stay rectangular (every scenario × every "
            f"protocol); got {len(plan.units)} unit(s) over "
            f"{len(scenarios)} scenario(s) × {len(protocols)} protocol(s)"
        )
    full = campaign_spec_of(spec)
    campaign_spec = CampaignSpec(
        scenarios=tuple(scenarios),
        protocols=tuple(protocols),
        replications=full.replications,
        base_seed=full.base_seed,
        horizon=full.horizon,
        confidence=full.confidence,
        grid_points_per_dimension=full.grid_points_per_dimension,
        energy_tolerance=full.energy_tolerance,
        delay_tolerance=full.delay_tolerance,
        min_delivery_ratio=full.min_delivery_ratio,
        sim_engine=full.sim_engine,
        solver_method=full.solver_method,
    )
    result = run_campaign(campaign_spec, runner)
    records = []
    for unit, cell, row in zip(plan.units, result.cells, result.rows()):
        ok = cell.feasible and cell.passed
        if not cell.feasible:
            error = cell.solve_error
        elif not cell.passed:
            failed = [c.metric for c in cell.checks if c.status == "fail"]
            error = f"failed checks: {', '.join(failed)}"
        else:
            error = ""
        records.append(
            ResultRecord(unit=unit, row=row, ok=ok, error=error, value=cell)
        )
    return records, result


_EXECUTORS: Dict[str, _Executor] = {
    "solve": _execute_solve,
    "sweep": _execute_sweep_family,
    "figure1": _execute_sweep_family,
    "figure2": _execute_sweep_family,
    "suite": _execute_suite,
    "validate": _execute_validate,
    "campaign": _execute_campaign,
}


def _aggregate_solver_work(records: Sequence[ResultRecord]) -> Dict[str, int]:
    """Summed volatile solver work counters across a run's game solutions.

    Empty when no record carries counters — the exhaustive method records
    none, and cached/stored replays did no fresh solver work.  The keys are
    prefixed ``solver_`` and land in the run metadata next to the cache
    counters (and, like them, stay out of written artifacts).
    """
    totals: Dict[str, int] = {}
    for record in records:
        value = record.value
        solution = value if isinstance(value, GameSolution) else getattr(
            value, "solution", None
        )
        if not isinstance(solution, GameSolution):
            continue
        work = solution.solver_work
        if not work:
            continue
        for key, count in work.items():
            name = f"solver_{key}"
            totals[name] = totals.get(name, 0) + int(count)
    return totals


def runner_for(spec: ExperimentSpec, store: Optional[Any] = None) -> BatchRunner:
    """Assemble the :class:`BatchRunner` a spec's runtime policy describes.

    Args:
        spec: The spec whose runtime policy (workers, mode, cache) applies.
        store: Optional persistent result store
            (:class:`repro.store.ResultStore`) to back the solve cache —
            ignored when the policy disables caching (``--no-cache``
            bypasses *both* layers).
    """
    runtime = spec.runtime
    return build_runner(
        workers=runtime.workers,
        mode=runtime.mode,
        use_cache=runtime.cache,
        chunk_size=runtime.chunk_size,
        store=store,
    )


def run(source: Runnable, runner: Optional[BatchRunner] = None) -> ResultSet:
    """Execute a spec (or an explicit, possibly filtered plan).

    Args:
        source: An :class:`ExperimentSpec` (planned implicitly) or an
            :class:`ExperimentPlan` from :func:`repro.api.plan.plan` —
            filtered/sharded plans run only their remaining units.
        runner: Batch runner override; defaults to the one the spec's
            runtime policy describes.

    Returns:
        The uniform :class:`ResultSet`: one tagged record per work unit,
        run metadata, and the spec's provenance hash.

    Raises:
        ConfigurationError: on an incomplete or inconsistent spec/plan.
        InfeasibleProblemError: when a ``solve`` spec has no feasible point
            (multi-unit kinds record infeasibility as data instead).
    """
    plan_obj = source if isinstance(source, ExperimentPlan) else expand_plan(source)
    spec = plan_obj.spec
    if runner is None:
        runner = runner_for(spec)
    store = getattr(runner.cache, "store", None)
    store_before = store.stats() if store is not None else None
    records, raw = _EXECUTORS[spec.kind](spec, plan_obj, runner)
    stats = runner.cache_stats()
    metadata: Dict[str, object] = {
        "plan": plan_obj.describe(),
        "runner": runner.describe(),
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        **_aggregate_solver_work(records),
    }
    if store is not None:
        # Deltas over this run only (the store counts every lookup —
        # solve reads through the cache *and* campaign replications), so
        # "zero fresh results" is checkable per invocation: a fully warm
        # run shows store_misses == store_puts == 0.
        store_after = store.stats()
        metadata["store_hits"] = store_after.hits - store_before.hits
        metadata["store_misses"] = store_after.misses - store_before.misses
        metadata["store_puts"] = store_after.puts - store_before.puts
    return ResultSet(spec=spec, records=records, metadata=metadata, raw=raw)
