"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single programmable front door of the
library: it *describes* an experiment — which scenario(s), which
protocol(s), which workload kind, which requirement grid, which runtime
policy — without running anything.  Specs are plain data: loadable from a
dict, a JSON or TOML file, hashable (a canonical SHA-256 digest travels
with every result as provenance), and buildable fluently::

    spec = (
        ExperimentSpec.experiment("sweep")
        .with_protocols("xmac")
        .with_sweep("max_delay", [2.0, 4.0, 6.0])
        .with_runtime(workers=4)
    )

The lifecycle is ``spec → plan → run``: :func:`repro.api.plan.plan` expands
a spec into an inspectable list of work units (count/filter/shard before
spending compute), :func:`repro.api.engine.run` executes the plan through
the shared :mod:`repro.runtime` batch layer and returns a
:class:`~repro.api.results.ResultSet`.

Structural validation (types, known kinds, known keys) happens at spec
construction; *completeness* validation (a sweep spec needs a sweep axis,
campaign protocols must be simulable) happens at plan time, so fluent
construction can pass through intermediate states.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.optimization.hybrid import SOLVER_METHODS
from repro.simulation.runner import SIM_ENGINES

#: Every workload kind a spec may declare, in documentation order.
WORKLOAD_KINDS = (
    "solve",
    "sweep",
    "suite",
    "figure1",
    "figure2",
    "validate",
    "campaign",
)

#: Requirement parameters a sweep axis may vary (canonical spelling).
SWEEP_PARAMETERS = ("max_delay", "energy_budget")

#: Accepted spellings of the sweep parameters (CLI uses kebab-case).
_SWEEP_ALIASES = {
    "max-delay": "max_delay",
    "energy-budget": "energy_budget",
}


def _require_number(owner: str, name: str, value: object, positive: bool = True) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{owner}.{name} must be a number, got {value!r}")
    if positive and value <= 0:
        raise ConfigurationError(f"{owner}.{name} must be positive, got {value!r}")
    return float(value)


def _check_keys(owner: str, payload: Mapping[str, object], known: Sequence[str]) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ConfigurationError(
            f"unknown {owner} key(s): {', '.join(unknown)}; "
            f"known keys: {', '.join(known)}"
        )


@dataclass(frozen=True)
class RuntimePolicy:
    """How a spec's work units are executed.

    Attributes:
        workers: Worker processes (``1`` = serial, ``0`` = one per CPU).
        cache: Whether solves are memoized in the process-wide solve cache.
        mode: Executor mode (``"auto"``, ``"serial"``, ``"thread"``,
            ``"process"``).
        chunk_size: Tasks per dispatched chunk (``None`` auto-sizes).
        sim_engine: Simulation engine (``"scalar"`` or ``"batched"``).  The
            engines are bit-identical, so this lives in the runtime section
            (excluded from ``spec_hash``) and never changes a result.
        solver_method: Grid-stage solver override (``"exhaustive"`` or
            ``"adaptive"``); ``None`` defers to the spec's
            ``solver.method``.  Like ``sim_engine``, the methods return
            identical solutions, so the override is runtime provenance.
    """

    workers: int = 1
    cache: bool = True
    mode: str = "auto"
    chunk_size: Optional[int] = None
    sim_engine: str = "scalar"
    solver_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sim_engine not in SIM_ENGINES:
            raise ConfigurationError(
                f"runtime.sim_engine must be one of {', '.join(SIM_ENGINES)}; "
                f"got {self.sim_engine!r}"
            )
        if self.solver_method is not None and self.solver_method not in SOLVER_METHODS:
            raise ConfigurationError(
                f"runtime.solver_method must be one of {', '.join(SOLVER_METHODS)}; "
                f"got {self.solver_method!r}"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RuntimePolicy":
        _check_keys(
            "runtime",
            payload,
            ("workers", "cache", "mode", "chunk_size", "sim_engine", "solver_method"),
        )
        return cls(
            workers=int(payload.get("workers", 1)),
            cache=bool(payload.get("cache", True)),
            mode=str(payload.get("mode", "auto")),
            chunk_size=(
                None
                if payload.get("chunk_size") is None
                else int(payload["chunk_size"])  # type: ignore[arg-type]
            ),
            sim_engine=str(payload.get("sim_engine", "scalar")),
            solver_method=(
                None
                if payload.get("solver_method") is None
                else str(payload["solver_method"])
            ),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "cache": self.cache,
            "mode": self.mode,
            "chunk_size": self.chunk_size,
            "sim_engine": self.sim_engine,
            "solver_method": self.solver_method,
        }


#: Solver keys that choose *how* the grid stage runs, never *what* it
#: returns (the methods are differentially proven identical).  Stripped
#: from ``spec_hash`` and from the solve cache/store keys, exactly like
#: the runtime policy, so provenance and stored results are
#: method-independent.
SOLVER_METHOD_KEYS = ("method", "coarse_points", "refine_rounds", "top_k")


@dataclass(frozen=True)
class SolverSettings:
    """Options forwarded to the hybrid game solver.

    Attributes:
        grid_points: Grid resolution per parameter dimension.
        method: Grid-stage strategy: ``"exhaustive"`` scans the full grid,
            ``"adaptive"`` refines coarse-to-fine to the identical answer
            (see :mod:`repro.optimization.adaptive`).  Excluded from
            ``spec_hash`` along with the three adaptive knobs below.
        coarse_points: Adaptive method: points per axis of the coarse scan.
        refine_rounds: Adaptive method: maximum bisection rounds before a
            kept cell is evaluated at full resolution.
        top_k: Adaptive method: incumbent points kept per ranking round.
        options: Extra keyword options forwarded verbatim to
            :class:`~repro.core.tradeoff.EnergyDelayGame` (e.g.
            ``random_starts``).
    """

    grid_points: int = 60
    method: str = "exhaustive"
    coarse_points: int = 11
    refine_rounds: int = 3
    top_k: int = 3
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.grid_points, int) or self.grid_points < 2:
            raise ConfigurationError(
                f"solver.grid_points must be an integer >= 2, got {self.grid_points!r}"
            )
        if self.method not in SOLVER_METHODS:
            raise ConfigurationError(
                f"unknown solver.method {self.method!r}; "
                f"choose from {', '.join(SOLVER_METHODS)}"
            )
        for name, minimum in (("coarse_points", 2), ("refine_rounds", 1), ("top_k", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise ConfigurationError(
                    f"solver.{name} must be an integer >= {minimum}, got {value!r}"
                )
        object.__setattr__(self, "options", dict(self.options))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SolverSettings":
        first_class = ("grid_points",) + SOLVER_METHOD_KEYS
        extra = {key: value for key, value in payload.items() if key not in first_class}
        defaults = cls()
        return cls(
            grid_points=int(payload.get("grid_points", defaults.grid_points)),
            method=str(payload.get("method", defaults.method)),
            coarse_points=payload.get("coarse_points", defaults.coarse_points),  # type: ignore[arg-type]
            refine_rounds=payload.get("refine_rounds", defaults.refine_rounds),  # type: ignore[arg-type]
            top_k=payload.get("top_k", defaults.top_k),  # type: ignore[arg-type]
            options=extra,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "grid_points": self.grid_points,
            "method": self.method,
            "coarse_points": self.coarse_points,
            "refine_rounds": self.refine_rounds,
            "top_k": self.top_k,
            **dict(sorted(self.options.items())),
        }

    def game_options(self) -> Dict[str, object]:
        """The solver options in the shape ``EnergyDelayGame`` accepts."""
        return {
            "grid_points_per_dimension": self.grid_points,
            "method": self.method,
            "coarse_points": self.coarse_points,
            "refine_rounds": self.refine_rounds,
            "top_k": self.top_k,
            **self.options,
        }


@dataclass(frozen=True)
class SweepAxis:
    """The swept requirement of a ``sweep``/``figure`` workload.

    Attributes:
        parameter: ``"max_delay"`` or ``"energy_budget"`` (kebab-case
            spellings are normalized).
        values: The swept requirement values, in sweep order.
    """

    parameter: str
    values: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        parameter = _SWEEP_ALIASES.get(self.parameter, self.parameter)
        if parameter not in SWEEP_PARAMETERS:
            raise ConfigurationError(
                f"sweep.parameter must be one of {SWEEP_PARAMETERS}, "
                f"got {self.parameter!r}"
            )
        object.__setattr__(self, "parameter", parameter)
        values = tuple(
            _require_number("sweep", "values[]", value) for value in self.values
        )
        if not values:
            raise ConfigurationError("sweep.values must not be empty")
        object.__setattr__(self, "values", values)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepAxis":
        _check_keys("sweep", payload, ("parameter", "values"))
        if "parameter" not in payload or "values" not in payload:
            raise ConfigurationError("sweep needs both 'parameter' and 'values'")
        return cls(
            parameter=str(payload["parameter"]),
            values=tuple(payload["values"]),  # type: ignore[arg-type]
        )

    def as_dict(self) -> Dict[str, object]:
        return {"parameter": self.parameter, "values": list(self.values)}


@dataclass(frozen=True)
class RequirementOverrides:
    """Application requirements of a spec (kind-specific defaults apply).

    For ``solve``/``sweep``/``figure`` kinds these are the game's
    ``(Ebudget, Lmax)``; for ``suite`` they *override* every preset's
    suggested requirements (``None`` keeps the preset's value).
    """

    energy_budget: Optional[float] = None
    max_delay: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("energy_budget", "max_delay"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(
                    self, name, _require_number("requirements", name, value)
                )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RequirementOverrides":
        _check_keys("requirements", payload, ("energy_budget", "max_delay"))
        return cls(
            energy_budget=payload.get("energy_budget"),  # type: ignore[arg-type]
            max_delay=payload.get("max_delay"),  # type: ignore[arg-type]
        )

    def as_dict(self) -> Dict[str, object]:
        return {"energy_budget": self.energy_budget, "max_delay": self.max_delay}


@dataclass(frozen=True)
class SimulationSettings:
    """Settings of the ``validate`` workload's packet-level simulation.

    Attributes:
        horizon: Simulated duration in seconds.
        seed: Simulation seed.
        parameters: Explicit parameter vector to validate at; ``None`` uses
            the midpoint of the protocol's parameter space.
    """

    horizon: float = 2000.0
    seed: int = 1
    parameters: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "horizon", _require_number("simulation", "horizon", self.horizon)
        )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(
                f"simulation.seed must be an integer, got {self.seed!r}"
            )
        if self.parameters is not None:
            object.__setattr__(
                self,
                "parameters",
                {
                    str(key): _require_number("simulation.parameters", str(key), value)
                    for key, value in dict(self.parameters).items()
                },
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SimulationSettings":
        _check_keys("simulation", payload, ("horizon", "seed", "parameters"))
        return cls(
            horizon=float(payload.get("horizon", 2000.0)),
            seed=int(payload.get("seed", 1)),
            parameters=payload.get("parameters"),  # type: ignore[arg-type]
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "horizon": self.horizon,
            "seed": self.seed,
            "parameters": None if self.parameters is None else dict(self.parameters),
        }


@dataclass(frozen=True)
class CampaignSettings:
    """Settings of the ``campaign`` workload (Monte-Carlo validation).

    Mirrors :class:`repro.validation.campaign.CampaignSpec`; the full
    cross-validation (simulability, duplicates) happens when the campaign
    spec is assembled at plan time.
    """

    replications: int = 5
    base_seed: int = 1
    horizon: float = 1500.0
    confidence: float = 0.95
    energy_tolerance: float = 0.35
    delay_tolerance: float = 0.6
    min_delivery_ratio: float = 0.9

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignSettings":
        _check_keys(
            "campaign",
            payload,
            (
                "replications",
                "base_seed",
                "horizon",
                "confidence",
                "energy_tolerance",
                "delay_tolerance",
                "min_delivery_ratio",
            ),
        )
        defaults = cls()
        return cls(
            replications=int(payload.get("replications", defaults.replications)),
            base_seed=int(payload.get("base_seed", defaults.base_seed)),
            horizon=float(payload.get("horizon", defaults.horizon)),
            confidence=float(payload.get("confidence", defaults.confidence)),
            energy_tolerance=float(
                payload.get("energy_tolerance", defaults.energy_tolerance)
            ),
            delay_tolerance=float(
                payload.get("delay_tolerance", defaults.delay_tolerance)
            ),
            min_delivery_ratio=float(
                payload.get("min_delivery_ratio", defaults.min_delivery_ratio)
            ),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "replications": self.replications,
            "base_seed": self.base_seed,
            "horizon": self.horizon,
            "confidence": self.confidence,
            "energy_tolerance": self.energy_tolerance,
            "delay_tolerance": self.delay_tolerance,
            "min_delivery_ratio": self.min_delivery_ratio,
        }


#: Keys an inline scenario mapping may carry (mirrors the CLI's scenario
#: arguments; ``sampling_period`` is seconds per sample).
_SCENARIO_KEYS = ("depth", "density", "sampling_period", "radio", "burstiness")

#: A scenario reference: a preset name or an inline scenario mapping.
ScenarioRef = Union[str, Mapping[str, object]]


def _normalize_scenario(ref: Optional[ScenarioRef]) -> Optional[ScenarioRef]:
    if ref is None:
        return None
    if isinstance(ref, str):
        name = ref.strip().lower()
        if not name:
            raise ConfigurationError("scenario name must be non-empty")
        return name
    if isinstance(ref, Mapping):
        _check_keys("scenario", ref, _SCENARIO_KEYS)
        return dict(ref)
    raise ConfigurationError(
        f"scenario must be a preset name or a mapping, got {type(ref).__name__}"
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: *what* to run, not *how*.

    Attributes:
        kind: Workload kind, one of :data:`WORKLOAD_KINDS`.
        name: Free-form experiment label (carried into results).
        scenario: Scenario of the single-environment kinds (``solve``,
            ``sweep``, ``figure1``, ``figure2``, ``validate``): a preset
            name or an inline mapping with ``depth``/``density``/
            ``sampling_period``/``radio``/``burstiness``.  ``None`` uses the
            kind's default (the paper's environment).
        scenarios: Scenario preset names of the multi-environment kinds
            (``suite``, ``campaign``); empty means the kind's default set.
        protocols: Protocol names (resolved through the protocol registry
            at plan time, so user-registered protocols work); empty means
            the kind's default set.
        requirements: Application requirements / overrides.
        sweep: Swept requirement axis (``sweep`` kind; for the figure kinds
            it may override the paper's swept values).
        simulation: ``validate`` settings.
        campaign: ``campaign`` settings.
        solver: Game solver settings.
        runtime: Execution policy (workers, cache).
    """

    kind: str
    name: str = ""
    scenario: Optional[ScenarioRef] = None
    scenarios: Tuple[str, ...] = ()
    protocols: Tuple[str, ...] = ()
    requirements: Optional[RequirementOverrides] = None
    sweep: Optional[SweepAxis] = None
    simulation: SimulationSettings = field(default_factory=SimulationSettings)
    campaign: CampaignSettings = field(default_factory=CampaignSettings)
    solver: SolverSettings = field(default_factory=SolverSettings)
    runtime: RuntimePolicy = field(default_factory=RuntimePolicy)

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; "
                f"known kinds: {', '.join(WORKLOAD_KINDS)}"
            )
        object.__setattr__(self, "scenario", _normalize_scenario(self.scenario))
        object.__setattr__(
            self, "scenarios", tuple(str(name).strip().lower() for name in self.scenarios)
        )
        object.__setattr__(
            self, "protocols", tuple(str(name).strip() for name in self.protocols)
        )

    # ------------------------------------------------------------------ #
    # Fluent construction
    # ------------------------------------------------------------------ #

    @classmethod
    def experiment(cls, kind: str, name: str = "") -> "ExperimentSpec":
        """Start a fluent spec of the given workload kind."""
        return cls(kind=kind, name=name)

    def with_scenario(self, scenario: ScenarioRef) -> "ExperimentSpec":
        """Set the single-environment scenario (preset name or mapping)."""
        return replace(self, scenario=scenario)

    def with_scenarios(self, *names: str) -> "ExperimentSpec":
        """Set the scenario preset names of a suite/campaign."""
        return replace(self, scenarios=tuple(names))

    def with_protocols(self, *names: str) -> "ExperimentSpec":
        """Set the protocol names."""
        return replace(self, protocols=tuple(names))

    def with_requirements(
        self,
        energy_budget: Optional[float] = None,
        max_delay: Optional[float] = None,
    ) -> "ExperimentSpec":
        """Update the application requirements (or suite overrides).

        Like the other ``with_*`` builders this *merges*: an argument left
        as ``None`` keeps the previously set value, so
        ``.with_requirements(energy_budget=...).with_requirements(max_delay=...)``
        carries both.
        """
        current = self.requirements or RequirementOverrides()
        return replace(
            self,
            requirements=RequirementOverrides(
                energy_budget=(
                    current.energy_budget if energy_budget is None else energy_budget
                ),
                max_delay=current.max_delay if max_delay is None else max_delay,
            ),
        )

    def with_sweep(self, parameter: str, values: Iterable[float]) -> "ExperimentSpec":
        """Set the swept requirement axis."""
        return replace(self, sweep=SweepAxis(parameter=parameter, values=tuple(values)))

    def with_simulation(self, **settings: object) -> "ExperimentSpec":
        """Update the ``validate`` simulation settings."""
        return replace(self, simulation=replace(self.simulation, **settings))

    def with_campaign(self, **settings: object) -> "ExperimentSpec":
        """Update the ``campaign`` settings."""
        return replace(self, campaign=replace(self.campaign, **settings))

    def with_solver(
        self,
        grid_points: Optional[int] = None,
        method: Optional[str] = None,
        coarse_points: Optional[int] = None,
        refine_rounds: Optional[int] = None,
        top_k: Optional[int] = None,
        **options: object,
    ) -> "ExperimentSpec":
        """Update the game solver settings."""
        merged = dict(self.solver.options)
        merged.update(options)
        current = self.solver
        return replace(
            self,
            solver=SolverSettings(
                grid_points=current.grid_points if grid_points is None else grid_points,
                method=current.method if method is None else method,
                coarse_points=(
                    current.coarse_points if coarse_points is None else coarse_points
                ),
                refine_rounds=(
                    current.refine_rounds if refine_rounds is None else refine_rounds
                ),
                top_k=current.top_k if top_k is None else top_k,
                options=merged,
            ),
        )

    def with_runtime(self, **settings: object) -> "ExperimentSpec":
        """Update the runtime policy (``workers``, ``cache``, ...)."""
        return replace(self, runtime=replace(self.runtime, **settings))

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        """Build a spec from a plain mapping (the JSON/TOML document shape).

        Raises:
            ConfigurationError: on unknown keys, unknown kinds, or malformed
                sections — with a message naming the offending key.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"spec must be a mapping, got {type(payload).__name__}"
            )
        known = tuple(spec_field.name for spec_field in fields(cls))
        _check_keys("spec", payload, known)
        if "kind" not in payload:
            raise ConfigurationError(
                f"spec needs a 'kind'; known kinds: {', '.join(WORKLOAD_KINDS)}"
            )
        kwargs: Dict[str, object] = {
            "kind": str(payload["kind"]),
            "name": str(payload.get("name", "")),
        }
        if payload.get("scenario") is not None:
            kwargs["scenario"] = payload["scenario"]
        if payload.get("scenarios"):
            kwargs["scenarios"] = tuple(payload["scenarios"])  # type: ignore[arg-type]
        if payload.get("protocols"):
            kwargs["protocols"] = tuple(payload["protocols"])  # type: ignore[arg-type]
        if payload.get("requirements") is not None:
            kwargs["requirements"] = RequirementOverrides.from_dict(
                payload["requirements"]  # type: ignore[arg-type]
            )
        if payload.get("sweep") is not None:
            kwargs["sweep"] = SweepAxis.from_dict(payload["sweep"])  # type: ignore[arg-type]
        if payload.get("simulation") is not None:
            kwargs["simulation"] = SimulationSettings.from_dict(
                payload["simulation"]  # type: ignore[arg-type]
            )
        if payload.get("campaign") is not None:
            kwargs["campaign"] = CampaignSettings.from_dict(
                payload["campaign"]  # type: ignore[arg-type]
            )
        if payload.get("solver") is not None:
            kwargs["solver"] = SolverSettings.from_dict(
                payload["solver"]  # type: ignore[arg-type]
            )
        if payload.get("runtime") is not None:
            kwargs["runtime"] = RuntimePolicy.from_dict(
                payload["runtime"]  # type: ignore[arg-type]
            )
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON document into a spec."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid JSON spec: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        """Parse a TOML document into a spec (needs Python 3.11+)."""
        try:
            import tomllib
        except ModuleNotFoundError as error:  # pragma: no cover - py<3.11 only
            raise ConfigurationError(
                "TOML specs need Python 3.11+ (tomllib); use JSON instead"
            ) from error
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ConfigurationError(f"invalid TOML spec: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file.

        Raises:
            ConfigurationError: when the file is missing, has an unsupported
                suffix, or does not parse into a valid spec.
        """
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"spec file not found: {path}")
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".json":
            return cls.from_json(text)
        if path.suffix.lower() == ".toml":
            return cls.from_toml(text)
        raise ConfigurationError(
            f"unsupported spec file type {path.suffix!r} (use .json or .toml)"
        )

    def to_dict(self) -> Dict[str, object]:
        """Canonical, JSON-ready representation (the hash input)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "scenario": (
                dict(self.scenario)
                if isinstance(self.scenario, Mapping)
                else self.scenario
            ),
            "scenarios": list(self.scenarios),
            "protocols": list(self.protocols),
            "requirements": (
                None if self.requirements is None else self.requirements.as_dict()
            ),
            "sweep": None if self.sweep is None else self.sweep.as_dict(),
            "simulation": self.simulation.as_dict(),
            "campaign": self.campaign.as_dict(),
            "solver": self.solver.as_dict(),
            "runtime": self.runtime.as_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON form — the result's provenance tag.

        The runtime policy is *excluded*: a spec run with ``--workers 4``
        carries the same provenance as the serial run it is bit-identical
        to.  The solver method knobs (:data:`SOLVER_METHOD_KEYS`) are
        excluded the same way: the exhaustive and adaptive grid stages
        return identical solutions, so a spec solved adaptively shares
        provenance with its exhaustive twin.
        """
        payload = self.to_dict()
        payload.pop("runtime")
        solver = dict(payload["solver"])  # type: ignore[arg-type]
        for key in SOLVER_METHOD_KEYS:
            solver.pop(key, None)
        payload["solver"] = solver
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
