"""Uniform result container of the declarative experiment pipeline.

Every workload kind — a single game solve, a requirement sweep, the
scenario suite, a figure reproduction, a model-vs-simulator check, a
Monte-Carlo campaign — returns the same :class:`ResultSet`: tagged flat
rows (one per work unit), run metadata, and the SHA-256 provenance hash of
the spec that produced it.  The kind-specific rich objects (``GameSolution``,
``SweepResult``, ``SuiteResult``, ``CampaignResult``, ...) stay reachable
through ``records[i].value`` and ``raw`` for callers that need more than
rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from repro.api.plan import WorkUnit
from repro.api.spec import ExperimentSpec

#: Version of the ``ResultSet.as_dict()`` payload.
RESULTSET_SCHEMA = "repro.api.resultset"
RESULTSET_SCHEMA_VERSION = 1

#: Metadata keys describing *how this process ran* (executor shape, cache
#: temperature, store traffic) rather than what was computed.  They stay in
#: the in-memory :attr:`ResultSet.metadata` for stdout reporting but are
#: excluded from the written artifact, so a warm, resumed, or
#: sharded-then-merged run of a spec writes bytes identical to a cold
#: serial run.
VOLATILE_METADATA = (
    "runner",
    "cache_hits",
    "cache_misses",
    "store_hits",
    "store_misses",
    "store_puts",
    "solver_coarse_evaluations",
    "solver_refined_evaluations",
    "solver_polish_evaluations",
    "solver_cells_pruned",
)


@dataclass(frozen=True)
class ResultRecord:
    """Outcome of one work unit.

    Attributes:
        unit: The work unit this record answers.
        row: Flat, printable/CSV-ready row (tagged with scenario/protocol).
        ok: Whether the unit produced a result (infeasible cells and failed
            checks are *recorded*, not raised, for the multi-unit kinds).
        error: Human-readable reason when ``ok`` is false (or when a
            campaign cell failed a check).
        value: The kind-specific rich result (``GameSolution``,
            ``ValidationReport``, ``CampaignCell``, ...), or ``None``.
    """

    unit: WorkUnit
    row: Mapping[str, object]
    ok: bool = True
    error: str = ""
    value: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "row", dict(self.row))


@dataclass(frozen=True)
class ResultSet:
    """All records of one experiment run, plus metadata and provenance.

    Attributes:
        spec: The spec that was run.
        records: One :class:`ResultRecord` per executed work unit, in plan
            order.
        metadata: Run metadata (runner description, cache counters, unit
            counts) — deliberately *excluded* from the provenance hash, so
            parallel and serial runs of the same spec share provenance.
        raw: The kind-specific aggregate result (e.g. the ``SuiteResult``
            or ``CampaignResult``), for callers porting from the legacy
            entry points.
    """

    spec: ExperimentSpec
    records: List[ResultRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    raw: Any = None

    @property
    def kind(self) -> str:
        """The workload kind that produced this result."""
        return self.spec.kind

    @property
    def provenance(self) -> str:
        """SHA-256 of the canonical spec (runtime policy excluded)."""
        return self.spec.spec_hash()

    @property
    def ok_records(self) -> List[ResultRecord]:
        """Records whose unit produced a result."""
        return [record for record in self.records if record.ok]

    @property
    def failed_records(self) -> List[ResultRecord]:
        """Records whose unit was infeasible or failed a check."""
        return [record for record in self.records if not record.ok]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def rows(self) -> List[Dict[str, object]]:
        """One tagged flat row per record, in plan order.

        Rows of mixed shapes are fine: the reporting layer blank-fills the
        union of keys (see :func:`repro.analysis.reporting.format_table`).
        """
        return [dict(record.row) for record in self.records]

    def summary(self) -> Dict[str, object]:
        """Compact run summary (counts, kind, provenance, runner).

        Includes the volatile counters present in the metadata — cache and
        store traffic, plus the adaptive solver's work counters
        (``solver_*_evaluations``, ``solver_cells_pruned``) when any solve
        recorded them.
        """
        return {
            "kind": self.kind,
            "name": self.spec.name,
            "units": len(self.records),
            "ok": len(self.ok_records),
            "failed": len(self.failed_records),
            "spec_sha256": self.provenance,
            **{
                key: self.metadata[key]
                for key in (
                    "runner",
                    "cache_hits",
                    "cache_misses",
                    "store_hits",
                    "store_misses",
                    "store_puts",
                    "solver_coarse_evaluations",
                    "solver_refined_evaluations",
                    "solver_polish_evaluations",
                    "solver_cells_pruned",
                )
                if key in self.metadata
            },
        }

    def as_dict(self) -> Dict[str, object]:
        """Versioned, JSON-ready payload of the whole result.

        Execution-shape counters (:data:`VOLATILE_METADATA`) are omitted:
        the artifact records what was computed, and must come out
        byte-identical whether the run was cold, warm from a store, or
        sharded and merged.
        """
        return {
            "schema": RESULTSET_SCHEMA,
            "schema_version": RESULTSET_SCHEMA_VERSION,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "spec_sha256": self.provenance,
            "summary": {
                key: value
                for key, value in self.summary().items()
                if key not in VOLATILE_METADATA
            },
            "metadata": {
                key: value
                for key, value in self.metadata.items()
                if key not in VOLATILE_METADATA
            },
            "rows": self.rows(),
        }

    def json_text(self) -> str:
        """The versioned payload as canonical JSON text.

        This is the one serialization of a result: ``to_json`` writes it and
        the experiment service serves it verbatim, so a spec POSTed to the
        server returns bytes identical to ``repro run spec.json --out``.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the versioned payload to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.json_text(), encoding="utf-8")
        return path

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the rows to a CSV file and return the path."""
        from repro.analysis.reporting import write_csv

        return write_csv(self.rows(), path)
