"""Plan expansion: spec → explicit, inspectable work units.

:func:`plan` turns an :class:`~repro.api.spec.ExperimentSpec` into an
:class:`ExperimentPlan` — a flat, ordered list of :class:`WorkUnit`\\ s — so
callers can *count, filter and shard* the work before spending any compute::

    >>> from repro.api import ExperimentSpec, plan
    >>> spec = ExperimentSpec.experiment("suite").with_scenarios(
    ...     "paper-default", "high-rate").with_protocols("xmac", "lmac")
    >>> plan(spec).count
    4

Plan expansion resolves every name (scenario presets, protocol registry
entries, sweep parameters) and validates the spec's *completeness* for its
workload kind, so a plan that builds is a plan that can run; the expensive
part (model construction, game solves, simulations) is deferred to
:func:`repro.api.engine.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.api.spec import (
    SWEEP_PARAMETERS,
    ExperimentSpec,
    ScenarioRef,
)
from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    FIGURE_DELAY_BOUNDS,
    FIGURE_ENERGY_BUDGET_FIXED,
    FIGURE_ENERGY_BUDGETS,
    FIGURE_MAX_DELAY_FIXED,
)
from repro.network.radio import radio_by_name
from repro.network.topology import RingTopology
from repro.protocols.registry import (
    PAPER_PROTOCOL_NAMES,
    available_protocols,
    canonical_name,
    protocol_class,
)
from repro.scenario import Scenario
from repro.scenarios.presets import scenario_preset
from repro.simulation.mac.factory import available_mac_protocols, has_behaviour_for
from repro.validation.campaign import CampaignSpec

#: Default application requirements of the ``solve``/``sweep`` kinds (the
#: CLI's historical defaults).
DEFAULT_ENERGY_BUDGET = 0.06
DEFAULT_MAX_DELAY = 6.0

#: Label used for inline (non-preset) scenarios in units and result rows.
CUSTOM_SCENARIO_LABEL = "custom"

#: Default scenario preset of the single-environment kinds.
DEFAULT_SCENARIO = "paper-default"


@dataclass(frozen=True)
class WorkUnit:
    """One independent, inspectable piece of an experiment plan.

    Attributes:
        kind: Unit kind — ``"game-solve"`` (one bargaining-game solve),
            ``"simulation"`` (one model-vs-simulator comparison) or
            ``"campaign-cell"`` (one replicated Monte-Carlo cell).
        scenario: Scenario label (preset name, or ``"custom"`` for inline
            scenarios).
        protocol: Canonical protocol name.
        index: Position in the fully expanded plan (stable under
            ``filter``/``shard``, so a sharded unit still knows where it
            sits in the whole experiment).
        settings: Flat, JSON-ready unit parameters (requirement values,
            swept value, grid resolution, seeds, ...).
    """

    kind: str
    scenario: str
    protocol: str
    index: int
    settings: Mapping[str, object]

    def __post_init__(self) -> None:
        object.__setattr__(self, "settings", dict(self.settings))

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "kind": self.kind,
            "scenario": self.scenario,
            "protocol": self.protocol,
            "index": self.index,
            "settings": dict(self.settings),
        }

    def row(self) -> Dict[str, object]:
        """Flat row for plan listings (settings inlined)."""
        return {
            "index": self.index,
            "kind": self.kind,
            "scenario": self.scenario,
            "protocol": self.protocol,
            **{key: value for key, value in self.settings.items() if value is not None},
        }


@dataclass(frozen=True)
class ExperimentPlan:
    """The explicit work list a spec expands into.

    A plan is cheap: it holds names and numbers, never models or solutions.
    ``filter``/``select``/``shard`` return new plans over a subset of the
    units; :func:`repro.api.engine.run` accepts any of them.
    """

    spec: ExperimentSpec
    units: Tuple[WorkUnit, ...]

    @property
    def count(self) -> int:
        """Number of work units."""
        return len(self.units)

    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self):
        return iter(self.units)

    @property
    def scenario_names(self) -> List[str]:
        """Distinct scenario labels, in plan order."""
        return list(dict.fromkeys(unit.scenario for unit in self.units))

    @property
    def protocol_names(self) -> List[str]:
        """Distinct protocol names, in plan order."""
        return list(dict.fromkeys(unit.protocol for unit in self.units))

    def filter(self, predicate: Callable[[WorkUnit], bool]) -> "ExperimentPlan":
        """A new plan keeping only the units the predicate accepts."""
        return replace(
            self, units=tuple(unit for unit in self.units if predicate(unit))
        )

    def select(
        self, scenario: Optional[str] = None, protocol: Optional[str] = None
    ) -> "ExperimentPlan":
        """A new plan restricted to one scenario and/or protocol."""
        return self.filter(
            lambda unit: (scenario is None or unit.scenario == scenario)
            and (protocol is None or unit.protocol == protocol)
        )

    def shard(self, index: int, count: int) -> "ExperimentPlan":
        """Shard ``index`` of ``count`` round-robin shards of the plan.

        Raises:
            ConfigurationError: if ``count < 1`` or ``index`` is out of
                range.
        """
        if count < 1:
            raise ConfigurationError(f"shard count must be >= 1, got {count}")
        if not (0 <= index < count):
            raise ConfigurationError(
                f"shard index must lie in [0, {count}), got {index}"
            )
        return replace(self, units=self.units[index::count])

    def rows(self) -> List[Dict[str, object]]:
        """One flat row per unit, for plan listings and ``--plan-only``."""
        return [unit.row() for unit in self.units]

    def describe(self) -> str:
        """One-line summary, e.g. ``"suite: 16 unit(s), 8 scenario(s) × 2 protocol(s)"``."""
        return (
            f"{self.spec.kind}: {self.count} unit(s), "
            f"{len(self.scenario_names)} scenario(s) × "
            f"{len(self.protocol_names)} protocol(s)"
        )


# ---------------------------------------------------------------------- #
# Name resolution
# ---------------------------------------------------------------------- #


def resolve_scenario(
    ref: Optional[ScenarioRef], default: str = DEFAULT_SCENARIO
) -> Tuple[str, Scenario]:
    """Resolve a spec's scenario reference into ``(label, Scenario)``.

    A string is looked up in the preset registry; a mapping is built
    inline exactly like the CLI's scenario arguments (``depth``,
    ``density``, ``sampling_period``, ``radio``, ``burstiness``).

    Raises:
        ConfigurationError: on unknown preset or radio names.
    """
    if ref is None:
        ref = default
    if isinstance(ref, str):
        preset = scenario_preset(ref)
        return preset.name, preset.scenario
    scenario = Scenario(
        topology=RingTopology(
            depth=int(ref.get("depth", 5)), density=int(ref.get("density", 8))
        ),
        sampling_rate=1.0 / float(ref.get("sampling_period", 3600.0)),
        radio=radio_by_name(str(ref.get("radio", "cc2420"))),
    )
    burstiness = float(ref.get("burstiness", 1.0))
    if burstiness != 1.0:
        scenario = scenario.with_burstiness(burstiness)
    return CUSTOM_SCENARIO_LABEL, scenario


def _resolved_protocols(
    spec: ExperimentSpec, default: Tuple[str, ...] = ()
) -> List[str]:
    names = list(spec.protocols) or list(default)
    if not names:
        raise ConfigurationError(
            f"a {spec.kind!r} spec needs at least one protocol"
        )
    resolved = [canonical_name(name) for name in names]
    if len(set(resolved)) != len(resolved):
        raise ConfigurationError(f"duplicate protocols in spec: {resolved}")
    return resolved


def _requirement(spec: ExperimentSpec, name: str, default: float) -> float:
    if spec.requirements is None:
        return default
    value = getattr(spec.requirements, name)
    return default if value is None else value


def campaign_spec_of(spec: ExperimentSpec) -> CampaignSpec:
    """Assemble the :class:`CampaignSpec` a ``campaign`` spec describes.

    Carries over every campaign setting plus the solver grid; the
    CampaignSpec constructor performs the deep validation (known scenarios,
    simulable protocols, parameter ranges).
    """
    settings = spec.campaign
    return CampaignSpec(
        scenarios=tuple(spec.scenarios),
        protocols=tuple(spec.protocols),
        replications=settings.replications,
        base_seed=settings.base_seed,
        horizon=settings.horizon,
        confidence=settings.confidence,
        grid_points_per_dimension=spec.solver.grid_points,
        energy_tolerance=settings.energy_tolerance,
        delay_tolerance=settings.delay_tolerance,
        min_delivery_ratio=settings.min_delivery_ratio,
        sim_engine=spec.runtime.sim_engine,
        solver_method=spec.runtime.solver_method or spec.solver.method,
    )


# ---------------------------------------------------------------------- #
# Expansion, per workload kind
# ---------------------------------------------------------------------- #


def _plan_solve(spec: ExperimentSpec) -> List[WorkUnit]:
    label, _ = resolve_scenario(spec.scenario)
    protocols = _resolved_protocols(spec)
    settings = {
        "energy_budget": _requirement(spec, "energy_budget", DEFAULT_ENERGY_BUDGET),
        "max_delay": _requirement(spec, "max_delay", DEFAULT_MAX_DELAY),
        "grid_points": spec.solver.grid_points,
    }
    return [
        WorkUnit(
            kind="game-solve",
            scenario=label,
            protocol=protocol,
            index=index,
            settings=dict(settings),
        )
        for index, protocol in enumerate(protocols)
    ]


def _sweep_axis(spec: ExperimentSpec) -> Tuple[str, Tuple[float, ...]]:
    """The (parameter, values) axis of a sweep/figure spec."""
    if spec.kind == "sweep":
        if spec.sweep is None:
            raise ConfigurationError(
                "a 'sweep' spec needs a sweep axis "
                "(e.g. sweep={'parameter': 'max_delay', 'values': [...]})"
            )
        return spec.sweep.parameter, spec.sweep.values
    fixed_axis = "max_delay" if spec.kind == "figure1" else "energy_budget"
    default_values = (
        FIGURE_DELAY_BOUNDS if spec.kind == "figure1" else FIGURE_ENERGY_BUDGETS
    )
    if spec.sweep is None:
        return fixed_axis, tuple(default_values)
    if spec.sweep.parameter != fixed_axis:
        raise ConfigurationError(
            f"a {spec.kind!r} spec sweeps {fixed_axis!r}; "
            f"got sweep.parameter = {spec.sweep.parameter!r}"
        )
    return fixed_axis, spec.sweep.values


def _plan_sweep_family(spec: ExperimentSpec) -> List[WorkUnit]:
    label, _ = resolve_scenario(spec.scenario)
    if spec.kind == "sweep":
        protocols = _resolved_protocols(spec)
    else:
        protocols = _resolved_protocols(spec, default=tuple(PAPER_PROTOCOL_NAMES))
    parameter, values = _sweep_axis(spec)
    assert parameter in SWEEP_PARAMETERS  # normalized by SweepAxis / fixed above
    if parameter == "max_delay":
        fixed = {
            "energy_budget": _requirement(
                spec,
                "energy_budget",
                FIGURE_ENERGY_BUDGET_FIXED if spec.kind != "sweep" else DEFAULT_ENERGY_BUDGET,
            )
        }
    else:
        fixed = {
            "max_delay": _requirement(
                spec,
                "max_delay",
                FIGURE_MAX_DELAY_FIXED if spec.kind != "sweep" else DEFAULT_MAX_DELAY,
            )
        }
    units: List[WorkUnit] = []
    for protocol in protocols:
        for value in values:
            units.append(
                WorkUnit(
                    kind="game-solve",
                    scenario=label,
                    protocol=protocol,
                    index=len(units),
                    settings={
                        "parameter": parameter,
                        "value": float(value),
                        **fixed,
                        "grid_points": spec.solver.grid_points,
                    },
                )
            )
    return units


def _plan_suite(spec: ExperimentSpec) -> List[WorkUnit]:
    from repro.scenarios.presets import available_scenarios

    scenario_names = list(spec.scenarios) or available_scenarios()
    for name in scenario_names:
        scenario_preset(name)  # raises ConfigurationError on unknown names
    if len(set(scenario_names)) != len(scenario_names):
        raise ConfigurationError(f"duplicate scenarios in spec: {scenario_names}")
    protocols = _resolved_protocols(spec, default=tuple(available_protocols()))
    overrides = {
        "energy_budget": _requirement(spec, "energy_budget", None)
        if spec.requirements
        else None,
        "max_delay": _requirement(spec, "max_delay", None) if spec.requirements else None,
    }
    units: List[WorkUnit] = []
    for scenario_name in scenario_names:
        for protocol in protocols:
            units.append(
                WorkUnit(
                    kind="game-solve",
                    scenario=scenario_name,
                    protocol=protocol,
                    index=len(units),
                    settings={
                        "grid_points": spec.solver.grid_points,
                        **{k: v for k, v in overrides.items() if v is not None},
                    },
                )
            )
    return units


def _plan_validate(spec: ExperimentSpec) -> List[WorkUnit]:
    label, _ = resolve_scenario(spec.scenario)
    protocols = _resolved_protocols(spec)
    for protocol in protocols:
        if not has_behaviour_for(protocol_class(protocol)):
            raise ConfigurationError(
                f"protocol {protocol!r} has no simulated behaviour and cannot "
                f"be validated by simulation; protocols with a simulator: "
                f"{', '.join(available_mac_protocols())}"
            )
    simulation = spec.simulation
    return [
        WorkUnit(
            kind="simulation",
            scenario=label,
            protocol=protocol,
            index=index,
            settings={
                "horizon": simulation.horizon,
                "seed": simulation.seed,
                "parameters": (
                    None
                    if simulation.parameters is None
                    else dict(simulation.parameters)
                ),
            },
        )
        for index, protocol in enumerate(protocols)
    ]


def _plan_campaign(spec: ExperimentSpec) -> List[WorkUnit]:
    campaign = campaign_spec_of(spec)  # validates names/simulability/ranges
    units: List[WorkUnit] = []
    for scenario_name in campaign.scenarios:
        for protocol in campaign.protocols:
            units.append(
                WorkUnit(
                    kind="campaign-cell",
                    scenario=scenario_name,
                    protocol=protocol,
                    index=len(units),
                    settings={
                        "replications": campaign.replications,
                        "base_seed": campaign.base_seed,
                        "horizon": campaign.horizon,
                        "grid_points": campaign.grid_points_per_dimension,
                    },
                )
            )
    return units


_EXPANDERS: Dict[str, Callable[[ExperimentSpec], List[WorkUnit]]] = {
    "solve": _plan_solve,
    "sweep": _plan_sweep_family,
    "figure1": _plan_sweep_family,
    "figure2": _plan_sweep_family,
    "suite": _plan_suite,
    "validate": _plan_validate,
    "campaign": _plan_campaign,
}


def plan(spec: ExperimentSpec) -> ExperimentPlan:
    """Expand a spec into its explicit work-unit list.

    Args:
        spec: The declarative experiment description.

    Returns:
        The :class:`ExperimentPlan`, with one unit per independent piece of
        work (game solve, simulation, or campaign cell).

    Raises:
        ConfigurationError: when the spec is incomplete for its kind or
            references unknown scenarios/protocols/radios.
    """
    return ExperimentPlan(spec=spec, units=tuple(_EXPANDERS[spec.kind](spec)))
