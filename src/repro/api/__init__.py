"""repro.api — the declarative experiment pipeline.

One programmable front door for every workflow the library offers::

    spec → plan → run → ResultSet

* :class:`ExperimentSpec` *describes* an experiment (scenarios, protocols,
  workload kind, requirement grid, runtime policy) — loadable from a dict,
  JSON or TOML, buildable fluently, hashable for provenance.
* :func:`plan` expands a spec into an explicit, inspectable
  :class:`ExperimentPlan` of :class:`WorkUnit`\\ s — count, filter and
  shard the work *before* spending compute.
* :func:`run` executes a spec or plan through the shared
  :mod:`repro.runtime` batch layer (solve cache, process-pool fan-out,
  bit-identical to serial) and returns a uniform :class:`ResultSet` with
  tagged rows, metadata and the spec's SHA-256 provenance.

Example:
    >>> from repro.api import ExperimentSpec, plan, run
    >>> spec = (
    ...     ExperimentSpec.experiment("sweep")
    ...     .with_protocols("xmac")
    ...     .with_sweep("max_delay", [2.0, 4.0])
    ...     .with_solver(grid_points=30)
    ... )
    >>> plan(spec).count
    2
    >>> result = run(spec)
    >>> len(result.rows())
    2
"""

from repro.api.engine import (
    GridCell,
    GridOutcome,
    build_grid_cell,
    run,
    runner_for,
    solve_grid,
)
from repro.api.plan import ExperimentPlan, WorkUnit, plan
from repro.api.results import ResultRecord, ResultSet
from repro.api.spec import (
    WORKLOAD_KINDS,
    CampaignSettings,
    ExperimentSpec,
    RequirementOverrides,
    RuntimePolicy,
    SimulationSettings,
    SolverSettings,
    SweepAxis,
)

#: Aliases for callers that re-export ``plan``/``run`` under clearer names.
plan_experiment = plan
run_experiment = run

__all__ = [
    "WORKLOAD_KINDS",
    "CampaignSettings",
    "ExperimentPlan",
    "ExperimentSpec",
    "GridCell",
    "GridOutcome",
    "RequirementOverrides",
    "ResultRecord",
    "ResultSet",
    "RuntimePolicy",
    "SimulationSettings",
    "SolverSettings",
    "SweepAxis",
    "WorkUnit",
    "build_grid_cell",
    "plan",
    "plan_experiment",
    "run",
    "run_experiment",
    "runner_for",
    "solve_grid",
]
