"""Lossless JSON codec for :class:`~repro.core.results.GameSolution`.

The store holds JSON payloads, so solutions must round-trip *exactly*:
a solution decoded from disk has to be indistinguishable from the freshly
solved one, otherwise warm runs would not be byte-identical to cold runs.
Python's JSON writer emits the shortest ``repr`` that round-trips for every
finite float (and ``Infinity``/``NaN`` tokens otherwise), so encoding every
numeric field through :func:`float` is sufficient — no hex-float escaping
is needed in the payload itself.

``as_dict`` on the result dataclasses is *not* reused here: those views are
flattened for tables and drop solver metadata.  This codec is a faithful
field-for-field mapping with its own layout, validated on decode.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.core.results import (
    BargainingOutcome,
    GameSolution,
    OptimizationOutcome,
    TradeoffPoint,
)
from repro.exceptions import StoreError

__all__ = ["solution_to_payload", "solution_from_payload"]


def _encode_point(point: TradeoffPoint) -> Dict[str, object]:
    return {
        "parameters": {str(k): float(v) for k, v in point.parameters.items()},
        "energy": float(point.energy),
        "delay": float(point.delay),
    }


def _decode_point(payload: Mapping[str, Any]) -> TradeoffPoint:
    return TradeoffPoint(
        parameters={str(k): float(v) for k, v in payload["parameters"].items()},
        energy=float(payload["energy"]),
        delay=float(payload["delay"]),
    )


def _encode_optimum(outcome: OptimizationOutcome) -> Dict[str, object]:
    return {
        "problem": outcome.problem,
        "point": _encode_point(outcome.point),
        "feasible": bool(outcome.feasible),
        "solver": outcome.solver,
        "evaluations": int(outcome.evaluations),
        "binding_constraint": outcome.binding_constraint,
    }


def _decode_optimum(payload: Mapping[str, Any]) -> OptimizationOutcome:
    return OptimizationOutcome(
        problem=str(payload["problem"]),
        point=_decode_point(payload["point"]),
        feasible=bool(payload["feasible"]),
        solver=str(payload["solver"]),
        evaluations=int(payload["evaluations"]),
        binding_constraint=str(payload["binding_constraint"]),
    )


def _encode_bargaining(outcome: BargainingOutcome) -> Dict[str, object]:
    return {
        "point": _encode_point(outcome.point),
        "nash_product": float(outcome.nash_product),
        "disagreement_energy": float(outcome.disagreement_energy),
        "disagreement_delay": float(outcome.disagreement_delay),
        "energy_gain": float(outcome.energy_gain),
        "delay_gain": float(outcome.delay_gain),
        "fairness_residual": float(outcome.fairness_residual),
        "solver": outcome.solver,
        "evaluations": int(outcome.evaluations),
    }


def _decode_bargaining(payload: Mapping[str, Any]) -> BargainingOutcome:
    return BargainingOutcome(
        point=_decode_point(payload["point"]),
        nash_product=float(payload["nash_product"]),
        disagreement_energy=float(payload["disagreement_energy"]),
        disagreement_delay=float(payload["disagreement_delay"]),
        energy_gain=float(payload["energy_gain"]),
        delay_gain=float(payload["delay_gain"]),
        fairness_residual=float(payload["fairness_residual"]),
        solver=str(payload["solver"]),
        evaluations=int(payload["evaluations"]),
    )


def solution_to_payload(solution: GameSolution) -> Dict[str, object]:
    """Encode a game solution into a JSON-ready payload.

    Args:
        solution: The solution to persist.

    Returns:
        A plain dictionary of primitives; feeding it back through
        :func:`solution_from_payload` reconstructs an equal solution.
    """
    return {
        "protocol": solution.protocol,
        "energy_budget": float(solution.energy_budget),
        "max_delay": float(solution.max_delay),
        "energy_optimum": _encode_optimum(solution.energy_optimum),
        "delay_optimum": _encode_optimum(solution.delay_optimum),
        "bargaining": _encode_bargaining(solution.bargaining),
    }


def solution_from_payload(payload: Mapping[str, Any]) -> GameSolution:
    """Decode a stored payload back into a :class:`GameSolution`.

    Args:
        payload: A payload produced by :func:`solution_to_payload`.

    Returns:
        The reconstructed solution, field-for-field equal to the original.

    Raises:
        StoreError: if the payload is missing fields or has the wrong shape
            (a store record of another kind, or a truncated/foreign payload).
    """
    try:
        return GameSolution(
            protocol=str(payload["protocol"]),
            energy_budget=float(payload["energy_budget"]),
            max_delay=float(payload["max_delay"]),
            energy_optimum=_decode_optimum(payload["energy_optimum"]),
            delay_optimum=_decode_optimum(payload["delay_optimum"]),
            bargaining=_decode_bargaining(payload["bargaining"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise StoreError(f"malformed solve payload: {error!r}") from error
