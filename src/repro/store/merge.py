"""Merging result stores grown on different machines.

``--shard I/N`` runs leave each shard's results in its own store; merging
folds them into one store that is *file-identical* to the store a single
unsharded run would have produced (records are canonical bytes keyed by
content digests, so identical results are identical files).  Overlapping
keys are legal only when the records agree byte-for-byte — a disagreement
means two machines computed different results for the same identity, which
is a reproducibility bug that must surface, never be papered over.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Sequence, Union

from repro.exceptions import StoreError
from repro.store.records import decode_record
from repro.store.store import ResultStore

__all__ = ["MergeReport", "merge_stores"]


@dataclasses.dataclass(frozen=True)
class MergeReport:
    """Outcome of :func:`merge_stores`.

    Attributes:
        sources: Number of source stores merged.
        written: Records copied into the destination.
        shared: Records that already existed (byte-identically) in the
            destination.
    """

    sources: int
    written: int
    shared: int


def merge_stores(
    sources: Sequence[Union[str, Path, ResultStore]],
    out: Union[str, Path, ResultStore],
) -> MergeReport:
    """Merge every source store into ``out``.

    Args:
        sources: Store directories (or open stores) to merge, in order.
        out: Destination store; created if missing, and may already hold
            records (merging into a non-empty store is how incremental
            shard collection works).

    Returns:
        A :class:`MergeReport` with copy/overlap counts.

    Raises:
        StoreError: if a source is not a store, holds a corrupt record
            (run ``store gc --drop-corrupt`` first), or conflicts with the
            destination — same key digest, different record bytes.
    """
    destination = out if isinstance(out, ResultStore) else ResultStore(out)
    written = 0
    shared = 0
    opened = [
        source if isinstance(source, ResultStore) else ResultStore(source, create=False)
        for source in sources
    ]
    for store in opened:
        for digest in store.digests():
            text = store.record_text(digest)
            if text is None:
                continue
            try:
                kind, payload = decode_record(text, expected_digest=digest)
            except StoreError as error:
                raise StoreError(
                    f"source store {store.root} holds corrupt record "
                    f"{digest[:12]}… ({error}); run `store gc --drop-corrupt` "
                    "on it before merging"
                ) from error
            existing = destination.record_text(digest)
            if existing is not None:
                if existing != text:
                    raise StoreError(
                        f"merge conflict on key {digest[:12]}…: "
                        f"{store.root} and {destination.root} hold different "
                        "payloads for the same identity (results are expected "
                        "to be deterministic — refusing to merge)"
                    )
                shared += 1
                continue
            destination.put(digest, payload, kind)
            written += 1
    return MergeReport(sources=len(opened), written=written, shared=shared)
