"""Persistent, content-addressed result store.

The disk twin of the in-memory :class:`~repro.runtime.cache.SolveCache`:
results are filed under SHA-256 digests of the same solve identities the
cache already uses, so a warm store answers repeat work in O(read) across
processes, machines and CI runs.  Shards merge byte-identically
(:func:`merge_stores`), interrupted campaigns resume incrementally, and
corruption degrades to a miss instead of a crash.

See ``docs/store.md`` for the on-disk layout and the CI caching recipe.
"""

from repro.store.codec import solution_from_payload, solution_to_payload
from repro.store.keys import key_digest, replication_record_key
from repro.store.merge import MergeReport, merge_stores
from repro.store.records import (
    RECORD_KINDS,
    RECORD_SCHEMA,
    RECORD_SCHEMA_VERSION,
    decode_record,
    encode_record,
    payload_sha256,
)
from repro.store.store import (
    GcReport,
    ResultStore,
    StoreStats,
    StoreWarning,
    VerifyReport,
)

__all__ = [
    "GcReport",
    "MergeReport",
    "RECORD_KINDS",
    "RECORD_SCHEMA",
    "RECORD_SCHEMA_VERSION",
    "ResultStore",
    "StoreStats",
    "StoreWarning",
    "VerifyReport",
    "decode_record",
    "encode_record",
    "key_digest",
    "merge_stores",
    "payload_sha256",
    "replication_record_key",
    "solution_from_payload",
    "solution_to_payload",
]
