"""Canonical content-addressing of result-store records.

The in-memory :class:`~repro.runtime.cache.SolveCache` keys a solve by a
nested tuple of primitives (see :func:`repro.runtime.cache.solve_key`); the
disk store needs the *same identity* as a stable string.  :func:`key_digest`
folds a frozen key into a SHA-256 hex digest through a canonical byte
encoding — every component is length-prefixed and type-tagged, floats are
encoded via :meth:`float.hex` — so the digest does not depend on the
platform, the Python version, ``repr`` details, or hash randomization.

Two record families share the address space (the key's leading tag keeps
them disjoint):

* ``("solve", model_fingerprint, requirements, solver_options)`` — one
  bargaining-game solve, exactly the :class:`SolveCache` key;
* ``("replication", model_fingerprint, parameters, horizon, seed)`` — one
  seeded simulation replication of a campaign cell
  (:func:`replication_record_key`).
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro.exceptions import StoreError
from repro.runtime.cache import CacheKey, freeze, model_fingerprint

__all__ = ["key_digest", "replication_record_key"]


def _feed(hasher: "hashlib._Hash", value: Any) -> None:
    """Fold one frozen-key component into the hash, canonically.

    Accepts exactly the types :func:`~repro.runtime.cache.freeze` emits:
    ``None``, booleans, integers, floats, strings, bytes and (nested)
    tuples.  Booleans are checked before integers (``bool`` subclasses
    ``int``), floats go through ``float.hex`` so equal values always hash
    equally and unequal values never collide by formatting.
    """
    if value is None:
        hasher.update(b"N;")
    elif value is True:
        hasher.update(b"T;")
    elif value is False:
        hasher.update(b"F;")
    elif isinstance(value, int):
        data = str(value).encode("ascii")
        hasher.update(b"i%d:" % len(data))
        hasher.update(data)
    elif isinstance(value, float):
        data = value.hex().encode("ascii")
        hasher.update(b"f%d:" % len(data))
        hasher.update(data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        hasher.update(b"s%d:" % len(data))
        hasher.update(data)
    elif isinstance(value, bytes):
        hasher.update(b"b%d:" % len(value))
        hasher.update(value)
    elif isinstance(value, tuple):
        hasher.update(b"(%d:" % len(value))
        for item in value:
            _feed(hasher, item)
        hasher.update(b")")
    else:
        raise StoreError(
            f"cannot digest key component of type {type(value).__name__!r}; "
            "store keys must be frozen tuples of primitives "
            "(see repro.runtime.cache.freeze)"
        )


def key_digest(key: CacheKey) -> str:
    """SHA-256 hex digest of a frozen cache key.

    Args:
        key: A key as produced by :func:`repro.runtime.cache.solve_key` or
            :func:`replication_record_key` — nested tuples of primitives.

    Returns:
        A 64-character lowercase hex digest; equal keys always digest
        equally, on every platform and Python version.

    Raises:
        StoreError: if the key contains a component the canonical encoding
            does not cover.
    """
    hasher = hashlib.sha256()
    _feed(hasher, key)
    return hasher.hexdigest()


def replication_record_key(
    model: Any,
    parameters: Mapping[str, float],
    horizon: float,
    seed: int,
) -> CacheKey:
    """The store identity of one seeded simulation replication.

    Everything that determines the replication's measurements participates:
    the model fingerprint (class, scenario, tuning), the exact parameter
    vector the simulator runs at, the simulated horizon and the seed.
    Campaign-level aggregation settings (confidence, tolerances) do *not* —
    they only shape how measurements are folded, so stored replications are
    reusable across tolerance changes.

    Args:
        model: The protocol model the replication simulates.
        parameters: The (coerced) parameter vector of the run.
        horizon: Simulated duration in seconds.
        seed: The replication's simulation seed.

    Returns:
        A frozen key for :func:`key_digest`.
    """
    return (
        "replication",
        model_fingerprint(model),
        freeze(dict(parameters)),
        float(horizon),
        int(seed),
    )
