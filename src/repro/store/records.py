"""On-disk record format of the result store (``repro.store.record`` v1).

One record is one JSON file whose bytes are a pure function of
``(key digest, kind, payload)``: sorted keys, two-space indentation, a
trailing newline, and an embedded integrity hash over the payload's compact
canonical form.  That byte-determinism is what makes two stores grown on
different machines *file-identical* whenever they hold the same results —
the property the shard-merge identity CI job diffs for.

Decoding is strict: a record that fails *any* check (JSON parse, schema
tag, version, kind, key/digest match, payload integrity) raises
:class:`~repro.exceptions.StoreError` here; the store's read path catches
that and degrades the record to a miss plus a warning.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Tuple

from repro.exceptions import StoreError

__all__ = [
    "RECORD_KINDS",
    "RECORD_SCHEMA",
    "RECORD_SCHEMA_VERSION",
    "decode_record",
    "encode_record",
    "payload_sha256",
]

#: Schema tag every record carries.
RECORD_SCHEMA = "repro.store.record"

#: Record schema version this code writes and accepts.
RECORD_SCHEMA_VERSION = 1

#: Record families the store holds.
RECORD_KINDS = ("solve", "replication")


def payload_sha256(payload: Mapping[str, Any]) -> str:
    """Integrity hash of a record payload.

    The payload is serialized in compact canonical form (sorted keys, no
    whitespace) before hashing, so the digest is independent of how the
    surrounding record file is formatted.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_record(digest: str, kind: str, payload: Mapping[str, Any]) -> str:
    """Serialize one record into its canonical file text.

    Args:
        digest: The record's key digest (its address in the store).
        kind: One of :data:`RECORD_KINDS`.
        payload: JSON-ready result payload.

    Returns:
        The record file content, ending in a newline.

    Raises:
        StoreError: on an unknown ``kind`` or a payload JSON cannot encode.
    """
    if kind not in RECORD_KINDS:
        raise StoreError(f"unknown record kind {kind!r}; expected one of {RECORD_KINDS}")
    try:
        record = {
            "schema": RECORD_SCHEMA,
            "schema_version": RECORD_SCHEMA_VERSION,
            "kind": kind,
            "key_sha256": digest,
            "payload": dict(payload),
            "payload_sha256": payload_sha256(payload),
        }
        return json.dumps(record, indent=2, sort_keys=True) + "\n"
    except (TypeError, ValueError) as error:
        raise StoreError(f"record payload is not JSON-serializable: {error}") from error


def decode_record(text: str, expected_digest: str) -> Tuple[str, Dict[str, Any]]:
    """Parse and integrity-check one record file.

    Args:
        text: The record file content.
        expected_digest: The digest the record is filed under (from its
            path); the embedded ``key_sha256`` must match.

    Returns:
        ``(kind, payload)`` of the verified record.

    Raises:
        StoreError: if the text is not valid JSON, carries the wrong
            schema/version/kind, is filed under a different key, or its
            payload does not match the embedded integrity hash.
    """
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        raise StoreError(f"record is not valid JSON: {error}") from error
    if not isinstance(record, dict) or record.get("schema") != RECORD_SCHEMA:
        raise StoreError(f"not a store record (missing schema tag {RECORD_SCHEMA!r})")
    version = record.get("schema_version")
    if version != RECORD_SCHEMA_VERSION:
        raise StoreError(
            f"record schema version {version!r}; this code reads "
            f"version {RECORD_SCHEMA_VERSION}"
        )
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        raise StoreError(f"unknown record kind {kind!r}")
    if record.get("key_sha256") != expected_digest:
        raise StoreError(
            f"record is filed under {expected_digest[:12]}… but claims key "
            f"{str(record.get('key_sha256'))[:12]}…"
        )
    payload = record.get("payload")
    if not isinstance(payload, dict):
        raise StoreError("record payload is missing or not an object")
    actual = payload_sha256(payload)
    if actual != record.get("payload_sha256"):
        raise StoreError(
            "payload integrity hash mismatch (record is corrupted): "
            f"expected {str(record.get('payload_sha256'))[:12]}…, "
            f"recomputed {actual[:12]}…"
        )
    return str(kind), payload
