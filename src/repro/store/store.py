"""The disk-backed, content-addressed result store.

Layout (all paths under one root directory)::

    ROOT/
      store.json            # manifest: {"schema": "repro.store", "schema_version": 1}
      records/<dd>/<digest>.json   # one record per result, sharded by digest prefix
      tmp/                  # staging area of in-flight writes

Writes are atomic and idempotent: a record is staged in ``tmp/`` and
published with :func:`os.replace`, so readers never observe a partial file
and two processes racing to store the same key simply last-write an
identical record.  Reads degrade instead of crashing: a record that fails
any integrity check is a *miss* plus a :class:`StoreWarning` — a damaged
store behaves like a cold one.  ``verify()`` re-hashes every record and
``gc()`` sweeps orphaned temp files (optionally corrupt records too).
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.core.results import GameSolution
from repro.exceptions import StoreError
from repro.runtime.cache import CacheKey
from repro.store.codec import solution_from_payload, solution_to_payload
from repro.store.keys import key_digest
from repro.store.records import decode_record, encode_record

__all__ = ["GcReport", "ResultStore", "StoreStats", "StoreWarning", "VerifyReport"]

#: Manifest schema tag of a store root.
STORE_SCHEMA = "repro.store"

#: Manifest schema version this code creates and opens.
STORE_SCHEMA_VERSION = 1

_MANIFEST_NAME = "store.json"
_RECORDS_DIR = "records"
_TMP_DIR = "tmp"


class StoreWarning(UserWarning):
    """A store record was unreadable and has been treated as a miss."""


@dataclasses.dataclass(frozen=True)
class StoreStats:
    """One snapshot of a :class:`ResultStore`: traffic counters + contents.

    The counter fields (``hits``/``misses``/``puts``/``corrupt``) are
    per-instance — they start at zero when the store is opened, so a CLI
    invocation's stats describe exactly that run.  The content fields
    (``records``/``bytes``) describe the store *directory* at snapshot
    time, shared by every process using it.  This is the single stats
    surface: ``repro store stats``, the service's progress/health
    endpoints, and the engine's per-run deltas all read it instead of
    reaching into store internals.

    Attributes:
        hits: Lookups answered from disk.
        misses: Lookups that found no (readable) record.
        puts: Records actually written (existing keys are skipped, not
            rewritten).
        corrupt: Records that failed an integrity check on the read path.
        records: Record files currently on disk.
        bytes: Total size of those record files in bytes.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    records: int = 0
    bytes: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Flat summary used by reports."""
        return {
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_puts": self.puts,
            "store_corrupt": self.corrupt,
            "store_records": self.records,
            "store_bytes": self.bytes,
        }


@dataclasses.dataclass(frozen=True)
class VerifyReport:
    """Outcome of :meth:`ResultStore.verify`.

    Attributes:
        checked: Number of record files examined.
        corrupt: ``(digest, reason)`` of every record that failed a check.
    """

    checked: int
    corrupt: Tuple[Tuple[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every record verified cleanly."""
        return not self.corrupt


@dataclasses.dataclass(frozen=True)
class GcReport:
    """Outcome of :meth:`ResultStore.gc`.

    Attributes:
        tmp_removed: Orphaned staging files removed from ``tmp/``.
        corrupt_removed: Corrupt record files removed (only when requested).
    """

    tmp_removed: int
    corrupt_removed: int = 0


class ResultStore:
    """Disk-backed, content-addressed store of solve/replication results.

    Args:
        root: Store directory.  With ``create=True`` (the default) a
            missing or empty directory is initialized; an existing store is
            opened and its manifest version-checked either way.
        create: Whether a missing store may be initialized.  Maintenance
            commands pass ``False`` so a typo'd path errors instead of
            silently materializing an empty store.

    Raises:
        StoreError: if the directory exists but is not a result store, if
            its manifest carries an incompatible schema version, or if
            ``create=False`` and there is no store at ``root``.
    """

    def __init__(self, root: Union[str, Path], create: bool = True) -> None:
        self._root = Path(root)
        self._records = self._root / _RECORDS_DIR
        self._tmp = self._root / _TMP_DIR
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt = 0
        self._open(create)

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def _manifest_path(self) -> Path:
        return self._root / _MANIFEST_NAME

    def _record_path(self, digest: str) -> Path:
        return self._records / digest[:2] / f"{digest}.json"

    def _open(self, create: bool) -> None:
        manifest = self._manifest_path()
        if manifest.exists():
            self._check_manifest(manifest)
        else:
            if self._root.exists() and any(self._root.iterdir()):
                raise StoreError(
                    f"{self._root} exists but is not a result store "
                    f"(no {_MANIFEST_NAME} manifest)"
                )
            if not create:
                raise StoreError(f"no result store at {self._root}")
            self._root.mkdir(parents=True, exist_ok=True)
            manifest.write_text(
                '{\n  "schema": "%s",\n  "schema_version": %d\n}\n'
                % (STORE_SCHEMA, STORE_SCHEMA_VERSION),
                encoding="utf-8",
            )
        self._records.mkdir(parents=True, exist_ok=True)
        self._tmp.mkdir(parents=True, exist_ok=True)

    def _check_manifest(self, manifest: Path) -> None:
        import json

        try:
            payload = json.loads(manifest.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise StoreError(f"unreadable store manifest {manifest}: {error}") from error
        if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA:
            raise StoreError(f"{self._root} is not a result store")
        version = payload.get("schema_version")
        if version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"store {self._root} has schema version {version!r}; "
                f"this code opens version {STORE_SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------ #
    # Core get/put
    # ------------------------------------------------------------------ #

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``digest``, or ``None``.

        A record that exists but fails any integrity check is counted as
        corrupt, reported via :class:`StoreWarning`, and treated as a miss
        — the caller re-solves and the record is eventually overwritten by
        :meth:`gc`/a fresh :meth:`put` cycle, never crashed on.
        """
        path = self._record_path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        try:
            _, payload = decode_record(text, expected_digest=digest)
        except StoreError as error:
            with self._lock:
                self._corrupt += 1
                self._misses += 1
            warnings.warn(
                f"ignoring corrupt store record {path.name}: {error}", StoreWarning
            )
            return None
        with self._lock:
            self._hits += 1
        return payload

    def put(self, digest: str, payload: Mapping[str, Any], kind: str) -> bool:
        """Store ``payload`` under ``digest`` atomically.

        Existing records are left untouched (content-addressing guarantees
        an existing record for the same key holds the same result), so puts
        are idempotent and concurrent writers cannot interleave partial
        files: each stages its own temp file and publishes it with an
        atomic rename.

        Args:
            digest: The record's key digest (see :mod:`repro.store.keys`).
            payload: JSON-ready result payload.
            kind: Record family, one of
                :data:`repro.store.records.RECORD_KINDS`.

        Returns:
            ``True`` if a record was written, ``False`` if one already
            existed.
        """
        path = self._record_path(digest)
        if path.exists():
            return False
        text = encode_record(digest, kind, payload)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, staging = tempfile.mkstemp(
            prefix=f"{digest[:12]}.", suffix=".tmp", dir=self._tmp
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(staging, path)
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
        with self._lock:
            self._puts += 1
        return True

    def contains(self, digest: str) -> bool:
        """Whether a record file exists under ``digest`` (no integrity check)."""
        return self._record_path(digest).exists()

    __contains__ = contains

    # ------------------------------------------------------------------ #
    # Typed convenience layer (what SolveCache plugs into)
    # ------------------------------------------------------------------ #

    def get_solution(self, key: CacheKey) -> Optional[GameSolution]:
        """Look a game solution up by its solve key (read-through path)."""
        payload = self.get(key_digest(key))
        if payload is None:
            return None
        try:
            return solution_from_payload(payload)
        except StoreError as error:
            with self._lock:
                self._corrupt += 1
            warnings.warn(f"ignoring undecodable solve record: {error}", StoreWarning)
            return None

    def put_solution(self, key: CacheKey, solution: GameSolution) -> bool:
        """Persist a game solution under its solve key (write-behind path)."""
        return self.put(key_digest(key), solution_to_payload(solution), kind="solve")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def digests(self) -> Iterator[str]:
        """All record digests in the store, in sorted order."""
        if not self._records.exists():
            return
        for shard in sorted(self._records.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def record_count(self) -> int:
        """Number of record files in the store."""
        return sum(1 for _ in self.digests())

    def _disk_usage(self) -> Tuple[int, int]:
        """``(records, bytes)`` currently on disk (other writers included)."""
        records = 0
        size = 0
        if self._records.exists():
            for shard in self._records.iterdir():
                if not shard.is_dir():
                    continue
                for path in shard.glob("*.json"):
                    try:
                        size += path.stat().st_size
                    except OSError:
                        continue  # racing gc/merge: count only what's readable
                    records += 1
        return records, size

    def record_text(self, digest: str) -> Optional[str]:
        """The raw canonical file text of one record, or ``None``."""
        try:
            return self._record_path(digest).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def stats(self) -> StoreStats:
        """Snapshot of the instance counters plus the on-disk contents."""
        records, size = self._disk_usage()
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                corrupt=self._corrupt,
                records=records,
                bytes=size,
            )

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of readable records per kind (corrupt records excluded)."""
        counts: Dict[str, int] = {}
        for digest in self.digests():
            text = self.record_text(digest)
            if text is None:
                continue
            try:
                kind, _ = decode_record(text, expected_digest=digest)
            except StoreError:
                continue
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def verify(self) -> VerifyReport:
        """Re-hash every record and report the ones that fail.

        Returns:
            A :class:`VerifyReport`; ``report.ok`` is true when every
            record parsed, matched its filed digest, and passed the payload
            integrity hash.
        """
        corrupt: List[Tuple[str, str]] = []
        checked = 0
        for digest in self.digests():
            checked += 1
            text = self.record_text(digest)
            if text is None:
                corrupt.append((digest, "record disappeared during verify"))
                continue
            try:
                decode_record(text, expected_digest=digest)
            except StoreError as error:
                corrupt.append((digest, str(error)))
        return VerifyReport(checked=checked, corrupt=tuple(corrupt))

    def gc(self, drop_corrupt: bool = False) -> GcReport:
        """Sweep staging leftovers (and, optionally, corrupt records).

        Args:
            drop_corrupt: Also delete record files that fail verification,
                so the next run re-solves and rewrites them cleanly.

        Returns:
            A :class:`GcReport` with removal counts.
        """
        tmp_removed = 0
        if self._tmp.exists():
            for leftover in sorted(self._tmp.iterdir()):
                if leftover.is_file():
                    leftover.unlink()
                    tmp_removed += 1
        corrupt_removed = 0
        if drop_corrupt:
            for digest, _ in self.verify().corrupt:
                path = self._record_path(digest)
                if path.exists():
                    path.unlink()
                    corrupt_removed += 1
        return GcReport(tmp_removed=tmp_removed, corrupt_removed=corrupt_removed)
