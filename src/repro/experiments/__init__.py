"""Figure-by-figure reproduction drivers.

* :mod:`repro.experiments.config` — the scenario and requirement grids of
  the paper's evaluation (Ebudget = 0.06 J, Lmax in 1..6 s, and vice versa).
* :mod:`repro.experiments.figure1` — Figure 1 (a/b/c): energy-delay
  trade-off when fixing the energy budget and sweeping the delay bound.
* :mod:`repro.experiments.figure2` — Figure 2 (a/b/c): energy-delay
  trade-off when fixing the delay bound and sweeping the energy budget.
"""

from repro.experiments.config import (
    FIGURE_DELAY_BOUNDS,
    FIGURE_ENERGY_BUDGETS,
    FIGURE_ENERGY_BUDGET_FIXED,
    FIGURE_MAX_DELAY_FIXED,
    figure_scenario,
)
from repro.experiments.figure1 import reproduce_figure1
from repro.experiments.figure2 import reproduce_figure2

__all__ = [
    "FIGURE_DELAY_BOUNDS",
    "FIGURE_ENERGY_BUDGETS",
    "FIGURE_ENERGY_BUDGET_FIXED",
    "FIGURE_MAX_DELAY_FIXED",
    "figure_scenario",
    "reproduce_figure1",
    "reproduce_figure2",
]
