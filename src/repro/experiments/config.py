"""Shared configuration of the figure reproductions.

The paper's evaluation fixes ``Ebudget = 0.06 J`` while sweeping
``Lmax`` over 1..6 seconds (Figure 1) and fixes ``Lmax = 6 s`` while sweeping
``Ebudget`` over 0.01..0.06 J (Figure 2), for X-MAC, DMAC and LMAC.  The
underlying network scenario is not stated in the brief announcement; the
values below (documented in DESIGN.md §3) are chosen so that the published
qualitative behaviour — which constraint binds for which requirement value —
is reproduced.
"""

from __future__ import annotations

from repro.network.packets import PacketModel
from repro.network.radio import cc2420
from repro.network.topology import RingTopology
from repro.scenario import Scenario

#: Delay bounds swept in Figure 1 (seconds).
FIGURE_DELAY_BOUNDS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)

#: Energy budgets swept in Figure 2 (joules per second).
FIGURE_ENERGY_BUDGETS = (0.01, 0.02, 0.03, 0.04, 0.05, 0.06)

#: Energy budget fixed in Figure 1 (joules per second).
FIGURE_ENERGY_BUDGET_FIXED = 0.06

#: Delay bound fixed in Figure 2 (seconds).
FIGURE_MAX_DELAY_FIXED = 6.0

#: Grid resolution used by the hybrid solver inside the figure experiments.
#: Coarse enough to keep each of the 36 game solves fast, fine enough that the
#: SLSQP polish converges to the same optimum as a much denser grid.
FIGURE_GRID_POINTS = 60

#: Application sampling period used by the figure experiments (seconds).
#: One reading per node per hour, the "very low data-rate monitoring"
#: operating point of Langendoen & Meier that the paper builds on.
FIGURE_SAMPLING_PERIOD = 3600.0


def figure_scenario() -> Scenario:
    """The evaluation scenario used by both figure reproductions.

    Five rings, eight neighbours per node, one sample per node per hour,
    CC2420-class radio, 32-byte payloads.
    """
    return Scenario(
        topology=RingTopology(depth=5, density=8),
        sampling_rate=1.0 / FIGURE_SAMPLING_PERIOD,
        radio=cc2420(),
        packets=PacketModel(payload_bytes=32.0),
    )
