"""Figure 2 reproduction.

Figure 2 of the paper plots, for X-MAC (a), DMAC (b) and LMAC (c), the
energy-delay trade-off points obtained by fixing ``Lmax = 6 s`` and varying
``Ebudget`` from 0.01 to 0.06 J.  Raising the energy budget moves the
agreement in favour of the delay player.

This module regenerates the series behind each sub-figure as flat rows (one
per ``Ebudget`` value).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.sweep import SweepResult, sweep_grid
from repro.core.requirements import ApplicationRequirements
from repro.experiments.config import (
    FIGURE_ENERGY_BUDGETS,
    FIGURE_GRID_POINTS,
    FIGURE_MAX_DELAY_FIXED,
    figure_scenario,
)
from repro.protocols.registry import PAPER_PROTOCOL_NAMES, create_protocol
from repro.runtime import BatchRunner, build_runner
from repro.scenario import Scenario


def reproduce_figure2(
    protocols: Sequence[str] = PAPER_PROTOCOL_NAMES,
    energy_budgets: Iterable[float] = FIGURE_ENERGY_BUDGETS,
    max_delay: float = FIGURE_MAX_DELAY_FIXED,
    scenario: Optional[Scenario] = None,
    grid_points_per_dimension: int = FIGURE_GRID_POINTS,
    workers: Optional[int] = None,
    use_cache: bool = True,
    runner: Optional[BatchRunner] = None,
) -> Dict[str, SweepResult]:
    """Regenerate Figure 2: one energy-budget sweep per protocol.

    The full (protocol × energy budget) grid is solved as one batch, so
    ``workers > 1`` spreads all sub-figures across a process pool; the
    output stays bit-identical to a serial run.

    Args:
        workers: Worker processes for the solves (``1`` = serial, the
            default; ``None`` with an explicit ``runner`` defers to it).
        use_cache: Whether to memoize solves in the process-wide cache.
        runner: Fully custom batch runner; overrides ``workers``/``use_cache``.

    Returns:
        Mapping from protocol name (``"xmac"``, ``"dmac"``, ``"lmac"``) to
        the corresponding :class:`~repro.analysis.sweep.SweepResult`.
    """
    scenario = scenario or figure_scenario()
    if runner is None:
        runner = build_runner(workers=workers if workers is not None else 1, use_cache=use_cache)
    energy_budgets = list(energy_budgets)
    models = {name: create_protocol(name, scenario) for name in protocols}
    base_requirements = {
        name: ApplicationRequirements(
            energy_budget=max(energy_budgets),
            max_delay=max_delay,
            sampling_rate=model.scenario.sampling_rate,
        )
        for name, model in models.items()
    }
    return sweep_grid(
        models,
        "energy_budget",
        energy_budgets,
        base_requirements,
        runner=runner,
        grid_points_per_dimension=grid_points_per_dimension,
    )


def figure2_rows(results: Dict[str, SweepResult]) -> List[Dict[str, object]]:
    """Flatten the per-protocol sweeps into printable rows."""
    rows: List[Dict[str, object]] = []
    for name in results:
        rows.extend(results[name].series())
    return rows


def main() -> None:  # pragma: no cover - manual entry point
    """Print the Figure 2 series as a text table."""
    from repro.analysis.reporting import format_table

    results = reproduce_figure2()
    print(format_table(figure2_rows(results)))


if __name__ == "__main__":  # pragma: no cover
    main()
