"""Figure 2 reproduction.

Figure 2 of the paper plots, for X-MAC (a), DMAC (b) and LMAC (c), the
energy-delay trade-off points obtained by fixing ``Lmax = 6 s`` and varying
``Ebudget`` from 0.01 to 0.06 J.  Raising the energy budget moves the
agreement in favour of the delay player.

This module regenerates the series behind each sub-figure as flat rows (one
per ``Ebudget`` value).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.sweep import SweepResult, sweep_energy_budget
from repro.experiments.config import (
    FIGURE_ENERGY_BUDGETS,
    FIGURE_GRID_POINTS,
    FIGURE_MAX_DELAY_FIXED,
    figure_scenario,
)
from repro.protocols.registry import PAPER_PROTOCOL_NAMES, create_protocol
from repro.scenario import Scenario


def reproduce_figure2(
    protocols: Sequence[str] = PAPER_PROTOCOL_NAMES,
    energy_budgets: Iterable[float] = FIGURE_ENERGY_BUDGETS,
    max_delay: float = FIGURE_MAX_DELAY_FIXED,
    scenario: Optional[Scenario] = None,
    grid_points_per_dimension: int = FIGURE_GRID_POINTS,
) -> Dict[str, SweepResult]:
    """Regenerate Figure 2: one energy-budget sweep per protocol.

    Returns:
        Mapping from protocol name (``"xmac"``, ``"dmac"``, ``"lmac"``) to
        the corresponding :class:`~repro.analysis.sweep.SweepResult`.
    """
    scenario = scenario or figure_scenario()
    results: Dict[str, SweepResult] = {}
    for name in protocols:
        model = create_protocol(name, scenario)
        results[name] = sweep_energy_budget(
            model,
            max_delay=max_delay,
            energy_budgets=list(energy_budgets),
            grid_points_per_dimension=grid_points_per_dimension,
        )
    return results


def figure2_rows(results: Dict[str, SweepResult]) -> List[Dict[str, object]]:
    """Flatten the per-protocol sweeps into printable rows."""
    rows: List[Dict[str, object]] = []
    for name in results:
        rows.extend(results[name].series())
    return rows


def main() -> None:  # pragma: no cover - manual entry point
    """Print the Figure 2 series as a text table."""
    from repro.analysis.reporting import format_table

    results = reproduce_figure2()
    print(format_table(figure2_rows(results)))


if __name__ == "__main__":  # pragma: no cover
    main()
