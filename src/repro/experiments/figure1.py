"""Figure 1 reproduction.

Figure 1 of the paper plots, for X-MAC (a), DMAC (b) and LMAC (c), the
energy-delay trade-off points obtained by fixing ``Ebudget = 0.06 J`` and
varying ``Lmax`` from 1 to 6 seconds.  Each sub-figure shows the protocol's
E-L curve with the Nash bargaining trade-off points marked on it; relaxing
the delay bound moves the agreement in favour of the energy player.

This module regenerates the series behind each sub-figure as flat rows
(one per ``Lmax`` value) containing the corner points ``(Ebest, Lworst)``,
``(Eworst, Lbest)`` and the agreed point ``(E*, L*)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.sweep import SweepResult, sweep_grid
from repro.core.requirements import ApplicationRequirements
from repro.experiments.config import (
    FIGURE_DELAY_BOUNDS,
    FIGURE_ENERGY_BUDGET_FIXED,
    FIGURE_GRID_POINTS,
    figure_scenario,
)
from repro.protocols.registry import PAPER_PROTOCOL_NAMES, create_protocol
from repro.runtime import BatchRunner, build_runner
from repro.scenario import Scenario


def reproduce_figure1(
    protocols: Sequence[str] = PAPER_PROTOCOL_NAMES,
    delay_bounds: Iterable[float] = FIGURE_DELAY_BOUNDS,
    energy_budget: float = FIGURE_ENERGY_BUDGET_FIXED,
    scenario: Optional[Scenario] = None,
    grid_points_per_dimension: int = FIGURE_GRID_POINTS,
    workers: Optional[int] = None,
    use_cache: bool = True,
    runner: Optional[BatchRunner] = None,
) -> Dict[str, SweepResult]:
    """Regenerate Figure 1: one delay-bound sweep per protocol.

    The full (protocol × delay bound) grid is solved as one batch, so
    ``workers > 1`` spreads all sub-figures across a process pool; the
    output stays bit-identical to a serial run.

    Args:
        workers: Worker processes for the solves (``1`` = serial, the
            default; ``None`` with an explicit ``runner`` defers to it).
        use_cache: Whether to memoize solves in the process-wide cache.
        runner: Fully custom batch runner; overrides ``workers``/``use_cache``.

    Returns:
        Mapping from protocol name (``"xmac"``, ``"dmac"``, ``"lmac"``) to
        the corresponding :class:`~repro.analysis.sweep.SweepResult`.
    """
    scenario = scenario or figure_scenario()
    if runner is None:
        runner = build_runner(workers=workers if workers is not None else 1, use_cache=use_cache)
    delay_bounds = list(delay_bounds)
    models = {name: create_protocol(name, scenario) for name in protocols}
    base_requirements = {
        name: ApplicationRequirements(
            energy_budget=energy_budget,
            max_delay=max(delay_bounds),
            sampling_rate=model.scenario.sampling_rate,
        )
        for name, model in models.items()
    }
    return sweep_grid(
        models,
        "max_delay",
        delay_bounds,
        base_requirements,
        runner=runner,
        grid_points_per_dimension=grid_points_per_dimension,
    )


def figure1_rows(results: Dict[str, SweepResult]) -> List[Dict[str, object]]:
    """Flatten the per-protocol sweeps into printable rows."""
    rows: List[Dict[str, object]] = []
    for name in results:
        rows.extend(results[name].series())
    return rows


def main() -> None:  # pragma: no cover - manual entry point
    """Print the Figure 1 series as a text table."""
    from repro.analysis.reporting import format_table

    results = reproduce_figure1()
    print(format_table(figure1_rows(results)))


if __name__ == "__main__":  # pragma: no cover
    main()
