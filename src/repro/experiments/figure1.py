"""Figure 1 reproduction.

Figure 1 of the paper plots, for X-MAC (a), DMAC (b) and LMAC (c), the
energy-delay trade-off points obtained by fixing ``Ebudget = 0.06 J`` and
varying ``Lmax`` from 1 to 6 seconds.  Each sub-figure shows the protocol's
E-L curve with the Nash bargaining trade-off points marked on it; relaxing
the delay bound moves the agreement in favour of the energy player.

This module regenerates the series behind each sub-figure as flat rows
(one per ``Lmax`` value) containing the corner points ``(Ebest, Lworst)``,
``(Eworst, Lbest)`` and the agreed point ``(E*, L*)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.sweep import SweepResult, sweep_delay_bound
from repro.experiments.config import (
    FIGURE_DELAY_BOUNDS,
    FIGURE_ENERGY_BUDGET_FIXED,
    FIGURE_GRID_POINTS,
    figure_scenario,
)
from repro.protocols.registry import PAPER_PROTOCOL_NAMES, create_protocol
from repro.scenario import Scenario


def reproduce_figure1(
    protocols: Sequence[str] = PAPER_PROTOCOL_NAMES,
    delay_bounds: Iterable[float] = FIGURE_DELAY_BOUNDS,
    energy_budget: float = FIGURE_ENERGY_BUDGET_FIXED,
    scenario: Optional[Scenario] = None,
    grid_points_per_dimension: int = FIGURE_GRID_POINTS,
) -> Dict[str, SweepResult]:
    """Regenerate Figure 1: one delay-bound sweep per protocol.

    Returns:
        Mapping from protocol name (``"xmac"``, ``"dmac"``, ``"lmac"``) to
        the corresponding :class:`~repro.analysis.sweep.SweepResult`.
    """
    scenario = scenario or figure_scenario()
    results: Dict[str, SweepResult] = {}
    for name in protocols:
        model = create_protocol(name, scenario)
        results[name] = sweep_delay_bound(
            model,
            energy_budget=energy_budget,
            delay_bounds=list(delay_bounds),
            grid_points_per_dimension=grid_points_per_dimension,
        )
    return results


def figure1_rows(results: Dict[str, SweepResult]) -> List[Dict[str, object]]:
    """Flatten the per-protocol sweeps into printable rows."""
    rows: List[Dict[str, object]] = []
    for name in results:
        rows.extend(results[name].series())
    return rows


def main() -> None:  # pragma: no cover - manual entry point
    """Print the Figure 1 series as a text table."""
    from repro.analysis.reporting import format_table

    results = reproduce_figure1()
    print(format_table(figure1_rows(results)))


if __name__ == "__main__":  # pragma: no cover
    main()
