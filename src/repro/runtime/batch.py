"""Batched game solving: the engine behind every sweep and grid.

A :class:`BatchRunner` takes a grid of independent solve tasks — typically
(protocol × swept requirement value) — resolves what it can from a
:class:`~repro.runtime.cache.SolveCache`, chunks the remaining solves across
an :class:`~repro.runtime.executor.ExecutorPolicy`, and reassembles the
outcomes in submission order so parallel runs are bit-identical to serial
ones.

Errors are captured *per task*: an infeasible requirement value (or any
other per-solve failure) is recorded in its :class:`TaskOutcome` without
poisoning the rest of its chunk.  Callers decide which errors to swallow
(sweeps treat :class:`~repro.exceptions.InfeasibleProblemError` as data) and
which to re-raise.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.requirements import ApplicationRequirements
from repro.core.results import GameSolution
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import InfeasibleProblemError
from repro.protocols.base import DutyCycledMACModel
from repro.runtime.cache import CacheStats, SolveCache, default_cache, solve_key
from repro.runtime.executor import ExecutorPolicy, SerialExecutor, resolve_executor

#: Progress callback: ``progress(completed_tasks, total_tasks)``.
ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class SolveTask:
    """One independent game solve of a task grid.

    Attributes:
        model: Protocol model to solve the game for.
        requirements: Application requirements of this solve.
        solver_options: Options forwarded to the game's solver backend.
        label: Grouping key for callers (usually the protocol name).
        tag: Caller-defined payload carried into the outcome (usually the
            swept requirement value).
    """

    model: DutyCycledMACModel
    requirements: ApplicationRequirements
    solver_options: Mapping[str, object] = field(default_factory=dict)
    label: str = ""
    tag: Any = None


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one :class:`SolveTask`, successful or not.

    Attributes:
        index: Submission index of the task in the batch.
        label: The task's grouping key.
        tag: The task's caller-defined payload.
        solution: The game solution, or ``None`` if the solve failed.
        error: The captured exception, or ``None`` on success.
        from_cache: Whether the solution was answered by the cache.
        solve_seconds: Wall-clock time of the solve (0 for cache hits).
    """

    index: int
    label: str
    tag: Any
    solution: Optional[GameSolution]
    error: Optional[BaseException] = None
    from_cache: bool = False
    solve_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the solve produced a solution."""
        return self.solution is not None

    @property
    def infeasible(self) -> bool:
        """Whether the solve failed because the requirements are infeasible."""
        return isinstance(self.error, InfeasibleProblemError)


#: Wire format of one pending solve: (index, model, requirements, options).
_Payload = Tuple[int, DutyCycledMACModel, ApplicationRequirements, Dict[str, object]]
#: Wire format of one finished solve: (index, solution, error, seconds).
_Result = Tuple[int, Optional[GameSolution], Optional[BaseException], float]


def _solve_chunk(chunk: Sequence[_Payload]) -> List[_Result]:
    """Solve every task of a chunk, capturing failures per task.

    Module-level so process-pool workers can resolve it by reference; the
    per-task ``try`` is what keeps an infeasible value from poisoning the
    rest of its chunk.
    """
    results: List[_Result] = []
    for index, model, requirements, options in chunk:
        started = time.perf_counter()
        try:
            solution = EnergyDelayGame(model, requirements, **options).solve()
            results.append((index, solution, None, time.perf_counter() - started))
        except Exception as error:  # noqa: BLE001 - captured per task, re-raised by callers
            results.append((index, None, error, time.perf_counter() - started))
    return results


class BatchRunner:
    """Run a grid of game solves through a cache and an executor policy.

    Args:
        executor: Where the solves run; defaults to the serial policy.
        cache: Solve memo consulted before dispatch and updated after;
            ``None`` disables caching.
        chunk_size: Number of tasks per dispatched chunk.  ``None`` picks a
            size that gives each worker a few chunks (for progress
            granularity and tail-latency balance).
        progress: Optional ``progress(done, total)`` callback, invoked after
            the cache pass and after every finished chunk.

    Raises:
        ValueError: if ``chunk_size`` is given but smaller than 1.
    """

    def __init__(
        self,
        executor: Optional[ExecutorPolicy] = None,
        cache: Optional[SolveCache] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1 or None, got {chunk_size}")
        self._executor = executor if executor is not None else SerialExecutor()
        self._cache = cache
        self._chunk_size = chunk_size
        self._progress = progress

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def executor(self) -> ExecutorPolicy:
        """The executor policy solves are dispatched to."""
        return self._executor

    @property
    def cache(self) -> Optional[SolveCache]:
        """The solve cache, or ``None`` when caching is disabled."""
        return self._cache

    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the attached cache (zeros when disabled)."""
        if self._cache is None:
            return CacheStats()
        return self._cache.stats()

    def describe(self) -> str:
        """Short label for reports, e.g. ``"process[4]+cache+store"``."""
        suffix = ""
        if self._cache is not None:
            suffix = "+cache"
            if getattr(self._cache, "store", None) is not None:
                suffix += "+store"
        return f"{self._executor.describe()}{suffix}"

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _chunks(self, payloads: Sequence[_Payload]) -> List[List[_Payload]]:
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            # Aim for ~4 chunks per worker so stragglers can be rebalanced,
            # while serial runs still report progress along the way.
            size = max(1, math.ceil(len(payloads) / (self._executor.workers * 4)))
        return [list(payloads[i : i + size]) for i in range(0, len(payloads), size)]

    def run(self, tasks: Sequence[SolveTask]) -> List[TaskOutcome]:
        """Execute every task and return outcomes in submission order.

        Args:
            tasks: The independent solve tasks of one batch.

        Returns:
            One :class:`TaskOutcome` per task, ordered by submission index.
            Per-task failures are *captured* in the outcome's ``error``
            field, never raised — callers decide which errors to swallow
            (sweeps treat infeasibility as data) and which to re-raise.
        """
        tasks = list(tasks)
        total = len(tasks)
        outcomes: List[Optional[TaskOutcome]] = [None] * total
        completed = 0

        # Cache pass: answer what we can before dispatching anything.  Keys
        # are computed once, here, and reused when storing results: solving
        # populates lazy memos on the model, so a key recomputed after the
        # solve would not match the lookup key.  Tasks whose key already
        # appears earlier in the batch are not dispatched either — they are
        # fanned out from their primary's result when it lands.
        pending: List[_Payload] = []
        keys: List[Optional[Any]] = [None] * total
        primary_for_key: Dict[Any, int] = {}
        duplicates: Dict[int, List[int]] = {}
        for index, task in enumerate(tasks):
            if self._cache is not None:
                keys[index] = solve_key(task.model, task.requirements, task.solver_options)
                primary = primary_for_key.get(keys[index])
                if primary is not None:
                    duplicates.setdefault(primary, []).append(index)
                    continue
                solution = self._cache.get(keys[index])
                if solution is not None:
                    outcomes[index] = TaskOutcome(
                        index=index,
                        label=task.label,
                        tag=task.tag,
                        solution=solution,
                        from_cache=True,
                    )
                    completed += 1
                    continue
                primary_for_key[keys[index]] = index
            pending.append((index, task.model, task.requirements, dict(task.solver_options)))
        if self._progress is not None:
            self._progress(completed, total)

        if pending:
            progress_lock = threading.Lock()

            def _absorb_chunk(_: int, chunk_results: List[_Result]) -> None:
                nonlocal completed
                landed = 0
                for index, solution, error, seconds in chunk_results:
                    task = tasks[index]
                    outcomes[index] = TaskOutcome(
                        index=index,
                        label=task.label,
                        tag=task.tag,
                        solution=solution,
                        error=error,
                        solve_seconds=seconds,
                    )
                    if solution is not None and self._cache is not None:
                        self._cache.put(keys[index], solution)
                    landed += 1
                    # Fan the result out to same-key tasks of this batch.
                    for dup_index in duplicates.get(index, ()):
                        dup_task = tasks[dup_index]
                        outcomes[dup_index] = TaskOutcome(
                            index=dup_index,
                            label=dup_task.label,
                            tag=dup_task.tag,
                            solution=solution,
                            error=error,
                            from_cache=solution is not None,
                        )
                        landed += 1
                with progress_lock:
                    completed += landed
                    done = completed
                if self._progress is not None:
                    self._progress(done, total)

            self._executor.map_ordered(_solve_chunk, self._chunks(pending), _absorb_chunk)

        return [outcome for outcome in outcomes if outcome is not None]

    def run_one(self, task: SolveTask) -> TaskOutcome:
        """Convenience wrapper: run a single task."""
        return self.run([task])[0]


def build_runner(
    workers: Optional[int] = None,
    mode: str = "auto",
    use_cache: bool = True,
    cache: Optional[SolveCache] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    store: Optional[Any] = None,
) -> BatchRunner:
    """Assemble a :class:`BatchRunner` from simple knobs.

    This is the one-stop constructor the CLI and the experiment drivers use:
    ``workers`` picks the executor (1 → serial, N → process pool, ``None``/0
    → one per CPU), ``use_cache`` toggles the process-wide solve cache, and
    ``cache`` substitutes an explicit cache instance.

    Args:
        workers: Worker count handed to
            :func:`~repro.runtime.executor.resolve_executor`.
        mode: Executor mode (``"auto"``, ``"serial"``, ``"thread"``,
            ``"process"``).
        use_cache: Whether solves are memoized; ``False`` forces every solve
            to be recomputed — and deliberately bypasses ``store`` too, so
            "no cache" means *no cache of any kind*, never a silent
            store-only half-measure.
        cache: Explicit cache instance (defaults to the process-wide cache
            when ``use_cache`` is true).
        chunk_size: Tasks per dispatched chunk (``None`` auto-sizes).
        progress: Optional ``progress(done, total)`` callback.
        store: Optional persistent result store
            (:class:`repro.store.ResultStore`).  When given (and caching is
            on, with no explicit ``cache``), the runner gets a *fresh*
            cache instance backed by the store instead of the process-wide
            one, so the run's hit/miss counters are its own.

    Returns:
        The assembled :class:`BatchRunner`.

    Raises:
        ConfigurationError: if the executor mode or worker count is invalid.
    """
    if cache is None and use_cache and store is not None:
        cache = SolveCache(store=store)
    if cache is None and use_cache:
        cache = default_cache()
    if not use_cache:
        cache = None
    return BatchRunner(
        executor=resolve_executor(workers, mode),
        cache=cache,
        chunk_size=chunk_size,
        progress=progress,
    )


def default_runner() -> BatchRunner:
    """Serial runner bound to the process-wide cache (the library default)."""
    return BatchRunner(executor=SerialExecutor(), cache=default_cache())
