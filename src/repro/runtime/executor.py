"""Executor policies: where and how batched work runs.

The sweeps behind the paper's figures are embarrassingly parallel — one
independent game solve per (protocol, requirement value) pair — but the
results must stay reproducible: the output of a parallel run has to be
bit-identical to a serial run.  The policies here guarantee that by keying
every submitted item with its submission index and reassembling results in
submission order, no matter in which order the workers finish.

Three policies are provided:

* :class:`SerialExecutor` — run in the calling thread (the default, and the
  reference semantics every other policy must reproduce);
* :class:`ThreadExecutor` — a thread pool, useful for workloads dominated by
  the GIL-releasing numpy/scipy kernels;
* :class:`ProcessExecutor` — a process pool for CPU-bound Python work (the
  game solves), forked so workers share the parent's imports.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterable, List, Optional

from repro.exceptions import ConfigurationError

#: Callback invoked as each item completes: ``on_result(index, result)``.
#: Completion order is arbitrary under parallel policies; the *returned*
#: list is always in submission order.
ResultCallback = Callable[[int, Any], None]


def _effective_workers(workers: Optional[int]) -> int:
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return int(workers)


class ExecutorPolicy(abc.ABC):
    """How a batch of independent tasks is executed.

    Concrete policies differ only in *where* the function runs; all of them
    return results in submission order so callers cannot observe (and
    therefore cannot depend on) scheduling order.
    """

    #: Policy identifier used in reports (``"serial"``, ``"thread"``, ...).
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def workers(self) -> int:
        """Number of concurrent workers the policy uses."""

    @abc.abstractmethod
    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item and return results in submission order.

        Args:
            fn: The function applied to each item; under the process policy
                it must be picklable (module-level).
            items: The work items, consumed in submission order.
            on_result: Optional ``on_result(index, result)`` callback invoked
                as each item completes (completion order is arbitrary under
                parallel policies).

        Returns:
            One result per item, ordered by submission index regardless of
            completion order.

        Raises:
            Exception: whatever ``fn`` raises propagates to the caller
                (per-task error *capture* is the
                :class:`~repro.runtime.batch.BatchRunner`'s job, not the
                executor's).
        """

    def describe(self) -> str:
        """Short human-readable label, e.g. ``"process[4]"``."""
        return f"{self.name}[{self.workers}]"


class SerialExecutor(ExecutorPolicy):
    """Run every item inline in the calling thread (reference semantics)."""

    name = "serial"

    @property
    def workers(self) -> int:
        return 1

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Any]:
        results: List[Any] = []
        for index, item in enumerate(items):
            result = fn(item)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class _PoolExecutor(ExecutorPolicy):
    """Shared submit/reassemble logic of the thread and process policies."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = _effective_workers(workers)

    @property
    def workers(self) -> int:
        return self._workers

    @abc.abstractmethod
    def _make_pool(self, max_workers: int):
        """Create the underlying ``concurrent.futures`` pool."""

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Any]:
        items = list(items)
        if not items:
            return []
        results: List[Any] = [None] * len(items)
        max_workers = min(self._workers, len(items))
        with self._make_pool(max_workers) as pool:
            pending = {pool.submit(fn, item): index for index, item in enumerate(items)}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    results[index] = future.result()
                    if on_result is not None:
                        on_result(index, results[index])
        return results


class ThreadExecutor(_PoolExecutor):
    """Thread-pool policy (no pickling; shares memory with the caller)."""

    name = "thread"

    def _make_pool(self, max_workers: int):
        return ThreadPoolExecutor(max_workers=max_workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool policy for CPU-bound Python work.

    On Linux the pool uses the ``fork`` start method so workers inherit the
    parent's imports (numpy/scipy warm-up is paid once) and the submitted
    callables only need to be picklable by reference.  Elsewhere the
    platform default is kept: forking is unsafe on macOS (Objective-C
    runtime aborts post-fork) and unavailable on Windows.
    """

    name = "process"

    def _make_pool(self, max_workers: int):
        context = None
        if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)


#: Accepted ``mode`` values of :func:`resolve_executor`.
EXECUTOR_MODES = ("auto", "serial", "thread", "process")


def resolve_executor(workers: Optional[int] = None, mode: str = "auto") -> ExecutorPolicy:
    """Build an executor policy from a worker count and a mode name.

    Args:
        workers: Desired concurrency.  ``None`` or ``0`` means "one worker
            per CPU"; ``1`` selects the serial policy under ``mode="auto"``.
        mode: ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``
            (serial for one worker, process pool otherwise).

    Returns:
        The resolved :class:`ExecutorPolicy` instance.

    Raises:
        ConfigurationError: if ``mode`` is not one of :data:`EXECUTOR_MODES`
            or ``workers`` is negative.
    """
    if mode not in EXECUTOR_MODES:
        raise ConfigurationError(
            f"unknown executor mode {mode!r}; expected one of {', '.join(EXECUTOR_MODES)}"
        )
    if workers is not None and workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if mode == "serial":
        return SerialExecutor()
    if mode == "thread":
        return ThreadExecutor(workers)
    if mode == "process":
        return ProcessExecutor(workers)
    if _effective_workers(workers) <= 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
