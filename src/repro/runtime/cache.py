"""Memoization of game solutions.

A requirement sweep re-solves the same :class:`~repro.core.tradeoff.EnergyDelayGame`
for many nearby configurations, and higher layers (figure drivers, grid
searches, the CLI) routinely repeat solves with identical inputs.  The game
is deterministic — same protocol model, requirements and solver options give
bit-identical solutions — so those repeats are pure waste.

:class:`SolveCache` memoizes solutions keyed by the full solve identity:
protocol model fingerprint (class, scenario and tuning parameters),
application requirements, and solver options.  Hit/miss statistics are kept
so reports can surface how much work the cache saved.
"""

from __future__ import annotations

import dataclasses
import functools
import threading
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.requirements import ApplicationRequirements
from repro.core.results import GameSolution
from repro.protocols.base import DutyCycledMACModel

#: A fully resolved, hashable cache key.
CacheKey = Tuple[Any, ...]

#: Solver options that pick the grid-stage *strategy*, not the answer: the
#: exhaustive and adaptive methods are differentially proven to return
#: identical solutions, so these keys are stripped from the solve identity
#: — a solution cached (or stored on disk) by one method is replayed for
#: the other.
SOLVER_METHOD_OPTION_KEYS = frozenset(
    {"method", "coarse_points", "refine_rounds", "top_k"}
)


def freeze(value: Any) -> Any:
    """Convert a value into a deterministic, hashable representation.

    Handles the types that appear in solve identities: scalars, strings,
    mappings (order-insensitive), sequences, numpy arrays, dataclasses, and
    plain objects (via their ``__dict__``).

    Args:
        value: The value to freeze.

    Returns:
        A hashable value: scalars pass through; containers become tagged
        tuples; anything unrecognized falls back to its ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, Mapping):
        return ("map", tuple(sorted((str(k), freeze(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(freeze(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(freeze(item)) for item in value)))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return ("dataclass", type(value).__qualname__, freeze(fields))
    if hasattr(value, "__dict__"):
        return ("object", type(value).__qualname__, freeze(vars(value)))
    return ("repr", repr(value))


def _lazy_attribute_names(cls: type) -> frozenset:
    """Instance attributes that are ``functools.cached_property`` memos.

    The protocol models memoize derived quantities lazily; those memo slots
    appear in ``vars(model)`` only after first use and are functions of the
    defining state, so they must not participate in the identity (a solved
    model must fingerprint identically to a fresh one).
    """
    names = set()
    for klass in type.mro(cls):
        for name, attribute in vars(klass).items():
            if isinstance(attribute, functools.cached_property):
                names.add(name)
    return frozenset(names)


def model_fingerprint(model: DutyCycledMACModel) -> Any:
    """Deterministic identity of a protocol model instance.

    Two model instances of the same class, bound to equal scenarios with
    equal tuning parameters, produce the same fingerprint — which is exactly
    the condition under which their solves are interchangeable.

    Args:
        model: The protocol model to fingerprint.

    Returns:
        A hashable tuple of the model's qualified class name, protocol name
        and frozen non-memoized instance state (lazy ``cached_property``
        memos are excluded, so a solved model fingerprints identically to a
        fresh one).
    """
    lazy = _lazy_attribute_names(type(model))
    state = {name: value for name, value in vars(model).items() if name not in lazy}
    return (
        f"{type(model).__module__}.{type(model).__qualname__}",
        model.name,
        freeze(state),
    )


def solve_key(
    model: DutyCycledMACModel,
    requirements: ApplicationRequirements,
    solver_options: Mapping[str, object],
) -> CacheKey:
    """The full identity of one game solve (the cache key).

    Args:
        model: Protocol model of the solve.
        requirements: Application requirements of the solve.
        solver_options: Options forwarded to the solver backend.

    Returns:
        A hashable key; two solves with equal keys are guaranteed to produce
        bit-identical solutions (the game is deterministic, and the solver
        method knobs — which never change the solution — are excluded).
    """
    options = {
        key: value
        for key, value in dict(solver_options).items()
        if key not in SOLVER_METHOD_OPTION_KEYS
    }
    return (
        "solve",
        model_fingerprint(model),
        freeze(requirements),
        freeze(options),
    )


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`SolveCache`.

    Attributes:
        hits: Number of lookups answered from the cache.
        misses: Number of lookups that required a fresh solve.
        entries: Number of solutions currently stored.
        evictions: Number of entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, object]:
        """Flat summary used by reports."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_entries": self.entries,
            "cache_evictions": self.evictions,
            "cache_hit_rate": self.hit_rate,
        }


class SolveCache:
    """Thread-safe LRU memo of :class:`~repro.core.results.GameSolution`.

    Args:
        max_entries: Optional LRU bound; ``None`` means unbounded.  Sweeps
            are small (tens of solves) but long-lived services may want a
            cap.
        store: Optional persistent backend (duck-typed against
            :class:`repro.store.ResultStore`: ``get_solution(key)`` /
            ``put_solution(key, solution)``).  Reads fall through to the
            store on a memory miss (read-through) and fresh solutions are
            persisted as they are stored (write-behind), so the memory
            layer stays the fast path while the store survives the
            process.
    """

    def __init__(
        self, max_entries: Optional[int] = None, store: Optional[Any] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self._max_entries = max_entries
        self._store = store
        self._entries: "OrderedDict[CacheKey, GameSolution]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Key construction (static so callers can pre-compute keys)
    # ------------------------------------------------------------------ #

    key = staticmethod(solve_key)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #

    @property
    def store(self) -> Optional[Any]:
        """The persistent backend, or ``None`` for a purely in-memory cache."""
        return self._store

    def _insert(self, key: CacheKey, solution: GameSolution) -> None:
        """Insert under the lock, evicting LRU entries if bounded."""
        self._entries[key] = solution
        self._entries.move_to_end(key)
        if self._max_entries is not None:
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get(self, key: CacheKey) -> Optional[GameSolution]:
        """Return the memoized solution for ``key``, counting hit or miss.

        A memory miss falls through to the persistent store (when one is
        attached); a store hit is counted as a cache hit and promoted into
        the memory layer, without being written back to the store.
        """
        with self._lock:
            solution = self._entries.get(key)
            if solution is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return solution
        if self._store is not None:
            # Disk I/O happens outside the lock; the store is thread-safe.
            solution = self._store.get_solution(key)
            if solution is not None:
                with self._lock:
                    self._insert(key, solution)
                    self._hits += 1
                return solution
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: CacheKey, solution: GameSolution) -> None:
        """Store a solution under ``key``, evicting LRU entries if bounded.

        With a persistent backend attached, the solution is also written
        behind to the store (idempotently — an existing record is left
        untouched).
        """
        with self._lock:
            self._insert(key, solution)
        if self._store is not None:
            self._store.put_solution(key, solution)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------ #
    # Stats / maintenance
    # ------------------------------------------------------------------ #

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                evictions=self._evictions,
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0


#: Process-wide cache shared by the default runners (CLI, experiments).
_DEFAULT_CACHE = SolveCache()


def default_cache() -> SolveCache:
    """The process-wide solve cache used when no explicit cache is given."""
    return _DEFAULT_CACHE
