"""Parallel experiment runtime.

Shared execution layer for everything that solves many games: requirement
sweeps, figure reproductions, grid searches, scalability studies and the
CLI.  Three pieces compose:

* :mod:`repro.runtime.executor` — executor policies (serial / thread /
  process pool) with deterministic, submission-ordered reassembly;
* :mod:`repro.runtime.cache` — a thread-safe LRU memo of game solutions
  keyed by (protocol model, requirements, solver options);
* :mod:`repro.runtime.batch` — the :class:`BatchRunner` that chunks task
  grids across workers with progress callbacks and per-task error capture.

The invariant the whole package is built around: a parallel run is
bit-identical to a serial run.  Tasks are keyed by submission index and the
solves are deterministic, so the executor choice is purely a wall-clock
decision.
"""

from repro.runtime.batch import (
    BatchRunner,
    SolveTask,
    TaskOutcome,
    build_runner,
    default_runner,
)
from repro.runtime.cache import (
    CacheStats,
    SolveCache,
    default_cache,
    freeze,
    model_fingerprint,
    solve_key,
)
from repro.runtime.executor import (
    EXECUTOR_MODES,
    ExecutorPolicy,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)

__all__ = [
    "BatchRunner",
    "SolveTask",
    "TaskOutcome",
    "build_runner",
    "default_runner",
    "CacheStats",
    "SolveCache",
    "default_cache",
    "freeze",
    "model_fingerprint",
    "solve_key",
    "EXECUTOR_MODES",
    "ExecutorPolicy",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "resolve_executor",
]
