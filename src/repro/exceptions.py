"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch all library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid values.

    Raised, for example, when a radio model has a negative power draw, when a
    topology has zero rings, or when an application requirement is
    non-positive.
    """


class InfeasibleProblemError(ReproError):
    """An optimization problem has an empty feasible region.

    Raised when the requested application requirements (energy budget and
    end-to-end delay bound) cannot be met simultaneously by any admissible
    parameter vector of the protocol under study.
    """


class SolverError(ReproError):
    """A numerical solver failed to produce a usable solution."""


class BargainingError(ReproError):
    """The bargaining game is ill-posed.

    Raised when the feasible utility set is empty, when no point dominates
    the disagreement point, or when an axiom check is requested on an
    incompatible game.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class StoreError(ReproError):
    """The persistent result store is unusable or inconsistent.

    Raised when a directory is not a result store (or carries an
    incompatible schema version), when a merge encounters two records with
    the same key but different payloads, or when a key contains a value the
    canonical digest cannot encode.  Note that a *corrupted record* does not
    raise on the read path: it is treated as a miss (plus a warning) so a
    damaged store degrades to a cold one instead of crashing the run.
    """


class ValidationError(ReproError):
    """Analytical model and simulation disagree beyond the allowed tolerance."""
