"""Requirement sweeps.

The paper's two figures are sweeps of the application requirements: Figure 1
fixes the energy budget and varies the delay bound, Figure 2 fixes the delay
bound and varies the energy budget.  These helpers run such sweeps for one or
several protocols and return structured results the reporting layer and the
benches can print.

All sweeps route through the shared :func:`repro.api.engine.solve_grid`
primitive (and hence the :mod:`repro.runtime` batch runner): solves are
memoized in the solve cache and can be fanned out across worker processes
(``runner=build_runner(workers=4)``) with output bit-identical to a serial
run — and bit-identical to the same sweep described declaratively as an
:class:`~repro.api.spec.ExperimentSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.requirements import ApplicationRequirements
from repro.core.results import GameSolution
from repro.exceptions import ConfigurationError
from repro.protocols.base import DutyCycledMACModel
from repro.runtime import BatchRunner, default_runner

#: The requirement attributes a sweep may vary.
SWEEPABLE_PARAMETERS = ("max_delay", "energy_budget")


@dataclass
class SweepResult:
    """Result of sweeping one requirement for one protocol.

    Attributes:
        protocol: Protocol name.
        swept_parameter: ``"max_delay"`` or ``"energy_budget"``.
        values: The swept requirement values, in sweep order.
        solutions: One game solution per feasible value (same order as
            ``values`` minus the infeasible ones).
        infeasible_values: Requirement values for which the game had no
            feasible point (one entry per infeasible sweep position, so a
            value swept twice can appear twice).
        feasibility: Per-index feasibility flags, parallel to ``values``.
        cache_hits: Solves answered by the solve cache.
        cache_misses: Solves actually computed.
    """

    protocol: str
    swept_parameter: str
    values: List[float] = field(default_factory=list)
    solutions: List[GameSolution] = field(default_factory=list)
    infeasible_values: List[float] = field(default_factory=list)
    feasibility: List[bool] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def feasible_values(self) -> List[float]:
        """The swept values that produced a solution, in sweep order."""
        if len(self.feasibility) == len(self.values):
            return [value for value, ok in zip(self.values, self.feasibility) if ok]
        # Legacy construction without per-index flags: drop each infeasible
        # value only as many times as it was recorded infeasible, so a value
        # swept twice with one feasible occurrence is not dropped twice.
        remaining: Dict[float, int] = {}
        for value in self.infeasible_values:
            remaining[value] = remaining.get(value, 0) + 1
        feasible: List[float] = []
        for value in self.values:
            if remaining.get(value, 0) > 0:
                remaining[value] -= 1
                continue
            feasible.append(value)
        return feasible

    def series(self) -> List[Dict[str, float]]:
        """One flat row per feasible sweep value (for tables and CSV)."""
        rows: List[Dict[str, float]] = []
        for value, solution in zip(self.feasible_values, self.solutions):
            rows.append(
                {
                    "protocol": self.protocol,
                    self.swept_parameter: value,
                    "E_best": solution.energy_best,
                    "L_worst": solution.delay_worst,
                    "E_worst": solution.energy_worst,
                    "L_best": solution.delay_best,
                    "E_star": solution.energy_star,
                    "L_star": solution.delay_star,
                    "fairness_residual": solution.bargaining.fairness_residual,
                }
            )
        return rows


def _requirements_for(
    base: ApplicationRequirements, parameter: str, value: float
) -> ApplicationRequirements:
    if parameter == "max_delay":
        return base.with_max_delay(float(value))
    return base.with_energy_budget(float(value))


def _build_cells(
    model: DutyCycledMACModel,
    base_requirements: ApplicationRequirements,
    parameter: str,
    values: Sequence[float],
    solver_options: Mapping[str, object],
) -> List[object]:
    from repro.api.engine import GridCell

    return [
        GridCell(
            scenario="",
            protocol=model.name,
            model=model,
            requirements=_requirements_for(base_requirements, parameter, value),
            solver_options=dict(solver_options),
            tag=float(value),
        )
        for value in values
    ]


def collect_sweep(
    model: DutyCycledMACModel,
    parameter: str,
    values: Sequence[float],
    outcomes: Sequence,
) -> SweepResult:
    """Fold a sweep's solve outcomes (in sweep order) into a SweepResult.

    Accepts anything outcome-shaped (``ok`` / ``infeasible`` / ``solution``
    / ``from_cache`` / ``tag``) — both the runtime layer's
    :class:`~repro.runtime.batch.TaskOutcome` and the api engine's
    :class:`~repro.api.engine.GridOutcome`.
    """
    result = SweepResult(
        protocol=model.name, swept_parameter=parameter, values=[float(v) for v in values]
    )
    for outcome in outcomes:
        if outcome.ok:
            result.solutions.append(outcome.solution)
            result.feasibility.append(True)
            if outcome.from_cache:
                result.cache_hits += 1
            else:
                result.cache_misses += 1
        elif outcome.infeasible:
            result.infeasible_values.append(float(outcome.tag))
            result.feasibility.append(False)
            result.cache_misses += 1
        else:
            # Only infeasibility is data; anything else is a real failure.
            raise outcome.error
    return result


#: Backwards-compatible alias (the folding helper used to be private).
_collect_sweep = collect_sweep


def _run_sweep(
    model: DutyCycledMACModel,
    base_requirements: ApplicationRequirements,
    parameter: str,
    values: Sequence[float],
    solver_options: Mapping[str, object],
    runner: Optional[BatchRunner] = None,
) -> SweepResult:
    from repro.api.engine import solve_grid

    if parameter not in SWEEPABLE_PARAMETERS:
        raise ConfigurationError(f"unknown swept parameter {parameter!r}")
    runner = runner if runner is not None else default_runner()
    cells = _build_cells(model, base_requirements, parameter, values, solver_options)
    outcomes = solve_grid(cells, runner)
    return collect_sweep(model, parameter, values, outcomes)


def sweep_grid(
    models: Mapping[str, DutyCycledMACModel],
    parameter: str,
    values: Iterable[float],
    base_requirements: Mapping[str, ApplicationRequirements],
    runner: Optional[BatchRunner] = None,
    **solver_options: object,
) -> Dict[str, SweepResult]:
    """Sweep one requirement over several protocols as a single task grid.

    The full (protocol × value) grid is submitted to the runner as one
    batch, so a parallel executor can balance all solves across its workers
    instead of parallelizing one protocol at a time.

    Args:
        models: Protocol models keyed by the name the result should carry.
        parameter: ``"max_delay"`` or ``"energy_budget"``.
        values: The swept requirement values (shared by every protocol).
        base_requirements: Per-protocol base requirements (same keys as
            ``models``); the swept attribute is substituted per value.
        runner: Batch runner; defaults to the serial cached runner.
        solver_options: Extra options forwarded to the game solver.
    """
    from repro.api.engine import solve_grid

    if parameter not in SWEEPABLE_PARAMETERS:
        raise ConfigurationError(f"unknown swept parameter {parameter!r}")
    missing = [name for name in models if name not in base_requirements]
    if missing:
        raise ConfigurationError(
            f"base_requirements missing for protocols: {', '.join(sorted(missing))}"
        )
    runner = runner if runner is not None else default_runner()
    values = [float(value) for value in values]
    cells: List[object] = []
    for name, model in models.items():
        cells.extend(
            _build_cells(model, base_requirements[name], parameter, values, solver_options)
        )
    outcomes = solve_grid(cells, runner)
    results: Dict[str, SweepResult] = {}
    for position, (name, model) in enumerate(models.items()):
        slice_ = outcomes[position * len(values) : (position + 1) * len(values)]
        results[name] = collect_sweep(model, parameter, values, slice_)
    return results


def sweep_delay_bound(
    model: DutyCycledMACModel,
    energy_budget: float,
    delay_bounds: Iterable[float],
    sampling_rate: Optional[float] = None,
    runner: Optional[BatchRunner] = None,
    **solver_options: object,
) -> SweepResult:
    """Figure-1-style sweep: fix ``Ebudget`` and vary ``Lmax``."""
    requirements = ApplicationRequirements(
        energy_budget=energy_budget,
        max_delay=max(delay_bounds := list(delay_bounds)),
        sampling_rate=sampling_rate or model.scenario.sampling_rate,
    )
    return _run_sweep(model, requirements, "max_delay", delay_bounds, solver_options, runner)


def sweep_energy_budget(
    model: DutyCycledMACModel,
    max_delay: float,
    energy_budgets: Iterable[float],
    sampling_rate: Optional[float] = None,
    runner: Optional[BatchRunner] = None,
    **solver_options: object,
) -> SweepResult:
    """Figure-2-style sweep: fix ``Lmax`` and vary ``Ebudget``."""
    requirements = ApplicationRequirements(
        energy_budget=max(energy_budgets := list(energy_budgets)),
        max_delay=max_delay,
        sampling_rate=sampling_rate or model.scenario.sampling_rate,
    )
    return _run_sweep(model, requirements, "energy_budget", energy_budgets, solver_options, runner)
