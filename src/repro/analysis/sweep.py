"""Requirement sweeps.

The paper's two figures are sweeps of the application requirements: Figure 1
fixes the energy budget and varies the delay bound, Figure 2 fixes the delay
bound and varies the energy budget.  These helpers run such sweeps for one or
several protocols and return structured results the reporting layer and the
benches can print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.requirements import ApplicationRequirements
from repro.core.results import GameSolution
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.protocols.base import DutyCycledMACModel


@dataclass
class SweepResult:
    """Result of sweeping one requirement for one protocol.

    Attributes:
        protocol: Protocol name.
        swept_parameter: ``"max_delay"`` or ``"energy_budget"``.
        values: The swept requirement values, in sweep order.
        solutions: One game solution per feasible value (same order as
            ``values`` minus the infeasible ones).
        infeasible_values: Requirement values for which the game had no
            feasible point.
    """

    protocol: str
    swept_parameter: str
    values: List[float] = field(default_factory=list)
    solutions: List[GameSolution] = field(default_factory=list)
    infeasible_values: List[float] = field(default_factory=list)

    @property
    def feasible_values(self) -> List[float]:
        """The swept values that produced a solution."""
        return [value for value in self.values if value not in self.infeasible_values]

    def series(self) -> List[Dict[str, float]]:
        """One flat row per feasible sweep value (for tables and CSV)."""
        rows: List[Dict[str, float]] = []
        for value, solution in zip(self.feasible_values, self.solutions):
            rows.append(
                {
                    "protocol": self.protocol,
                    self.swept_parameter: value,
                    "E_best": solution.energy_best,
                    "L_worst": solution.delay_worst,
                    "E_worst": solution.energy_worst,
                    "L_best": solution.delay_best,
                    "E_star": solution.energy_star,
                    "L_star": solution.delay_star,
                    "fairness_residual": solution.bargaining.fairness_residual,
                }
            )
        return rows


def _run_sweep(
    model: DutyCycledMACModel,
    base_requirements: ApplicationRequirements,
    parameter: str,
    values: Sequence[float],
    solver_options: Mapping[str, object],
) -> SweepResult:
    if parameter not in ("max_delay", "energy_budget"):
        raise ConfigurationError(f"unknown swept parameter {parameter!r}")
    result = SweepResult(protocol=model.name, swept_parameter=parameter, values=list(values))
    for value in values:
        if parameter == "max_delay":
            requirements = base_requirements.with_max_delay(float(value))
        else:
            requirements = base_requirements.with_energy_budget(float(value))
        game = EnergyDelayGame(model, requirements, **dict(solver_options))
        try:
            result.solutions.append(game.solve())
        except InfeasibleProblemError:
            result.infeasible_values.append(float(value))
    return result


def sweep_delay_bound(
    model: DutyCycledMACModel,
    energy_budget: float,
    delay_bounds: Iterable[float],
    sampling_rate: Optional[float] = None,
    **solver_options: object,
) -> SweepResult:
    """Figure-1-style sweep: fix ``Ebudget`` and vary ``Lmax``."""
    requirements = ApplicationRequirements(
        energy_budget=energy_budget,
        max_delay=max(delay_bounds := list(delay_bounds)),
        sampling_rate=sampling_rate or model.scenario.sampling_rate,
    )
    return _run_sweep(model, requirements, "max_delay", delay_bounds, solver_options)


def sweep_energy_budget(
    model: DutyCycledMACModel,
    max_delay: float,
    energy_budgets: Iterable[float],
    sampling_rate: Optional[float] = None,
    **solver_options: object,
) -> SweepResult:
    """Figure-2-style sweep: fix ``Lmax`` and vary ``Ebudget``."""
    requirements = ApplicationRequirements(
        energy_budget=max(energy_budgets := list(energy_budgets)),
        max_delay=max_delay,
        sampling_rate=sampling_rate or model.scenario.sampling_rate,
    )
    return _run_sweep(model, requirements, "energy_budget", energy_budgets, solver_options)
