"""Scalability study.

The paper claims the framework is "scalable with the increase in the number
of nodes, as the players represent the optimization metrics instead of the
nodes".  Concretely: the game always has two players and the optimization
variables are the handful of MAC parameters, so the solve cost grows only
through the (cheap) evaluation of the closed-form traffic expressions, not
with the node count.  This module measures exactly that: wall-clock solve
time and solution values as the topology depth/density (hence node count)
grow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Tuple, Type

from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.network.topology import RingTopology
from repro.protocols.base import DutyCycledMACModel
from repro.scenario import Scenario


@dataclass(frozen=True)
class ScalabilityRecord:
    """One point of the scalability study.

    Attributes:
        depth: Ring count ``D`` of the scenario.
        density: Neighbourhood size ``C`` of the scenario.
        node_count: Total number of nodes ``C * D^2``.
        solve_seconds: Wall-clock time to solve the complete game.
        energy_star: Agreed energy at the Nash bargaining point.
        delay_star: Agreed delay at the Nash bargaining point.
    """

    depth: int
    density: int
    node_count: float
    solve_seconds: float
    energy_star: float
    delay_star: float


def scalability_study(
    protocol_class: Type[DutyCycledMACModel],
    sizes: Iterable[Tuple[int, int]],
    requirements: ApplicationRequirements,
    sampling_rate: float = 1.0 / 3600.0,
    **solver_options: object,
) -> List[ScalabilityRecord]:
    """Solve the game across a range of network sizes and time each solve.

    Args:
        protocol_class: Protocol model class to instantiate per size.
        sizes: Iterable of ``(depth, density)`` pairs.
        requirements: Application requirements applied to every size.
        sampling_rate: Application sampling rate used in every scenario.
        solver_options: Extra options forwarded to the game solver.
    """
    records: List[ScalabilityRecord] = []
    for depth, density in sizes:
        scenario = Scenario(
            topology=RingTopology(depth=int(depth), density=int(density)),
            sampling_rate=sampling_rate,
        )
        model = protocol_class(scenario)
        game = EnergyDelayGame(model, requirements, **solver_options)
        started = time.perf_counter()
        solution = game.solve()
        elapsed = time.perf_counter() - started
        records.append(
            ScalabilityRecord(
                depth=int(depth),
                density=int(density),
                node_count=scenario.topology.total_nodes(),
                solve_seconds=elapsed,
                energy_star=solution.energy_star,
                delay_star=solution.delay_star,
            )
        )
    return records
