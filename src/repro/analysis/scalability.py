"""Scalability study.

The paper claims the framework is "scalable with the increase in the number
of nodes, as the players represent the optimization metrics instead of the
nodes".  Concretely: the game always has two players and the optimization
variables are the handful of MAC parameters, so the solve cost grows only
through the (cheap) evaluation of the closed-form traffic expressions, not
with the node count.  This module measures exactly that: wall-clock solve
time and solution values as the topology depth/density (hence node count)
grow.

The solves route through the :mod:`repro.runtime` batch runner; each task's
solve time is measured inside the worker, so the study can be fanned out
across processes without distorting the per-solve timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Type

from repro.core.requirements import ApplicationRequirements
from repro.network.topology import RingTopology
from repro.protocols.base import DutyCycledMACModel
from repro.runtime import BatchRunner, SolveTask
from repro.scenario import Scenario


@dataclass(frozen=True)
class ScalabilityRecord:
    """One point of the scalability study.

    Attributes:
        depth: Ring count ``D`` of the scenario.
        density: Neighbourhood size ``C`` of the scenario.
        node_count: Total number of nodes ``C * D^2``.
        solve_seconds: Wall-clock time to solve the complete game.
        energy_star: Agreed energy at the Nash bargaining point.
        delay_star: Agreed delay at the Nash bargaining point.
    """

    depth: int
    density: int
    node_count: float
    solve_seconds: float
    energy_star: float
    delay_star: float


def scalability_study(
    protocol_class: Type[DutyCycledMACModel],
    sizes: Iterable[Tuple[int, int]],
    requirements: ApplicationRequirements,
    sampling_rate: float = 1.0 / 3600.0,
    runner: Optional[BatchRunner] = None,
    **solver_options: object,
) -> List[ScalabilityRecord]:
    """Solve the game across a range of network sizes and time each solve.

    Args:
        protocol_class: Protocol model class to instantiate per size.
        sizes: Iterable of ``(depth, density)`` pairs.
        requirements: Application requirements applied to every size.
        sampling_rate: Application sampling rate used in every scenario.
        runner: Batch runner the solves are dispatched through.  Defaults to
            an uncached serial runner — caching would answer repeated sizes
            in zero time and falsify the timing study.
        solver_options: Extra options forwarded to the game solver.
    """
    runner = runner if runner is not None else BatchRunner(cache=None)
    sizes = [(int(depth), int(density)) for depth, density in sizes]
    tasks: List[SolveTask] = []
    scenarios: List[Scenario] = []
    for depth, density in sizes:
        scenario = Scenario(
            topology=RingTopology(depth=depth, density=density),
            sampling_rate=sampling_rate,
        )
        scenarios.append(scenario)
        tasks.append(
            SolveTask(
                model=protocol_class(scenario),
                requirements=requirements,
                solver_options=dict(solver_options),
                label=protocol_class.name,
                tag=(depth, density),
            )
        )
    records: List[ScalabilityRecord] = []
    for (depth, density), scenario, outcome in zip(sizes, scenarios, runner.run(tasks)):
        if not outcome.ok:
            raise outcome.error
        records.append(
            ScalabilityRecord(
                depth=depth,
                density=density,
                node_count=scenario.topology.total_nodes(),
                solve_seconds=outcome.solve_seconds,
                energy_star=outcome.solution.energy_star,
                delay_star=outcome.solution.delay_star,
            )
        )
    return records
