"""Analysis utilities: sweeps, validation, scalability and reporting.

* :mod:`repro.analysis.sweep` — requirement sweeps over one or many
  protocols (the machinery behind the figure reproductions).
* :mod:`repro.analysis.validation` — analytical-model vs simulation
  comparison.
* :mod:`repro.analysis.scalability` — solve-time and solution behaviour as
  the network grows (the paper's scalability claim).
* :mod:`repro.analysis.reporting` — plain-text tables and CSV writers used
  by the examples, the CLI and the benches.
"""

from repro.analysis.sweep import (
    SweepResult,
    sweep_delay_bound,
    sweep_energy_budget,
    sweep_grid,
)
from repro.analysis.validation import (
    ValidationReport,
    validate_protocol,
    validate_protocols,
)
from repro.analysis.scalability import ScalabilityRecord, scalability_study
from repro.analysis.reporting import format_table, solutions_to_rows, write_csv

__all__ = [
    "SweepResult",
    "sweep_delay_bound",
    "sweep_energy_budget",
    "sweep_grid",
    "ValidationReport",
    "validate_protocol",
    "validate_protocols",
    "ScalabilityRecord",
    "scalability_study",
    "format_table",
    "solutions_to_rows",
    "write_csv",
]
