"""Plain-text and CSV reporting helpers.

The library has no plotting dependency; the figure reproductions are emitted
as aligned text tables (the same rows/series the paper plots) and optional
CSV files, which keeps the benches runnable in any environment.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.results import GameSolution
from repro.exceptions import ConfigurationError

Row = Mapping[str, object]


def solutions_to_rows(
    solutions: Iterable[Optional[GameSolution]],
    swept_name: str,
    swept_values: Iterable[float],
) -> List[Dict[str, object]]:
    """Convert game solutions of a sweep into flat, printable rows.

    Tolerant of heterogeneous input: a ``None`` entry (an infeasible sweep
    position) yields a row with the swept value and blank metrics instead
    of raising, so mixed feasible/infeasible series stay printable.
    """
    rows: List[Dict[str, object]] = []
    for value, solution in zip(swept_values, solutions):
        if solution is None:
            rows.append(
                {
                    "protocol": "",
                    swept_name: value,
                    "E_best[J/s]": "",
                    "L_worst[ms]": "",
                    "E_worst[J/s]": "",
                    "L_best[ms]": "",
                    "E_star[J/s]": "",
                    "L_star[ms]": "",
                    "fairness": "",
                }
            )
            continue
        rows.append(
            {
                "protocol": solution.protocol,
                swept_name: value,
                "E_best[J/s]": solution.energy_best,
                "L_worst[ms]": solution.delay_worst * 1000.0,
                "E_worst[J/s]": solution.energy_worst,
                "L_best[ms]": solution.delay_best * 1000.0,
                "E_star[J/s]": solution.energy_star,
                "L_star[ms]": solution.delay_star * 1000.0,
                "fairness": solution.bargaining.fairness_residual,
            }
        )
    return rows


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def _union_columns(rows: Sequence[Row]) -> List[str]:
    """All row keys, in first-appearance order."""
    columns: Dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key, None)
    return list(columns)


def format_table(rows: Sequence[Row], precision: int = 5) -> str:
    """Render rows as an aligned plain-text table.

    Rows may carry heterogeneous keys (mixed-workload result sets do): the
    columns are the union of all keys in first-appearance order, and a row
    that lacks a column is blank-filled.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = _union_columns(rows)
    rendered = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(columns[i]), max(len(line[i]) for line in rendered)) for i in range(len(columns))
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    ]
    return "\n".join([header, separator, *body])


def write_csv(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Write rows to a CSV file and return the path."""
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot write an empty CSV")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = _union_columns(rows)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return path
