"""Analytical-model vs simulation validation (single-configuration spot check).

The brief announcement justifies its framework with closed-form models; this
module quantifies how well those models agree with the packet-level
simulator on the same configuration, which is the reproduction's substitute
for the missing experimental evaluation.

This is the one-seed, one-configuration check behind
``repro-mac-game validate``.  For replicated, statistically quantified
campaigns over the whole scenario suite — Welford aggregates, Student-t
confidence intervals, per-metric tolerance gates and a versioned artifact —
see :mod:`repro.validation` (``repro-mac-game validate-campaign``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.protocols.base import DutyCycledMACModel, ParameterVector
from repro.runtime.executor import ExecutorPolicy, SerialExecutor
from repro.simulation.runner import SimulationConfig, SimulationResult, simulate_protocol


@dataclass(frozen=True)
class ValidationReport:
    """Comparison of analytical predictions against simulation measurements.

    Attributes:
        protocol: Protocol name.
        parameters: Parameter vector the comparison was run at.
        analytical_energy: Predicted ring-1 per-node power (J/s).
        simulated_energy: Measured mean ring-1 per-node power (J/s).
        analytical_delay: Predicted end-to-end delay from ring ``D`` (s).
        simulated_delay: Measured mean end-to-end delay from ring ``D`` (s).
        delivery_ratio: Fraction of generated packets delivered.
    """

    protocol: str
    parameters: Mapping[str, float]
    analytical_energy: float
    simulated_energy: float
    analytical_delay: float
    simulated_delay: float
    delivery_ratio: float

    @property
    def energy_error(self) -> float:
        """Relative error of the energy prediction (simulation as reference)."""
        if self.simulated_energy == 0:
            raise ValidationError("simulated energy is zero; cannot compute a relative error")
        return abs(self.analytical_energy - self.simulated_energy) / self.simulated_energy

    @property
    def delay_error(self) -> float:
        """Relative error of the delay prediction (simulation as reference)."""
        if self.simulated_delay == 0:
            raise ValidationError("simulated delay is zero; cannot compute a relative error")
        return abs(self.analytical_delay - self.simulated_delay) / self.simulated_delay

    def within(self, energy_tolerance: float, delay_tolerance: float) -> bool:
        """Whether both relative errors are within the given tolerances."""
        return self.energy_error <= energy_tolerance and self.delay_error <= delay_tolerance

    def as_dict(self) -> Mapping[str, object]:
        """Flat summary used by reports and benches."""
        return {
            "protocol": self.protocol,
            "parameters": dict(self.parameters),
            "analytical_energy_j_per_s": self.analytical_energy,
            "simulated_energy_j_per_s": self.simulated_energy,
            "energy_error": self.energy_error,
            "analytical_delay_s": self.analytical_delay,
            "simulated_delay_s": self.simulated_delay,
            "delay_error": self.delay_error,
            "delivery_ratio": self.delivery_ratio,
        }


def validate_protocol(
    model: DutyCycledMACModel,
    params: ParameterVector,
    config: Optional[SimulationConfig] = None,
) -> ValidationReport:
    """Simulate one configuration and compare it against the analytical model.

    The comparison uses the mean ring-1 node power (the analytical bottleneck
    quantity) and the mean end-to-end delay of packets generated in the
    outermost ring (the analytical ``L``).

    Args:
        model: Analytical protocol model (defines scenario and timing).
        params: Parameter vector to validate at (mapping or array).
        config: Simulation configuration; defaults to a 2000-second run.

    Returns:
        A :class:`ValidationReport` comparing prediction and measurement.

    Raises:
        SimulationError: if the protocol has no simulated behaviour or the
            run delivers no packet (use :mod:`repro.validation` campaigns to
            record zero delivery as data instead).
    """
    simulation: SimulationResult = simulate_protocol(model, params, config)
    params_dict = model.coerce(params)
    return ValidationReport(
        protocol=model.name,
        parameters=params_dict,
        analytical_energy=model.node_energy(params_dict, model.scenario.topology.bottleneck_ring),
        simulated_energy=simulation.bottleneck_ring_energy,
        analytical_delay=model.system_latency(params_dict),
        simulated_delay=simulation.max_ring_delay(),
        delivery_ratio=simulation.delivery_ratio,
    )


#: One batched validation job: the model and the parameter vector to run at.
ValidationJob = Tuple[DutyCycledMACModel, ParameterVector]


def _validate_payload(payload: Tuple[ValidationJob, Optional[SimulationConfig]]) -> ValidationReport:
    """Module-level worker so process-pool executors can import it."""
    (model, params), config = payload
    return validate_protocol(model, params, config)


def validate_protocols(
    jobs: Sequence[ValidationJob],
    config: Optional[SimulationConfig] = None,
    executor: Optional[ExecutorPolicy] = None,
) -> List[ValidationReport]:
    """Validate several (model, parameters) configurations as one batch.

    Each job runs an independent packet-level simulation, which dominates
    the cost; fanning the batch out over a process pool
    (``executor=ProcessExecutor(4)``) cuts the wall-clock time while the
    submission-ordered reassembly keeps the report list deterministic.
    """
    executor = executor if executor is not None else SerialExecutor()
    payloads = [(job, config) for job in jobs]
    return executor.map_ordered(_validate_payload, payloads)
