"""Generic two-player cooperative bargaining machinery.

The paper uses the Nash Bargaining Solution with the performance metrics as
players.  This subpackage provides the game-theoretic substrate in a form
that is independent of MAC protocols, so it can be tested against textbook
examples and reused for ablations:

* :mod:`repro.gametheory.game` — :class:`BargainingGame`: a feasible set of
  utility payoffs plus a disagreement point.
* :mod:`repro.gametheory.nash` — the Nash bargaining solution (maximize the
  product of gains over the disagreement point).
* :mod:`repro.gametheory.kalai_smorodinsky` — the Kalai–Smorodinsky solution
  (equalize relative gains toward the ideal point).
* :mod:`repro.gametheory.egalitarian` — the egalitarian solution (equalize
  absolute gains).
* :mod:`repro.gametheory.utilitarian` — the utilitarian solution (maximize
  the sum of gains).
* :mod:`repro.gametheory.axioms` — numerical checks of the four Nash axioms
  (Pareto optimality, symmetry, scale invariance, independence of irrelevant
  alternatives).
"""

from repro.gametheory.game import BargainingGame, BargainingPoint
from repro.gametheory.nash import nash_bargaining_solution
from repro.gametheory.kalai_smorodinsky import kalai_smorodinsky_solution
from repro.gametheory.egalitarian import egalitarian_solution
from repro.gametheory.utilitarian import utilitarian_solution
from repro.gametheory.axioms import (
    check_pareto_optimality,
    check_symmetry,
    check_scale_invariance,
    check_independence_of_irrelevant_alternatives,
    check_all_axioms,
)

__all__ = [
    "BargainingGame",
    "BargainingPoint",
    "nash_bargaining_solution",
    "kalai_smorodinsky_solution",
    "egalitarian_solution",
    "utilitarian_solution",
    "check_pareto_optimality",
    "check_symmetry",
    "check_scale_invariance",
    "check_independence_of_irrelevant_alternatives",
    "check_all_axioms",
]
