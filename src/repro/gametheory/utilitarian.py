"""Utilitarian bargaining solution.

The utilitarian rule maximizes the *sum* of the players' gains over the
disagreement point.  It ignores fairness entirely (one player may capture
the whole surplus), which makes it a useful contrast with the Nash and
Kalai–Smorodinsky rules in the bargaining-rule ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BargainingError
from repro.gametheory.game import BargainingGame, BargainingPoint


def utilitarian_solution(game: BargainingGame, tolerance: float = 1e-12) -> BargainingPoint:
    """Select the utilitarian (max total gain) outcome of a finite game.

    Ties on the total gain are broken by the larger minimum gain, which picks
    the more balanced of two equally efficient points.

    Args:
        game: The finite bargaining game to solve.
        tolerance: Slack used for individual-rationality and tie-breaking.

    Returns:
        The selected :class:`~repro.gametheory.game.BargainingPoint`; its
        ``objective`` is the maximized total gain.

    Raises:
        BargainingError: if no alternative weakly dominates the disagreement
            point.
    """
    if not game.has_rational_alternative(tolerance):
        raise BargainingError(
            "utilitarian solution is undefined: no alternative dominates the disagreement point"
        )
    gains = game.gains()
    rational = game.individually_rational_indices(tolerance)

    best_index = -1
    best_total = -np.inf
    best_min_gain = -np.inf
    for index in rational:
        total = float(np.sum(gains[index]))
        min_gain = float(np.min(gains[index]))
        if total > best_total + tolerance or (
            abs(total - best_total) <= tolerance and min_gain > best_min_gain
        ):
            best_index = int(index)
            best_total = total
            best_min_gain = min_gain
    if best_index < 0:
        raise BargainingError("failed to select a utilitarian outcome")
    payoff = game.payoffs[best_index]
    gain = gains[best_index]
    return BargainingPoint(
        index=best_index,
        payoff=(float(payoff[0]), float(payoff[1])),
        gains=(float(gain[0]), float(gain[1])),
        objective=best_total,
    )
