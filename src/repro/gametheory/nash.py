"""Nash bargaining solution over a finite feasible sample.

The Nash Bargaining Solution selects the feasible, individually rational
payoff that maximizes the product of the players' gains over the
disagreement point, ``(u1 - v1)(u2 - v2)``.  On a finite sample this is a
simple argmax; the continuous version used by the core framework (problem
(P4) of the paper) lives in :mod:`repro.core.bargaining` and is cross-checked
against this one in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BargainingError
from repro.gametheory.game import BargainingGame, BargainingPoint


def nash_product(gains: np.ndarray) -> np.ndarray:
    """Nash product of an ``(n, 2)`` array of gains (clipped at zero).

    Gains below zero are clipped to zero so that individually irrational
    alternatives can never win the argmax: their product is zero, and ties
    at zero are broken in favour of rational alternatives by the caller.

    Args:
        gains: ``(n, 2)`` array of per-alternative gains over the
            disagreement point.

    Returns:
        ``(n,)`` array with the product of the clipped gains per alternative.
    """
    clipped = np.clip(gains, 0.0, None)
    return clipped[:, 0] * clipped[:, 1]


def nash_bargaining_solution(game: BargainingGame, tolerance: float = 1e-12) -> BargainingPoint:
    """Select the Nash bargaining outcome of a finite game.

    Args:
        game: The finite bargaining game (payoff sample + disagreement
            point) to solve.
        tolerance: Slack used for individual-rationality and for deciding
            ties on the Nash product.

    Returns:
        The selected :class:`~repro.gametheory.game.BargainingPoint`; its
        ``objective`` is the winning Nash product.

    Raises:
        BargainingError: if no alternative weakly dominates the disagreement
            point (the game has no individually rational outcome).
    """
    if not game.has_rational_alternative(tolerance):
        raise BargainingError(
            "Nash bargaining is undefined: no alternative dominates the disagreement point"
        )
    gains = game.gains()
    products = nash_product(gains)
    rational = game.individually_rational_indices(tolerance)

    # Among individually rational alternatives pick the largest product; break
    # ties by the largest minimum gain, then by the largest total gain (both
    # deterministic, symmetric rules).  The total-gain tie-break matters when
    # every product ties at zero (one player cannot gain at all): without it
    # the argmax could land on a Pareto-dominated point such as (0, 0) when
    # (0, 1) is available.
    best_index = -1
    best_product = -np.inf
    best_min_gain = -np.inf
    best_total_gain = -np.inf
    for index in rational:
        product = float(products[index])
        min_gain = float(np.min(gains[index]))
        total_gain = float(np.sum(gains[index]))
        if product > best_product + tolerance:
            better = True
        elif abs(product - best_product) <= tolerance and min_gain > best_min_gain:
            better = True
        elif (
            abs(product - best_product) <= tolerance
            and min_gain == best_min_gain
            and total_gain > best_total_gain
        ):
            better = True
        else:
            better = False
        if better:
            best_index = int(index)
            best_product = product
            best_min_gain = min_gain
            best_total_gain = total_gain
    if best_index < 0:
        raise BargainingError("failed to select a Nash bargaining outcome")
    payoff = game.payoffs[best_index]
    gain = gains[best_index]
    return BargainingPoint(
        index=best_index,
        payoff=(float(payoff[0]), float(payoff[1])),
        gains=(float(gain[0]), float(gain[1])),
        objective=best_product,
    )
