"""Numerical checks of the Nash bargaining axioms.

The paper invokes the four classical axioms — Pareto optimality, symmetry,
scale independence, and independence of irrelevant alternatives — to justify
the uniqueness of the Nash Bargaining Solution.  For finite games these can
be checked mechanically; the checks are used in the test-suite and are
exposed publicly so users applying the framework to new protocols can verify
that the discretized game they build still behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.exceptions import BargainingError
from repro.gametheory.game import BargainingGame, BargainingPoint
from repro.gametheory.nash import nash_bargaining_solution

#: A bargaining rule maps a game to a selected point.
BargainingRule = Callable[[BargainingGame], BargainingPoint]


@dataclass(frozen=True)
class AxiomCheck:
    """Result of one axiom check.

    Attributes:
        name: Axiom identifier.
        satisfied: Whether the axiom held on this game.
        detail: Human-readable explanation of what was compared.
    """

    name: str
    satisfied: bool
    detail: str


def check_pareto_optimality(
    game: BargainingGame,
    rule: BargainingRule = nash_bargaining_solution,
    tolerance: float = 1e-9,
) -> AxiomCheck:
    """The selected point must not be dominated by any feasible alternative.

    Args:
        game: The finite bargaining game to check on.
        rule: The bargaining rule under test (default: the Nash solution).
        tolerance: Domination slack.

    Returns:
        An :class:`AxiomCheck` named ``"pareto_optimality"``.
    """
    point = rule(game)
    efficient = game.is_pareto_efficient(point.index, tolerance)
    return AxiomCheck(
        name="pareto_optimality",
        satisfied=efficient,
        detail=f"selected index {point.index} payoff {point.payoff}",
    )


def check_symmetry(
    game: BargainingGame,
    rule: BargainingRule = nash_bargaining_solution,
    tolerance: float = 1e-9,
) -> AxiomCheck:
    """Swapping the players must swap the selected payoffs.

    Args:
        game: The finite bargaining game to check on.
        rule: The bargaining rule under test (default: the Nash solution).
        tolerance: Relative comparison slack.

    Returns:
        An :class:`AxiomCheck` named ``"symmetry"``.
    """
    original = rule(game)
    swapped = rule(game.swapped())
    expected = (original.payoff[1], original.payoff[0])
    satisfied = (
        abs(swapped.payoff[0] - expected[0]) <= tolerance * max(1.0, abs(expected[0]))
        and abs(swapped.payoff[1] - expected[1]) <= tolerance * max(1.0, abs(expected[1]))
    )
    return AxiomCheck(
        name="symmetry",
        satisfied=satisfied,
        detail=f"original {original.payoff}, swapped {swapped.payoff}",
    )


def check_scale_invariance(
    game: BargainingGame,
    rule: BargainingRule = nash_bargaining_solution,
    scale: Sequence[float] = (2.5, 0.4),
    shift: Sequence[float] = (1.0, -3.0),
    tolerance: float = 1e-9,
) -> AxiomCheck:
    """A positive affine rescaling of utilities must map the solution accordingly.

    Args:
        game: The finite bargaining game to check on.
        rule: The bargaining rule under test (default: the Nash solution).
        scale: Per-player positive scale factors of the affine map.
        shift: Per-player shifts of the affine map.
        tolerance: Relative comparison slack.

    Returns:
        An :class:`AxiomCheck` named ``"scale_invariance"``.
    """
    original = rule(game)
    transformed = rule(game.rescaled(scale, shift))
    scale_array = np.asarray(scale, dtype=float)
    shift_array = np.asarray(shift, dtype=float)
    expected = np.asarray(original.payoff) * scale_array + shift_array
    actual = np.asarray(transformed.payoff)
    satisfied = bool(
        np.all(np.abs(actual - expected) <= tolerance * np.maximum(1.0, np.abs(expected)))
    )
    return AxiomCheck(
        name="scale_invariance",
        satisfied=satisfied,
        detail=f"expected {expected.tolist()}, actual {actual.tolist()}",
    )


def check_independence_of_irrelevant_alternatives(
    game: BargainingGame,
    rule: BargainingRule = nash_bargaining_solution,
    keep_fraction: float = 0.5,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> AxiomCheck:
    """Removing unchosen alternatives must not change the selected payoff.

    A random subset of the alternatives (always containing the originally
    selected one) is kept; the rule must select the same payoff on the
    restricted game.

    Args:
        game: The finite bargaining game to check on.
        rule: The bargaining rule under test (default: the Nash solution).
        keep_fraction: Fraction of alternatives kept in the restricted game.
        seed: Seed of the random subset.
        tolerance: Relative comparison slack.

    Returns:
        An :class:`AxiomCheck` named
        ``"independence_of_irrelevant_alternatives"``.

    Raises:
        BargainingError: if ``keep_fraction`` is outside ``(0, 1]``.
    """
    if not (0.0 < keep_fraction <= 1.0):
        raise BargainingError(f"keep_fraction must be in (0, 1], got {keep_fraction!r}")
    original = rule(game)
    rng = np.random.default_rng(seed)
    keep_mask = rng.uniform(0.0, 1.0, size=game.size) < keep_fraction
    keep_mask[original.index] = True
    kept_indices = np.flatnonzero(keep_mask)
    restricted = game.restricted_to(kept_indices)
    reduced = rule(restricted)
    satisfied = (
        abs(reduced.payoff[0] - original.payoff[0])
        <= tolerance * max(1.0, abs(original.payoff[0]))
        and abs(reduced.payoff[1] - original.payoff[1])
        <= tolerance * max(1.0, abs(original.payoff[1]))
    )
    return AxiomCheck(
        name="independence_of_irrelevant_alternatives",
        satisfied=satisfied,
        detail=(
            f"kept {kept_indices.size}/{game.size} alternatives; "
            f"original {original.payoff}, restricted {reduced.payoff}"
        ),
    )


def check_all_axioms(
    game: BargainingGame,
    rule: BargainingRule = nash_bargaining_solution,
    tolerance: float = 1e-9,
) -> Dict[str, AxiomCheck]:
    """Run all four axiom checks on one game.

    Args:
        game: The finite bargaining game to check on.
        rule: The bargaining rule under test (default: the Nash solution).
        tolerance: Comparison slack shared by all four checks.

    Returns:
        The four :class:`AxiomCheck` results keyed by axiom name.
    """
    checks = [
        check_pareto_optimality(game, rule, tolerance),
        check_symmetry(game, rule, tolerance),
        check_scale_invariance(game, rule, tolerance=tolerance),
        check_independence_of_irrelevant_alternatives(game, rule, tolerance=tolerance),
    ]
    return {check.name: check for check in checks}
