"""Two-player bargaining games over finite (sampled) feasible sets.

A bargaining game is a pair ``(S, v)``: a feasible set ``S`` of utility
payoffs and a disagreement (threat) point ``v``.  The energy-delay game of
the paper has a continuous feasible set (the image of the MAC parameter box
under the two cost functions); for the generic machinery here the set is
represented by a finite sample of payoff vectors, which is how the ablation
benches and the cross-checks of the analytic solver use it.

Costs vs utilities
------------------
The paper's metrics are *costs* (smaller is better) while bargaining theory
is written for *utilities* (larger is better).  :meth:`BargainingGame.from_costs`
performs the standard sign flip and keeps track of it, so callers can move
back and forth without sprinkling minus signs around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import BargainingError


@dataclass(frozen=True)
class BargainingPoint:
    """One selected outcome of a bargaining game.

    Attributes:
        index: Index of the selected payoff in the game's feasible sample.
        payoff: The selected utility payoff ``(u1, u2)``.
        gains: Gains over the disagreement point ``(u1 - v1, u2 - v2)``.
        objective: Value of the selection criterion (e.g. the Nash product).
    """

    index: int
    payoff: Tuple[float, float]
    gains: Tuple[float, float]
    objective: float


class BargainingGame:
    """A two-player bargaining game over a finite feasible set.

    Args:
        payoffs: Array-like of shape ``(n, 2)``; row ``i`` is the utility
            payoff of alternative ``i``.
        disagreement: The disagreement (threat) point ``(v1, v2)``.
        player_names: Names used in reports, defaults to ``("player1",
            "player2")``.

    Raises:
        BargainingError: if the feasible set is empty or contains non-finite
            payoffs, or the disagreement point is malformed.  (Whether any
            alternative dominates the disagreement point is *not* checked
            here — the solution rules check it, so a game with no
            individually rational outcome can still be constructed and
            inspected.)
    """

    def __init__(
        self,
        payoffs: Iterable[Sequence[float]],
        disagreement: Sequence[float],
        player_names: Tuple[str, str] = ("player1", "player2"),
    ) -> None:
        payoff_array = np.asarray(list(payoffs), dtype=float)
        if payoff_array.ndim != 2 or payoff_array.shape[1] != 2:
            raise BargainingError(
                f"payoffs must have shape (n, 2), got {payoff_array.shape}"
            )
        if payoff_array.shape[0] == 0:
            raise BargainingError("the feasible set is empty")
        if not np.all(np.isfinite(payoff_array)):
            raise BargainingError("payoffs contain non-finite values")
        disagreement_array = np.asarray(disagreement, dtype=float).ravel()
        if disagreement_array.shape != (2,) or not np.all(np.isfinite(disagreement_array)):
            raise BargainingError(
                f"disagreement point must be a finite pair, got {disagreement!r}"
            )
        if len(player_names) != 2:
            raise BargainingError("exactly two player names are required")
        self._payoffs = payoff_array
        self._disagreement = disagreement_array
        self._player_names = (str(player_names[0]), str(player_names[1]))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_costs(
        cls,
        costs: Iterable[Sequence[float]],
        disagreement_costs: Sequence[float],
        player_names: Tuple[str, str] = ("player1", "player2"),
    ) -> "BargainingGame":
        """Build a game from *cost* samples (smaller is better).

        Utilities are the negated costs, so "gain over the disagreement
        point" becomes "cost reduction below the disagreement cost", which is
        exactly the ``(Eworst - E)(Lworst - L)`` product in the paper's (P3).
        """
        cost_array = np.asarray(list(costs), dtype=float)
        disagreement_array = np.asarray(disagreement_costs, dtype=float)
        return cls(-cost_array, -disagreement_array, player_names=player_names)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def payoffs(self) -> np.ndarray:
        """The feasible utility payoffs, shape ``(n, 2)`` (read-only copy)."""
        return self._payoffs.copy()

    @property
    def disagreement(self) -> np.ndarray:
        """The disagreement point ``(v1, v2)`` (read-only copy)."""
        return self._disagreement.copy()

    @property
    def player_names(self) -> Tuple[str, str]:
        """The two player names."""
        return self._player_names

    @property
    def size(self) -> int:
        """Number of alternatives in the feasible sample."""
        return int(self._payoffs.shape[0])

    def gains(self) -> np.ndarray:
        """Per-alternative gains over the disagreement point, shape ``(n, 2)``."""
        return self._payoffs - self._disagreement

    def individually_rational_indices(self, tolerance: float = 1e-12) -> np.ndarray:
        """Indices of alternatives that weakly dominate the disagreement point."""
        gains = self.gains()
        mask = np.all(gains >= -tolerance, axis=1)
        return np.flatnonzero(mask)

    def has_rational_alternative(self, tolerance: float = 1e-12) -> bool:
        """Whether at least one alternative weakly dominates the disagreement point."""
        return self.individually_rational_indices(tolerance).size > 0

    def ideal_point(self) -> np.ndarray:
        """Per-player maximum achievable payoff among individually rational points."""
        indices = self.individually_rational_indices()
        if indices.size == 0:
            raise BargainingError("no individually rational alternative exists")
        return self._payoffs[indices].max(axis=0)

    # ------------------------------------------------------------------ #
    # Pareto structure
    # ------------------------------------------------------------------ #

    def pareto_indices(self) -> np.ndarray:
        """Indices of Pareto-efficient alternatives (maximization sense)."""
        payoffs = self._payoffs
        count = payoffs.shape[0]
        efficient = np.ones(count, dtype=bool)
        for i in range(count):
            if not efficient[i]:
                continue
            dominates_i = np.all(payoffs >= payoffs[i], axis=1) & np.any(
                payoffs > payoffs[i], axis=1
            )
            if np.any(dominates_i):
                efficient[i] = False
        return np.flatnonzero(efficient)

    def is_pareto_efficient(self, index: int, tolerance: float = 1e-12) -> bool:
        """Whether alternative ``index`` is Pareto-efficient within the sample."""
        if not (0 <= index < self.size):
            raise BargainingError(f"index {index} out of range [0, {self.size})")
        payoffs = self._payoffs
        target = payoffs[index]
        dominates = np.all(payoffs >= target - tolerance, axis=1) & np.any(
            payoffs > target + tolerance, axis=1
        )
        return not bool(np.any(dominates))

    # ------------------------------------------------------------------ #
    # Transformations (used by the axiom checks)
    # ------------------------------------------------------------------ #

    def swapped(self) -> "BargainingGame":
        """Return the game with the two players' roles exchanged."""
        return BargainingGame(
            self._payoffs[:, ::-1],
            self._disagreement[::-1],
            player_names=(self._player_names[1], self._player_names[0]),
        )

    def rescaled(self, scale: Sequence[float], shift: Sequence[float]) -> "BargainingGame":
        """Apply a positive affine transformation ``u -> scale * u + shift``."""
        scale_array = np.asarray(scale, dtype=float).ravel()
        shift_array = np.asarray(shift, dtype=float).ravel()
        if scale_array.shape != (2,) or shift_array.shape != (2,):
            raise BargainingError("scale and shift must be pairs")
        if np.any(scale_array <= 0):
            raise BargainingError("scale factors must be strictly positive")
        return BargainingGame(
            self._payoffs * scale_array + shift_array,
            self._disagreement * scale_array + shift_array,
            player_names=self._player_names,
        )

    def restricted_to(self, indices: Sequence[int]) -> "BargainingGame":
        """Return the game restricted to a subset of alternatives."""
        index_array = np.asarray(indices, dtype=int).ravel()
        if index_array.size == 0:
            raise BargainingError("cannot restrict a game to an empty subset")
        if np.any(index_array < 0) or np.any(index_array >= self.size):
            raise BargainingError("restriction indices out of range")
        return BargainingGame(
            self._payoffs[index_array],
            self._disagreement,
            player_names=self._player_names,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BargainingGame(n={self.size}, disagreement={tuple(self._disagreement)}, "
            f"players={self._player_names})"
        )
