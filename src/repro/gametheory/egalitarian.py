"""Egalitarian bargaining solution.

The egalitarian rule maximizes the *minimum* absolute gain over the
disagreement point, i.e. it equalizes the players' gains in absolute terms
(and is therefore not scale-invariant).  Included as an ablation of the
paper's Nash rule.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BargainingError
from repro.gametheory.game import BargainingGame, BargainingPoint


def egalitarian_solution(game: BargainingGame, tolerance: float = 1e-12) -> BargainingPoint:
    """Select the egalitarian (max-min gain) outcome of a finite game.

    Ties on the minimum gain are broken by the larger total gain, which picks
    the Pareto-superior of two equally balanced points.

    Args:
        game: The finite bargaining game to solve.
        tolerance: Slack used for individual-rationality and tie-breaking.

    Returns:
        The selected :class:`~repro.gametheory.game.BargainingPoint`; its
        ``objective`` is the maximized minimum gain.

    Raises:
        BargainingError: if no alternative weakly dominates the disagreement
            point.
    """
    if not game.has_rational_alternative(tolerance):
        raise BargainingError(
            "egalitarian solution is undefined: no alternative dominates the disagreement point"
        )
    gains = game.gains()
    rational = game.individually_rational_indices(tolerance)

    best_index = -1
    best_min_gain = -np.inf
    best_total = -np.inf
    for index in rational:
        min_gain = float(np.min(gains[index]))
        total = float(np.sum(gains[index]))
        if min_gain > best_min_gain + tolerance or (
            abs(min_gain - best_min_gain) <= tolerance and total > best_total
        ):
            best_index = int(index)
            best_min_gain = min_gain
            best_total = total
    if best_index < 0:
        raise BargainingError("failed to select an egalitarian outcome")
    payoff = game.payoffs[best_index]
    gain = gains[best_index]
    return BargainingPoint(
        index=best_index,
        payoff=(float(payoff[0]), float(payoff[1])),
        gains=(float(gain[0]), float(gain[1])),
        objective=best_min_gain,
    )
