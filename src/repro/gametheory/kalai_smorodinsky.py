"""Kalai–Smorodinsky bargaining solution.

The Kalai–Smorodinsky solution replaces Nash's independence of irrelevant
alternatives with *individual monotonicity*: it selects the Pareto-efficient
point at which both players obtain the same fraction of their maximum
achievable gain (the "ideal" point).  It is included as an ablation of the
paper's choice of bargaining rule: on the energy-delay game it produces a
different, usually close, trade-off point.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BargainingError
from repro.gametheory.game import BargainingGame, BargainingPoint


def kalai_smorodinsky_solution(
    game: BargainingGame, tolerance: float = 1e-12
) -> BargainingPoint:
    """Select the Kalai–Smorodinsky outcome of a finite game.

    On a finite sample the exact equal-relative-gain ray may pass between
    sample points, so the selected alternative is the individually rational,
    Pareto-efficient point whose relative gains are closest to equal, with
    the larger minimum relative gain used as a tie-break.

    Args:
        game: The finite bargaining game to solve.
        tolerance: Slack used for individual-rationality, degenerate ideal
            gains and tie-breaking.

    Returns:
        The selected :class:`~repro.gametheory.game.BargainingPoint`; its
        ``objective`` is the minimum relative gain at the selection.

    Raises:
        BargainingError: if no alternative weakly dominates the disagreement
            point, or the ideal gains are degenerate (zero for a player).
    """
    if not game.has_rational_alternative(tolerance):
        raise BargainingError(
            "Kalai–Smorodinsky is undefined: no alternative dominates the disagreement point"
        )
    ideal = game.ideal_point()
    disagreement = game.disagreement
    ideal_gains = ideal - disagreement
    if np.any(ideal_gains <= tolerance):
        # One player cannot gain at all: the solution collapses onto the best
        # point for the other player among rational alternatives.
        rational = game.individually_rational_indices(tolerance)
        gains = game.gains()[rational]
        best_local = int(np.argmax(gains.sum(axis=1)))
        index = int(rational[best_local])
        payoff = game.payoffs[index]
        gain = game.gains()[index]
        return BargainingPoint(
            index=index,
            payoff=(float(payoff[0]), float(payoff[1])),
            gains=(float(gain[0]), float(gain[1])),
            objective=float(np.min(gain / np.maximum(ideal_gains, tolerance))),
        )

    rational = set(int(i) for i in game.individually_rational_indices(tolerance))
    pareto = [int(i) for i in game.pareto_indices() if int(i) in rational]
    candidates = pareto if pareto else sorted(rational)

    gains = game.gains()
    best_index = -1
    best_imbalance = np.inf
    best_level = -np.inf
    for index in candidates:
        relative = gains[index] / ideal_gains
        imbalance = float(abs(relative[0] - relative[1]))
        level = float(np.min(relative))
        if imbalance < best_imbalance - tolerance or (
            abs(imbalance - best_imbalance) <= tolerance and level > best_level
        ):
            best_index = index
            best_imbalance = imbalance
            best_level = level
    if best_index < 0:
        raise BargainingError("failed to select a Kalai–Smorodinsky outcome")
    payoff = game.payoffs[best_index]
    gain = gains[best_index]
    return BargainingPoint(
        index=best_index,
        payoff=(float(payoff[0]), float(payoff[1])),
        gains=(float(gain[0]), float(gain[1])),
        objective=best_level,
    )
