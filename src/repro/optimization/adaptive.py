"""Adaptive coarse-to-fine grid search, bit-identical to the exhaustive scan.

:func:`adaptive_grid_search` answers the same question as
:func:`repro.optimization.grid.grid_search` — the best point of the
full-factorial fine grid — while evaluating only a fraction of it.  The
trick is that every point it *does* evaluate is a point of the fine grid
(the coarse levels are a subset of the fine axis indices), and the batched
``.many`` twins are element-wise per row, so evaluating a subset of the
fine grid produces bit-identical numbers to evaluating the whole of it.
The final selection applies the exhaustive scan's exact semantics
(feasible-first, then signed objective, then least violation, first index
on ties) over the evaluated subset kept in ascending fine-index order, so
whenever the subset contains the exhaustive winner the returned
:class:`SolverResult` is *identical* — same point, same value, same
tie-break, same ``evaluations`` count (the nominal full-grid total, so
serialized artifacts cannot tell the methods apart).

Refinement strategy (the part that keeps the winner in the subset):

1. **Coarse stage** — evaluate a coarse tensor grid (``coarse_points``
   levels per axis, always including both ends of every axis).
2. **Cell selection** — a *cell* is the box between adjacent coarse levels.
   Keep (a) every cell touching one of the global top-``top_k`` points under
   the feasible ranking *and* under the least-violation ranking (the
   incumbent neighborhoods), and (b) every cell whose corners disagree on
   feasibility or on validity (the feasibility boundary) — a constraint can
   flip inside a coarse cell, so a cell is never pruned on the coarse
   feasibility verdict alone.  Everything else is pruned.
3. **Refinement** — incumbent cells are evaluated at full fine resolution
   outright (exactness inside a kept neighborhood is then unconditional);
   boundary cells are bisected, their new corners evaluated, and the
   selection re-run globally (so a boundary subcell that turns out to be
   competitive is promoted to an incumbent and fully evaluated).  After
   ``refine_rounds`` rounds every surviving cell is evaluated fully, so
   kept neighborhoods always reach the exhaustive grid's resolution.
4. **Fallback** — if no feasible point was found anywhere, the remaining
   grid is evaluated exhaustively before answering.  The infeasible branch
   (least-violation argmin) and the no-finite-point error are therefore
   *unconditionally* identical to the exhaustive path, and the methods can
   only ever disagree by missing a strictly feasible winner — which the
   differential harness (``tests/optimization/test_adaptive_differential``)
   sweeps for across the full scenario × protocol × requirement matrix.

The real work performed is reported in ``SolverResult.work`` (coarse /
refined evaluation counts and pruned cells), a volatile field excluded
from ``as_dict`` and from persisted store records.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.parameters import ParameterSpace
from repro.exceptions import ConfigurationError, SolverError
from repro.optimization.grid import (
    _NO_FINITE_POINT,
    Constraint,
    Objective,
    _batched_twin,
    grid_search,
)
from repro.optimization.result import SolverResult

__all__ = ["adaptive_grid_search"]

#: A cell: one inclusive ``(low, high)`` fine-index interval per axis.
_Cell = Tuple[Tuple[int, int], ...]

#: Cells with every axis width at or below this are evaluated outright
#: instead of bisected — at that size bisection no longer saves anything.
_LEAF_WIDTH = 3


def _validated_knob(name: str, value: object, minimum: int) -> int:
    """An adaptive-solver knob as a validated integer (>= ``minimum``)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"solver.{name} must be an integer >= {minimum}, got {value!r}"
        )
    if value < minimum:
        raise ConfigurationError(
            f"solver.{name} must be an integer >= {minimum}, got {value!r}"
        )
    return value


class _SubsetEvaluator:
    """Lazily evaluated fine grid: per-flat-index objective and margins.

    Stores the same quantities the vectorized exhaustive scan computes
    (``raw`` objective, running max ``violation``, validity), produced by
    the same operations in the same dtype, just restricted to the evaluated
    subset — which keeps the numbers bit-identical per point.
    """

    def __init__(self, axes, shape, objective_many, constraint_manys) -> None:
        self.axes = axes
        self.shape = shape
        self.total = int(np.prod(shape))
        self._objective_many = objective_many
        self._constraint_manys = constraint_manys
        self.raw = np.empty(self.total)
        self.violation = np.empty(self.total)
        self.valid = np.zeros(self.total, dtype=bool)
        self.evaluated = np.zeros(self.total, dtype=bool)

    def count(self) -> int:
        return int(self.evaluated.sum())

    def point(self, flat: int) -> np.ndarray:
        multi = np.unravel_index(flat, self.shape)
        return np.array(
            [self.axes[i][multi[i]] for i in range(len(self.axes))], dtype=float
        )

    def evaluate(self, flat: np.ndarray) -> None:
        """Evaluate the not-yet-evaluated subset of ``flat`` fine indices."""
        flat = np.unique(np.asarray(flat, dtype=np.intp).ravel())
        flat = flat[~self.evaluated[flat]]
        if flat.size == 0:
            return
        multi = np.unravel_index(flat, self.shape)
        points = np.stack(
            [self.axes[i][multi[i]] for i in range(len(self.axes))], axis=-1
        )
        count = points.shape[0]
        violation = np.zeros(count)
        margins_finite = np.ones(count, dtype=bool)
        for many in self._constraint_manys:
            margins = np.asarray(many(points), dtype=float).reshape(count)
            margins_finite &= np.isfinite(margins)
            violation = np.maximum(violation, -margins)
        raw = np.asarray(self._objective_many(points), dtype=float).reshape(count)
        self.raw[flat] = raw
        self.violation[flat] = violation
        self.valid[flat] = margins_finite & np.isfinite(raw)
        self.evaluated[flat] = True


def _tensor_flats(levels: Sequence[np.ndarray], shape) -> np.ndarray:
    """Flat fine indices of the tensor product of per-axis index levels."""
    mesh = np.meshgrid(*levels, indexing="ij")
    return np.ravel_multi_index([m.ravel() for m in mesh], shape)


def _cells_from_levels(levels: Sequence[np.ndarray]) -> List[_Cell]:
    """All cells between adjacent levels (degenerate axes keep one pair)."""
    intervals: List[List[Tuple[int, int]]] = []
    for axis_levels in levels:
        values = [int(v) for v in axis_levels]
        if len(values) == 1:
            intervals.append([(values[0], values[0])])
        else:
            intervals.append(list(zip(values[:-1], values[1:])))
    return list(itertools.product(*intervals))


def _unresolved(cell: _Cell) -> bool:
    """Whether the cell still has interior fine points to consider."""
    return any(high - low > 1 for low, high in cell)


def _corner_flats(cell: _Cell, shape) -> List[int]:
    """Flat fine indices of the (up to ``2**dim``) corners of a cell."""
    corner_axes = [sorted({low, high}) for low, high in cell]
    return [
        int(np.ravel_multi_index(corner, shape))
        for corner in itertools.product(*corner_axes)
    ]


def _top_points(
    evaluator: _SubsetEvaluator,
    sign: float,
    feasibility_tolerance: float,
    top_k: int,
) -> Set[int]:
    """Global top-``top_k`` evaluated points under both selection rankings.

    The feasible ranking mirrors the exhaustive feasible branch (smaller
    signed objective wins); the least-violation ranking mirrors the
    infeasible branch *and* guards the feasibility frontier from outside —
    the best feasible fine point usually hugs the boundary the coarse grid
    only sees as its least-violating samples.
    """
    index = np.flatnonzero(evaluator.evaluated)
    if index.size == 0:
        return set()
    valid = evaluator.valid[index]
    violation = evaluator.violation[index]
    feasible = valid & (violation <= feasibility_tolerance)
    keep: Set[int] = set()
    if bool(feasible.any()):
        signed = np.where(feasible, sign * evaluator.raw[index], np.inf)
        order = np.argsort(signed, kind="stable")
        keep.update(int(index[i]) for i in order[:top_k] if feasible[i])
    if bool(valid.any()):
        by_violation = np.where(valid, violation, np.inf)
        order = np.argsort(by_violation, kind="stable")
        keep.update(int(index[i]) for i in order[:top_k] if valid[i])
    return keep


def _keep_cell(
    cell: _Cell,
    evaluator: _SubsetEvaluator,
    keep_points: Set[int],
    feasibility_tolerance: float,
) -> Tuple[bool, bool]:
    """``(keep, is_incumbent)`` for one candidate cell.

    A cell is kept when it touches a top-ranked point (incumbent
    neighborhood) or when its corners disagree on feasibility or on
    validity (the constraint or a non-finite region flips inside it —
    never prune on the coarse feasibility verdict alone).
    """
    corners = _corner_flats(cell, evaluator.shape)
    if any(flat in keep_points for flat in corners):
        return True, True
    valid = evaluator.valid[corners]
    if bool(valid.any()) != bool(valid.all()):
        return True, False
    feasible = valid & (evaluator.violation[corners] <= feasibility_tolerance)
    if bool(feasible.any()) != bool(feasible.all()):
        return True, False
    return False, False


def _full_cell_flats(cell: _Cell, shape) -> np.ndarray:
    """Every fine index inside the cell's box (full resolution)."""
    levels = [np.arange(low, high + 1) for low, high in cell]
    return _tensor_flats(levels, shape)


def _bisect_cell(cell: _Cell) -> List[np.ndarray]:
    """Per-axis ``{low, mid, high}`` levels splitting the cell in half."""
    levels = []
    for low, high in cell:
        if high - low > 1:
            levels.append(np.unique(np.array([low, (low + high) // 2, high])))
        else:
            levels.append(np.unique(np.array([low, high])))
    return levels


def adaptive_grid_search(
    objective: Objective,
    space: ParameterSpace,
    constraints: Sequence[Constraint] = (),
    points_per_dimension: int = 200,
    maximize: bool = False,
    feasibility_tolerance: float = 1e-9,
    coarse_points: int = 11,
    refine_rounds: int = 3,
    top_k: int = 3,
) -> SolverResult:
    """Coarse-to-fine scan returning the exhaustive fine-grid answer.

    Args:
        objective: Scalar objective; must carry a batched ``.many`` twin
            (see :func:`repro.optimization.grid.batched`) along with every
            constraint for the adaptive path to engage — otherwise the call
            transparently falls back to the exhaustive scan (identical
            result, no savings).
        space: The admissible box.
        constraints: Margin functions (``>= 0`` means satisfied).
        points_per_dimension: Resolution of the *fine* grid the result is
            defined against — the same knob the exhaustive scan takes.
        maximize: Maximize instead of minimize.
        feasibility_tolerance: Slack allowed on constraint margins.
        coarse_points: Levels per axis of the initial coarse stage (>= 2).
        refine_rounds: Bisection rounds granted to boundary cells before
            they are evaluated outright (>= 1).
        top_k: Incumbent points whose neighborhoods are refined at full
            resolution, per ranking (>= 1).

    Returns:
        A :class:`SolverResult` field-for-field identical to the exhaustive
        scan's (including the nominal ``evaluations`` count), with the real
        work recorded in the volatile ``work`` mapping.

    Raises:
        ConfigurationError: on invalid knobs or an oversized fine grid.
        SolverError: if every fine-grid point evaluates non-finite (the
            exhaustive scan's error, raised after the full fallback sweep).
    """
    coarse_points = _validated_knob("coarse_points", coarse_points, 2)
    refine_rounds = _validated_knob("refine_rounds", refine_rounds, 1)
    top_k = _validated_knob("top_k", top_k, 1)

    objective_many = _batched_twin(objective)
    constraint_manys = [_batched_twin(constraint) for constraint in constraints]
    if objective_many is None or any(many is None for many in constraint_manys):
        # Without batched twins there is nothing to vectorize; the scalar
        # exhaustive loop is the bit-exact reference, so use it directly.
        return grid_search(
            objective,
            space,
            constraints,
            points_per_dimension=points_per_dimension,
            maximize=maximize,
            feasibility_tolerance=feasibility_tolerance,
        )

    # Mirror ParameterSpace.grid's validation so the methods reject the
    # same inputs with the same messages.
    if points_per_dimension < 1:
        raise ConfigurationError("points_per_dimension must be >= 1")
    nominal = points_per_dimension**space.dimension
    if nominal > 2_000_000:
        raise ConfigurationError(
            f"grid of {nominal} points is too large; reduce points_per_dimension"
        )

    sign = -1.0 if maximize else 1.0
    axes = [parameter.sample_grid(points_per_dimension) for parameter in space]
    shape = tuple(len(axis) for axis in axes)
    evaluator = _SubsetEvaluator(axes, shape, objective_many, constraint_manys)

    # --- coarse stage --------------------------------------------------- #
    coarse_levels = [
        np.unique(np.round(np.linspace(0, size - 1, min(coarse_points, size))).astype(int))
        for size in shape
    ]
    evaluator.evaluate(_tensor_flats(coarse_levels, shape))
    coarse_evaluations = evaluator.count()

    # --- refinement ----------------------------------------------------- #
    cells = [cell for cell in _cells_from_levels(coarse_levels) if _unresolved(cell)]
    cells_pruned = 0
    rounds = 0
    while cells:
        rounds += 1
        final_round = rounds >= refine_rounds
        keep_points = _top_points(evaluator, sign, feasibility_tolerance, top_k)
        next_cells: List[_Cell] = []
        for cell in cells:
            keep, is_incumbent = _keep_cell(
                cell, evaluator, keep_points, feasibility_tolerance
            )
            if not keep:
                cells_pruned += 1
                continue
            small = all(high - low <= _LEAF_WIDTH for low, high in cell)
            if is_incumbent or final_round or small:
                evaluator.evaluate(_full_cell_flats(cell, shape))
            else:
                sub_levels = _bisect_cell(cell)
                evaluator.evaluate(_tensor_flats(sub_levels, shape))
                next_cells.extend(
                    sub for sub in _cells_from_levels(sub_levels) if _unresolved(sub)
                )
        cells = next_cells
    refined_evaluations = evaluator.count() - coarse_evaluations

    # --- feasibility fallback ------------------------------------------- #
    # If the refined subset holds no feasible point, the exhaustive answer
    # (a feasible point we missed, the least-violating point of the *whole*
    # grid, or the no-finite-point error) needs global information: sweep
    # the rest.  This keeps infeasible-everywhere games and the branch
    # decision itself unconditionally identical to the exhaustive path.
    index = np.flatnonzero(evaluator.evaluated)
    any_feasible = bool(
        (evaluator.valid[index] & (evaluator.violation[index] <= feasibility_tolerance)).any()
    )
    if not any_feasible and not bool(evaluator.evaluated.all()):
        evaluator.evaluate(np.flatnonzero(~evaluator.evaluated))
        refined_evaluations = evaluator.count() - coarse_evaluations
        index = np.flatnonzero(evaluator.evaluated)

    # --- selection: the exhaustive scan's semantics over the subset ----- #
    valid = evaluator.valid[index]
    if not bool(valid.any()):
        raise SolverError(_NO_FINITE_POINT)
    violation = evaluator.violation[index]
    feasible_mask = valid & (violation <= feasibility_tolerance)
    if bool(feasible_mask.any()):
        signed = sign * evaluator.raw[index]
        best_local = int(np.argmin(np.where(feasible_mask, signed, np.inf)))
        feasible = True
    else:
        best_local = int(np.argmin(np.where(valid, violation, np.inf)))
        feasible = False
    best = int(index[best_local])

    work: Dict[str, int] = {
        "coarse_evaluations": int(coarse_evaluations),
        "refined_evaluations": int(refined_evaluations),
        "cells_pruned": int(cells_pruned),
    }
    return SolverResult(
        x=evaluator.point(best),
        value=float(evaluator.raw[best]),
        feasible=feasible,
        method="grid",
        evaluations=evaluator.total,
        constraint_violation=float(evaluator.violation[best]),
        message=f"{evaluator.total} grid points evaluated",
        work=work,
    )
