"""Common result record returned by every solver in :mod:`repro.optimization`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.exceptions import SolverError


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one constrained optimization run.

    Attributes:
        x: The best point found, in solver (array) order.
        value: Objective value at ``x`` (always in the *minimization* sense
            used internally; callers that maximize negate before/after).
        feasible: Whether ``x`` satisfies all constraints within tolerance.
        method: Name of the solver that produced the result.
        evaluations: Number of objective evaluations spent.  For the
            adaptive grid stage this is the *nominal* full-grid count the
            result is defined against, so serialized results stay identical
            across solver methods; the real work lives in ``work``.
        message: Free-form diagnostic from the solver.
        constraint_violation: Largest constraint violation at ``x`` (zero
            when feasible).
        work: Volatile work counters (e.g. ``coarse_evaluations``,
            ``refined_evaluations``, ``cells_pruned``) describing how the
            result was obtained.  Excluded from equality and from
            :meth:`as_dict`, exactly like the runtime's cache counters —
            two results differing only in ``work`` are the same result.
    """

    x: np.ndarray
    value: float
    feasible: bool
    method: str
    evaluations: int = 0
    message: str = ""
    constraint_violation: float = 0.0
    work: Optional[Mapping[str, int]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float).ravel())
        if not np.all(np.isfinite(self.x)):
            raise SolverError(f"solver produced a non-finite point: {self.x!r}")
        if not np.isfinite(self.value):
            raise SolverError(f"solver produced a non-finite objective value: {self.value!r}")

    def require_feasible(self) -> "SolverResult":
        """Return ``self`` if feasible, otherwise raise :class:`SolverError`."""
        if not self.feasible:
            raise SolverError(
                f"{self.method} returned an infeasible point "
                f"(violation {self.constraint_violation:.3g}): {self.message}"
            )
        return self

    def better_than(self, other: Optional["SolverResult"]) -> bool:
        """Whether this result should replace ``other`` as the incumbent.

        Feasibility dominates the objective value; among equally (in)feasible
        results the smaller objective (or the smaller violation) wins.
        """
        if other is None:
            return True
        if self.feasible != other.feasible:
            return self.feasible
        if self.feasible:
            return self.value < other.value
        return self.constraint_violation < other.constraint_violation

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view used by reports and benches."""
        return {
            "x": self.x.tolist(),
            "value": self.value,
            "feasible": self.feasible,
            "method": self.method,
            "evaluations": self.evaluations,
            "constraint_violation": self.constraint_violation,
            "message": self.message,
        }
