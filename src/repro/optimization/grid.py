"""Exhaustive grid search.

The MAC parameter spaces are one- or two-dimensional boxes, so a dense grid
is both affordable and an excellent robustness baseline: it cannot be fooled
by local minima or by a badly scaled constraint, which makes it the seed and
the cross-check for the gradient-based solver.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace
from repro.exceptions import SolverError
from repro.optimization.result import SolverResult

#: Signature of an objective: maps a solver-ordered array to a scalar.
Objective = Callable[[np.ndarray], float]
#: Signature of a constraint margin: ``>= 0`` means satisfied.
Constraint = Callable[[np.ndarray], float]


def _violation(constraints: Sequence[Constraint], point: np.ndarray) -> float:
    """Largest constraint violation at ``point`` (0 when all satisfied)."""
    worst = 0.0
    for constraint in constraints:
        margin = float(constraint(point))
        if not np.isfinite(margin):
            return float("inf")
        worst = max(worst, -margin)
    return worst


def grid_search(
    objective: Objective,
    space: ParameterSpace,
    constraints: Sequence[Constraint] = (),
    points_per_dimension: int = 200,
    maximize: bool = False,
    feasibility_tolerance: float = 1e-9,
) -> SolverResult:
    """Minimize (or maximize) an objective over a full-factorial grid.

    Args:
        objective: Scalar objective of a solver-ordered parameter array.
        space: The admissible box.
        constraints: Margin functions; a point is feasible when every margin
            is ``>= -feasibility_tolerance``.
        points_per_dimension: Grid resolution along each axis.
        maximize: Maximize instead of minimize.
        feasibility_tolerance: Slack allowed on constraint margins.

    Returns:
        The best *feasible* grid point if one exists; otherwise the point of
        least violation, flagged as infeasible.

    Raises:
        SolverError: if every grid point evaluates to a non-finite objective.
    """
    sign = -1.0 if maximize else 1.0
    points = space.grid(points_per_dimension)

    best: Optional[SolverResult] = None
    evaluations = 0
    for point in points:
        evaluations += 1
        violation = _violation(constraints, point)
        if not np.isfinite(violation):
            continue
        raw = float(objective(point))
        if not np.isfinite(raw):
            continue
        candidate = SolverResult(
            x=point,
            value=sign * raw,
            feasible=violation <= feasibility_tolerance,
            method="grid",
            evaluations=evaluations,
            constraint_violation=violation,
        )
        if candidate.better_than(best):
            best = candidate
    if best is None:
        raise SolverError(
            "grid search found no grid point with a finite objective value"
        )
    return SolverResult(
        x=best.x,
        value=sign * best.value if maximize else best.value,
        feasible=best.feasible,
        method="grid",
        evaluations=evaluations,
        constraint_violation=best.constraint_violation,
        message=f"{points.shape[0]} grid points evaluated",
    )
