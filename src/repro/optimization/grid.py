"""Exhaustive grid search.

The MAC parameter spaces are one- or two-dimensional boxes, so a dense grid
is both affordable and an excellent robustness baseline: it cannot be fooled
by local minima or by a badly scaled constraint, which makes it the seed and
the cross-check for the gradient-based solver.

Two evaluation paths share one selection rule:

* the **scalar** path loops over the grid calling the objective and the
  constraint margins point by point — always available;
* the **vectorized** path evaluates the whole grid in a handful of NumPy
  calls when the objective and every constraint expose a batched twin (a
  ``.many(points)`` attribute, attached with :func:`batched`).

The vectorized path replicates the scalar path's skip/tie-break/violation
semantics operation for operation, so the two return **bit-identical**
results; ``tests/optimization/test_grid_vectorized.py`` enforces this and
``benchmarks/bench_vectorized_grid.py`` records the speedup.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace
from repro.exceptions import SolverError
from repro.optimization.result import SolverResult

#: Signature of an objective: maps a solver-ordered array to a scalar.
Objective = Callable[[np.ndarray], float]
#: Signature of a constraint margin: ``>= 0`` means satisfied.
Constraint = Callable[[np.ndarray], float]
#: Signature of a batched twin: maps an ``(n, dim)`` grid to ``(n,)`` values.
BatchedFunction = Callable[[np.ndarray], np.ndarray]

#: Error message shared by both evaluation paths when nothing evaluates.
_NO_FINITE_POINT = "grid search found no grid point with a finite objective value"


def batched(scalar: Callable[[np.ndarray], float], many: BatchedFunction) -> Objective:
    """Attach a batched twin to a scalar objective or constraint.

    Args:
        scalar: The per-point callable the solvers use (e.g. a bound
            ``model.system_energy``).
        many: Its batched twin mapping an ``(n, dim)`` grid to an ``(n,)``
            array, expected to be bit-identical to calling ``scalar`` per row.

    Returns:
        A wrapper that forwards per-point calls to ``scalar`` and carries
        ``many`` as a ``.many`` attribute, which :func:`grid_search`
        auto-detects.  (A plain attribute cannot be set on a bound method,
        hence the wrapper.)
    """

    @functools.wraps(scalar, assigned=("__doc__",), updated=())
    def wrapper(x: np.ndarray) -> float:
        return scalar(x)

    wrapper.many = many  # type: ignore[attr-defined]
    wrapper.scalar = scalar  # type: ignore[attr-defined]
    return wrapper


def _batched_twin(function: Callable) -> Optional[BatchedFunction]:
    """The ``.many`` twin of an objective/constraint, or ``None``."""
    return getattr(function, "many", None)


def _violation(constraints: Sequence[Constraint], point: np.ndarray) -> float:
    """Largest constraint violation at ``point`` (0 when all satisfied)."""
    worst = 0.0
    for constraint in constraints:
        margin = float(constraint(point))
        if not np.isfinite(margin):
            return float("inf")
        worst = max(worst, -margin)
    return worst


def _grid_search_scalar(
    objective: Objective,
    points: np.ndarray,
    constraints: Sequence[Constraint],
    sign: float,
    maximize: bool,
    feasibility_tolerance: float,
) -> SolverResult:
    """Point-by-point reference implementation of the grid scan."""
    best: Optional[SolverResult] = None
    evaluations = 0
    for point in points:
        evaluations += 1
        violation = _violation(constraints, point)
        if not np.isfinite(violation):
            continue
        raw = float(objective(point))
        if not np.isfinite(raw):
            continue
        candidate = SolverResult(
            x=point,
            value=sign * raw,
            feasible=violation <= feasibility_tolerance,
            method="grid",
            evaluations=evaluations,
            constraint_violation=violation,
        )
        if candidate.better_than(best):
            best = candidate
    if best is None:
        raise SolverError(_NO_FINITE_POINT)
    return SolverResult(
        x=best.x,
        value=sign * best.value if maximize else best.value,
        feasible=best.feasible,
        method="grid",
        evaluations=evaluations,
        constraint_violation=best.constraint_violation,
        message=f"{points.shape[0]} grid points evaluated",
    )


def _grid_search_vectorized(
    objective: Objective,
    points: np.ndarray,
    constraints: Sequence[Constraint],
    sign: float,
    feasibility_tolerance: float,
) -> SolverResult:
    """Whole-grid NumPy implementation, bit-identical to the scalar path.

    The scalar loop (a) skips points where any margin is non-finite, (b)
    skips points with a non-finite objective, (c) prefers feasible points,
    then smaller signed objective, then — among infeasible points — smaller
    violation, keeping the *first* optimum on exact ties.  ``np.argmin``
    returns the first minimizing index, which reproduces the strict-``<``
    incumbent updates of :meth:`SolverResult.better_than` exactly.
    """
    total = points.shape[0]
    violation = np.zeros(total)
    margins_finite = np.ones(total, dtype=bool)
    for constraint in constraints:
        margins = np.asarray(_batched_twin(constraint)(points), dtype=float).reshape(total)
        margins_finite &= np.isfinite(margins)
        violation = np.maximum(violation, -margins)
    raw = np.asarray(_batched_twin(objective)(points), dtype=float).reshape(total)
    valid = margins_finite & np.isfinite(raw)
    if not bool(valid.any()):
        raise SolverError(_NO_FINITE_POINT)

    feasible_mask = valid & (violation <= feasibility_tolerance)
    if bool(feasible_mask.any()):
        signed = sign * raw
        best_index = int(np.argmin(np.where(feasible_mask, signed, np.inf)))
        feasible = True
    else:
        best_index = int(np.argmin(np.where(valid, violation, np.inf)))
        feasible = False
    return SolverResult(
        x=points[best_index],
        value=float(raw[best_index]),
        feasible=feasible,
        method="grid",
        evaluations=total,
        constraint_violation=float(violation[best_index]),
        message=f"{total} grid points evaluated",
    )


def grid_search(
    objective: Objective,
    space: ParameterSpace,
    constraints: Sequence[Constraint] = (),
    points_per_dimension: int = 200,
    maximize: bool = False,
    feasibility_tolerance: float = 1e-9,
    vectorize: Optional[bool] = None,
) -> SolverResult:
    """Minimize (or maximize) an objective over a full-factorial grid.

    Args:
        objective: Scalar objective of a solver-ordered parameter array.
            When it (and every constraint) carries a batched ``.many`` twin
            — see :func:`batched` — the whole grid is evaluated in a few
            NumPy calls instead of a Python loop.
        space: The admissible box.
        constraints: Margin functions; a point is feasible when every margin
            is ``>= -feasibility_tolerance``.
        points_per_dimension: Grid resolution along each axis.
        maximize: Maximize instead of minimize.
        feasibility_tolerance: Slack allowed on constraint margins.
        vectorize: ``None`` (default) auto-detects the batched path;
            ``False`` forces the scalar loop (used by the equivalence tests
            and the benchmarks); ``True`` requires batched twins and raises
            if any are missing.

    Returns:
        The best *feasible* grid point if one exists; otherwise the point of
        least violation, flagged as infeasible.  Both evaluation paths
        return bit-identical results.

    Raises:
        SolverError: if every grid point evaluates to a non-finite objective,
            or ``vectorize=True`` without batched twins everywhere.
    """
    sign = -1.0 if maximize else 1.0
    points = space.grid(points_per_dimension)

    batchable = _batched_twin(objective) is not None and all(
        _batched_twin(constraint) is not None for constraint in constraints
    )
    if vectorize is None:
        vectorize = batchable
    elif vectorize and not batchable:
        raise SolverError(
            "grid search: vectorize=True requires the objective and every "
            "constraint to carry a batched .many twin (see repro.optimization.batched)"
        )
    if vectorize:
        return _grid_search_vectorized(
            objective, points, constraints, sign, feasibility_tolerance
        )
    return _grid_search_scalar(
        objective, points, constraints, sign, maximize, feasibility_tolerance
    )
