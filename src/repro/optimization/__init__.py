"""Numerical optimization substrate.

The paper's problems (P1), (P2) and (P4) are small constrained non-linear
programs over the MAC parameter box.  This subpackage provides the solvers
the core framework uses:

* :mod:`repro.optimization.result` — the common :class:`SolverResult` record.
* :mod:`repro.optimization.grid` — exhaustive grid search (robust, derivative
  free; used to seed and to cross-check the gradient-based solver), with a
  vectorized whole-grid path for objectives carrying :func:`batched` twins.
* :mod:`repro.optimization.adaptive` — coarse-to-fine refinement over the
  same fine grid, returning the exhaustive scan's answer bit for bit at a
  fraction of the evaluations (the ``solver.method = "adaptive"`` path).
* :mod:`repro.optimization.constrained` — multi-start SLSQP via
  :func:`scipy.optimize.minimize`.
* :mod:`repro.optimization.hybrid` — grid-seeded SLSQP, the default solver.
* :mod:`repro.optimization.scalarization` — weighted-sum scalarization of the
  two objectives (used for Pareto frontier extraction and ablations).
* :mod:`repro.optimization.convexity` — numerical convexity and
  quasi-concavity probes backing the paper's uniqueness argument.
"""

from repro.optimization.result import SolverResult
from repro.optimization.grid import batched, grid_search
from repro.optimization.adaptive import adaptive_grid_search
from repro.optimization.constrained import slsqp_solve, multistart_slsqp
from repro.optimization.hybrid import SOLVER_METHODS, hybrid_solve
from repro.optimization.scalarization import weighted_sum_scan
from repro.optimization.convexity import (
    is_convex_on_grid,
    is_quasiconcave_on_segment,
    sample_hessian_definiteness,
)

__all__ = [
    "SolverResult",
    "batched",
    "grid_search",
    "adaptive_grid_search",
    "SOLVER_METHODS",
    "slsqp_solve",
    "multistart_slsqp",
    "hybrid_solve",
    "weighted_sum_scan",
    "is_convex_on_grid",
    "is_quasiconcave_on_segment",
    "sample_hessian_definiteness",
]
