"""Grid-seeded SLSQP: the library's default solver.

A coarse grid scan locates the basin of the global optimum (the MAC energy
curves are cheap to evaluate and only one- or two-dimensional), then SLSQP
polishes the best grid point to high precision.  A plain multi-start SLSQP
run is used as a cross-check: whichever of the two is better (feasible and
lower objective) is returned, so the hybrid is never worse than either
component.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace
from repro.optimization.adaptive import adaptive_grid_search
from repro.optimization.constrained import multistart_slsqp, slsqp_solve
from repro.optimization.grid import Constraint, Objective, grid_search
from repro.optimization.result import SolverResult
from repro.exceptions import ConfigurationError, SolverError

#: Grid-stage strategies the hybrid dispatches between.  Both return the
#: identical best fine-grid point; they differ only in how much of the grid
#: they actually evaluate.
SOLVER_METHODS = ("exhaustive", "adaptive")


def hybrid_solve(
    objective: Objective,
    space: ParameterSpace,
    constraints: Sequence[Constraint] = (),
    maximize: bool = False,
    grid_points_per_dimension: int = 120,
    random_starts: int = 6,
    seed: int = 0,
    feasibility_tolerance: float = 1e-7,
    vectorize: Optional[bool] = None,
    method: str = "exhaustive",
    coarse_points: int = 11,
    refine_rounds: int = 3,
    top_k: int = 3,
) -> SolverResult:
    """Grid scan, polish the winner with SLSQP, cross-check with multi-start.

    Returns the best feasible result found by any stage; if no stage finds a
    feasible point, the least-violating point is returned (flagged
    infeasible) so callers can distinguish "requirements cannot be met" from
    "solver crashed".

    ``method`` selects the grid stage: ``"exhaustive"`` evaluates the full
    grid through :func:`~repro.optimization.grid.grid_search`;
    ``"adaptive"`` routes through
    :func:`~repro.optimization.adaptive.adaptive_grid_search` (coarse scan,
    incumbent/boundary refinement), which returns the identical result at a
    fraction of the evaluations and records the real work in the volatile
    ``work`` counters.  ``coarse_points`` / ``refine_rounds`` / ``top_k``
    only apply to the adaptive method.

    ``vectorize`` is forwarded to :func:`~repro.optimization.grid.grid_search`:
    ``None`` auto-uses the batched evaluation path when the objective and
    constraints carry ``.many`` twins, ``False`` forces the scalar loop.
    Either way the result is bit-identical; only the wall clock changes.
    """
    if method not in SOLVER_METHODS:
        raise ConfigurationError(
            f"unknown solver method {method!r}; choose from {', '.join(SOLVER_METHODS)}"
        )
    comparison_sign = -1.0 if maximize else 1.0
    candidates = []

    grid_result: Optional[SolverResult] = None
    try:
        if method == "adaptive":
            grid_result = adaptive_grid_search(
                objective,
                space,
                constraints,
                points_per_dimension=grid_points_per_dimension,
                maximize=maximize,
                coarse_points=coarse_points,
                refine_rounds=refine_rounds,
                top_k=top_k,
            )
        else:
            grid_result = grid_search(
                objective,
                space,
                constraints,
                points_per_dimension=grid_points_per_dimension,
                maximize=maximize,
                vectorize=vectorize,
            )
        candidates.append(grid_result)
    except SolverError:
        grid_result = None

    if grid_result is not None:
        try:
            polished = slsqp_solve(
                objective,
                space,
                constraints,
                start=np.asarray(grid_result.x, dtype=float),
                maximize=maximize,
                feasibility_tolerance=feasibility_tolerance,
            )
            candidates.append(polished)
        except SolverError:
            pass

    try:
        multistart = multistart_slsqp(
            objective,
            space,
            constraints,
            maximize=maximize,
            random_starts=random_starts,
            seed=seed,
            feasibility_tolerance=feasibility_tolerance,
        )
        candidates.append(multistart)
    except SolverError:
        pass

    if not candidates:
        raise SolverError("hybrid solver: every stage failed to produce a result")

    best: Optional[SolverResult] = None
    total_evaluations = 0
    for candidate in candidates:
        total_evaluations += candidate.evaluations
        flipped = SolverResult(
            x=candidate.x,
            value=comparison_sign * candidate.value,
            feasible=candidate.feasible,
            method=candidate.method,
            evaluations=candidate.evaluations,
            message=candidate.message,
            constraint_violation=candidate.constraint_violation,
        )
        incumbent = None
        if best is not None:
            incumbent = SolverResult(
                x=best.x,
                value=comparison_sign * best.value,
                feasible=best.feasible,
                method=best.method,
                evaluations=best.evaluations,
                message=best.message,
                constraint_violation=best.constraint_violation,
            )
        if flipped.better_than(incumbent):
            best = candidate

    assert best is not None  # candidates is non-empty
    work = None
    if grid_result is not None and grid_result.work is not None:
        # Polish evaluations are the real SLSQP/multi-start spend on top of
        # the grid stage; grid_result.evaluations is the nominal full-grid
        # count, which every non-grid candidate adds to honestly.
        work = dict(grid_result.work)
        work["polish_evaluations"] = int(total_evaluations - grid_result.evaluations)
    return SolverResult(
        x=best.x,
        value=best.value,
        feasible=best.feasible,
        method=f"hybrid({best.method})",
        evaluations=total_evaluations,
        message=best.message,
        constraint_violation=best.constraint_violation,
        work=work,
    )
