"""Numerical convexity and quasi-concavity probes.

The paper's uniqueness argument for the Nash bargaining solution rests on the
feasible set being convex and the Nash product being quasi-concave.  The MAC
models are closed-form but messy, so instead of symbolic proofs the library
offers cheap numerical probes that the tests (and users instantiating the
framework on their own protocols) can run:

* :func:`is_convex_on_grid` — midpoint-convexity check of a scalar function
  on random segment samples inside a box,
* :func:`is_quasiconcave_on_segment` — quasi-concavity check along random
  segments (no local interior minima below the endpoints),
* :func:`sample_hessian_definiteness` — finite-difference Hessian eigenvalue
  sampling.

All probes are necessary-condition checks: they can refute convexity but can
only build confidence in it, which is stated in their docstrings and in
DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.core.parameters import ParameterSpace

ScalarFunction = Callable[[np.ndarray], float]


def _random_segment_pairs(
    space: ParameterSpace, samples: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``samples`` pairs of points inside the box."""
    rng = np.random.default_rng(seed)
    lower = space.lower_bounds
    upper = space.upper_bounds
    shape = (samples, space.dimension)
    a = lower + rng.uniform(0.0, 1.0, size=shape) * (upper - lower)
    b = lower + rng.uniform(0.0, 1.0, size=shape) * (upper - lower)
    return a, b


def is_convex_on_grid(
    function: ScalarFunction,
    space: ParameterSpace,
    samples: int = 200,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> bool:
    """Midpoint-convexity probe: ``f((a+b)/2) <= (f(a)+f(b))/2`` on samples.

    Returns ``False`` as soon as one sampled segment violates midpoint
    convexity by more than ``tolerance`` (relative to the magnitude of the
    values involved); returns ``True`` if no violation is found.  A ``True``
    result is evidence, not proof.
    """
    a_points, b_points = _random_segment_pairs(space, samples, seed)
    for a, b in zip(a_points, b_points):
        fa = float(function(a))
        fb = float(function(b))
        fm = float(function(0.5 * (a + b)))
        if not (np.isfinite(fa) and np.isfinite(fb) and np.isfinite(fm)):
            return False
        scale = max(1.0, abs(fa), abs(fb))
        if fm > 0.5 * (fa + fb) + tolerance * scale:
            return False
    return True


def is_quasiconcave_on_segment(
    function: ScalarFunction,
    space: ParameterSpace,
    samples: int = 100,
    interior_points: int = 9,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> bool:
    """Quasi-concavity probe along random segments.

    A function is quasi-concave iff on every segment its value never drops
    below the minimum of the endpoint values.  The probe samples random
    segments and ``interior_points`` interior points per segment.
    """
    a_points, b_points = _random_segment_pairs(space, samples, seed)
    fractions = np.linspace(0.0, 1.0, interior_points + 2)[1:-1]
    for a, b in zip(a_points, b_points):
        fa = float(function(a))
        fb = float(function(b))
        if not (np.isfinite(fa) and np.isfinite(fb)):
            return False
        floor = min(fa, fb)
        scale = max(1.0, abs(fa), abs(fb))
        for fraction in fractions:
            fm = float(function(a + fraction * (b - a)))
            if not np.isfinite(fm):
                return False
            if fm < floor - tolerance * scale:
                return False
    return True


def sample_hessian_definiteness(
    function: ScalarFunction,
    space: ParameterSpace,
    samples: int = 25,
    relative_step: float = 1e-4,
    seed: int = 0,
) -> Tuple[float, float]:
    """Sample finite-difference Hessian eigenvalues inside the box.

    Returns ``(min_eigenvalue, max_eigenvalue)`` over all sampled points.
    A non-negative minimum eigenvalue is numerical evidence of (local)
    convexity; a non-positive maximum eigenvalue of concavity.

    Points too close to the box boundary are pulled inward so the central
    differences stay inside the admissible region.
    """
    rng = np.random.default_rng(seed)
    lower = space.lower_bounds
    upper = space.upper_bounds
    span = upper - lower
    step = relative_step * np.where(span > 0, span, 1.0)
    dimension = space.dimension

    min_eigenvalue = np.inf
    max_eigenvalue = -np.inf
    for _ in range(samples):
        point = lower + rng.uniform(0.05, 0.95, size=dimension) * span
        hessian = np.zeros((dimension, dimension))
        f0 = float(function(point))
        for i in range(dimension):
            for j in range(i, dimension):
                ei = np.zeros(dimension)
                ej = np.zeros(dimension)
                ei[i] = step[i]
                ej[j] = step[j]
                if i == j:
                    f_plus = float(function(point + ei))
                    f_minus = float(function(point - ei))
                    value = (f_plus - 2.0 * f0 + f_minus) / (step[i] ** 2)
                else:
                    f_pp = float(function(point + ei + ej))
                    f_pm = float(function(point + ei - ej))
                    f_mp = float(function(point - ei + ej))
                    f_mm = float(function(point - ei - ej))
                    value = (f_pp - f_pm - f_mp + f_mm) / (4.0 * step[i] * step[j])
                hessian[i, j] = value
                hessian[j, i] = value
        if not np.all(np.isfinite(hessian)):
            continue
        eigenvalues = np.linalg.eigvalsh(hessian)
        min_eigenvalue = min(min_eigenvalue, float(eigenvalues.min()))
        max_eigenvalue = max(max_eigenvalue, float(eigenvalues.max()))
    if not np.isfinite(min_eigenvalue):
        min_eigenvalue = float("nan")
    if not np.isfinite(max_eigenvalue):
        max_eigenvalue = float("nan")
    return min_eigenvalue, max_eigenvalue
