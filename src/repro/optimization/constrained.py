"""Gradient-based constrained optimization (SLSQP) with multi-start.

SciPy's SLSQP handles the smooth inequality-constrained programs (P1), (P2)
and (P4) directly.  Because SLSQP is a local method and the energy models can
have steep ``1/x`` terms near the lower bounds, the public entry point runs
it from several starting points (box midpoint, corners biased toward each
bound, and random interior points) and keeps the best feasible outcome.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.core.parameters import ParameterSpace
from repro.exceptions import SolverError
from repro.optimization.grid import Constraint, Objective, _violation
from repro.optimization.result import SolverResult


def slsqp_solve(
    objective: Objective,
    space: ParameterSpace,
    constraints: Sequence[Constraint] = (),
    start: Optional[np.ndarray] = None,
    maximize: bool = False,
    feasibility_tolerance: float = 1e-7,
    max_iterations: int = 400,
) -> SolverResult:
    """Run a single SLSQP descent from ``start`` (default: box midpoint).

    The objective and constraints are wrapped so that non-finite values are
    replaced by large penalties, which keeps SLSQP from aborting when it
    probes the boundary of the admissible region.
    """
    sign = -1.0 if maximize else 1.0
    start_point = space.midpoint() if start is None else space.clip(start)

    evaluation_counter = {"count": 0}

    def safe_objective(point: np.ndarray) -> float:
        evaluation_counter["count"] += 1
        value = float(objective(np.asarray(point, dtype=float)))
        if not np.isfinite(value):
            return 1e30
        return sign * value

    scipy_constraints = [
        {"type": "ineq", "fun": (lambda point, c=c: float(c(np.asarray(point, dtype=float))))}
        for c in constraints
    ]

    try:
        outcome = optimize.minimize(
            safe_objective,
            x0=np.asarray(start_point, dtype=float),
            method="SLSQP",
            bounds=space.bounds,
            constraints=scipy_constraints,
            options={"maxiter": max_iterations, "ftol": 1e-12},
        )
    except (ValueError, FloatingPointError) as exc:  # pragma: no cover - scipy internal
        raise SolverError(f"SLSQP failed: {exc}") from exc

    point = space.clip(np.asarray(outcome.x, dtype=float))
    violation = _violation(constraints, point)
    value = float(objective(point))
    if not np.isfinite(value):
        raise SolverError("SLSQP converged to a point with a non-finite objective")
    return SolverResult(
        x=point,
        value=value,
        feasible=violation <= feasibility_tolerance,
        method="slsqp",
        evaluations=evaluation_counter["count"],
        message=str(outcome.message),
        constraint_violation=violation,
    )


def multistart_slsqp(
    objective: Objective,
    space: ParameterSpace,
    constraints: Sequence[Constraint] = (),
    maximize: bool = False,
    starts: Optional[Sequence[np.ndarray]] = None,
    random_starts: int = 8,
    seed: int = 0,
    feasibility_tolerance: float = 1e-7,
) -> SolverResult:
    """Run SLSQP from several starting points and keep the best result.

    The default start set is the box midpoint, points biased toward the lower
    and upper bounds (where the 1/x-shaped energy terms have their extremes),
    and ``random_starts`` uniform interior points.
    """
    if starts is None:
        lower = space.lower_bounds
        upper = space.upper_bounds
        span = upper - lower
        starts = [
            space.midpoint(),
            lower + 0.05 * span,
            upper - 0.05 * span,
            lower + 0.25 * span,
            upper - 0.25 * span,
        ]
        if random_starts > 0:
            starts = list(starts) + list(space.random_points(random_starts, seed=seed))

    best: Optional[SolverResult] = None
    total_evaluations = 0
    failures: List[str] = []
    comparison_sign = -1.0 if maximize else 1.0
    for start in starts:
        try:
            result = slsqp_solve(
                objective,
                space,
                constraints,
                start=np.asarray(start, dtype=float),
                maximize=maximize,
                feasibility_tolerance=feasibility_tolerance,
            )
        except SolverError as exc:
            failures.append(str(exc))
            continue
        total_evaluations += result.evaluations
        # ``better_than`` compares in minimization sense, so flip the value
        # when maximizing before comparing and flip back when storing.
        candidate = SolverResult(
            x=result.x,
            value=comparison_sign * result.value,
            feasible=result.feasible,
            method=result.method,
            evaluations=result.evaluations,
            message=result.message,
            constraint_violation=result.constraint_violation,
        )
        incumbent = None
        if best is not None:
            incumbent = SolverResult(
                x=best.x,
                value=comparison_sign * best.value,
                feasible=best.feasible,
                method=best.method,
                evaluations=best.evaluations,
                message=best.message,
                constraint_violation=best.constraint_violation,
            )
        if candidate.better_than(incumbent):
            best = result
    if best is None:
        raise SolverError(
            "all SLSQP starts failed: " + "; ".join(failures[:3]) if failures else "no starts"
        )
    return SolverResult(
        x=best.x,
        value=best.value,
        feasible=best.feasible,
        method="multistart-slsqp",
        evaluations=total_evaluations,
        message=best.message,
        constraint_violation=best.constraint_violation,
    )
