"""Weighted-sum scalarization of two objectives.

Scanning the weight of a convex combination ``w * f1 + (1 - w) * f2`` over
``[0, 1]`` traces (a subset of) the Pareto frontier of the bi-objective
problem.  The core framework uses this for two purposes:

* drawing the energy-delay frontier curves behind the paper's figures, and
* the bargaining-rule ablation, where the weighted-sum solution at
  ``w = 0.5`` is contrasted with the Nash bargaining point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace
from repro.exceptions import SolverError
from repro.optimization.grid import Constraint, Objective
from repro.optimization.hybrid import hybrid_solve
from repro.optimization.result import SolverResult


@dataclass(frozen=True)
class ScalarizedPoint:
    """One point of a weighted-sum scan.

    Attributes:
        weight: Weight given to the first objective.
        x: Optimal parameter vector for that weight.
        first: Value of the first objective at ``x``.
        second: Value of the second objective at ``x``.
        feasible: Whether the point satisfies all constraints.
    """

    weight: float
    x: np.ndarray
    first: float
    second: float
    feasible: bool


def weighted_sum_scan(
    first: Objective,
    second: Objective,
    space: ParameterSpace,
    constraints: Sequence[Constraint] = (),
    weights: Sequence[float] | None = None,
    first_scale: float | None = None,
    second_scale: float | None = None,
    grid_points_per_dimension: int = 80,
) -> List[ScalarizedPoint]:
    """Minimize ``w * first + (1 - w) * second`` for each weight.

    Both objectives are normalized by a characteristic scale (their value at
    the box midpoint unless explicit scales are given), so the weights are
    meaningful even when the objectives differ by orders of magnitude
    (joules vs seconds).
    """
    if weights is None:
        weights = np.linspace(0.0, 1.0, 11)
    midpoint = space.midpoint()
    if first_scale is None:
        first_scale = abs(float(first(midpoint))) or 1.0
    if second_scale is None:
        second_scale = abs(float(second(midpoint))) or 1.0
    if first_scale <= 0 or second_scale <= 0:
        raise SolverError("scalarization scales must be positive")

    points: List[ScalarizedPoint] = []
    for weight in weights:
        weight = float(weight)
        if not 0.0 <= weight <= 1.0:
            raise SolverError(f"weights must lie in [0, 1], got {weight!r}")

        def combined(x: np.ndarray, w: float = weight) -> float:
            return w * float(first(x)) / first_scale + (1.0 - w) * float(second(x)) / second_scale

        result: SolverResult = hybrid_solve(
            combined,
            space,
            constraints,
            grid_points_per_dimension=grid_points_per_dimension,
        )
        points.append(
            ScalarizedPoint(
                weight=weight,
                x=result.x,
                first=float(first(result.x)),
                second=float(second(result.x)),
                feasible=result.feasible,
            )
        )
    return points
