"""Command-line interface.

``repro-mac-game`` (or ``python -m repro.cli``) exposes the main workflows:

* ``solve``     — solve the energy-delay game for one protocol,
* ``sweep``     — sweep a requirement and print the series,
* ``figure1``   — regenerate the paper's Figure 1 series,
* ``figure2``   — regenerate the paper's Figure 2 series,
* ``suite``     — run the scenario suite: every (scenario × protocol) game,
* ``scenarios`` — list the scenario presets of the library,
* ``validate``  — compare the analytical model against the simulator,
* ``validate-campaign`` — replicated Monte-Carlo validation over the suite,
* ``protocols`` — list the available protocol models.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table, solutions_to_rows, write_csv
from repro.analysis.sweep import sweep_delay_bound, sweep_energy_budget
from repro.analysis.validation import validate_protocol
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import ReproError
from repro.experiments.figure1 import figure1_rows, reproduce_figure1
from repro.experiments.figure2 import figure2_rows, reproduce_figure2
from repro.network.radio import radio_by_name
from repro.network.topology import RingTopology
from repro.protocols.registry import available_protocols, create_protocol
from repro.runtime import BatchRunner, build_runner
from repro.scenario import Scenario
from repro.scenarios import ScenarioSuite, available_scenarios, scenario_presets
from repro.simulation.runner import SimulationConfig
from repro.validation import CampaignSpec, run_campaign, write_campaign


def _build_scenario(args: argparse.Namespace) -> Scenario:
    return Scenario(
        topology=RingTopology(depth=args.depth, density=args.density),
        sampling_rate=1.0 / args.sampling_period,
        radio=radio_by_name(args.radio),
    )


def _build_runner(args: argparse.Namespace) -> BatchRunner:
    return build_runner(workers=args.workers, use_cache=not args.no_cache)


def _print_runtime_summary(runner: BatchRunner) -> None:
    stats = runner.cache_stats()
    line = f"# runtime: {runner.describe()}"
    if runner.cache is not None:
        line += f" — cache: {stats.hits} hits / {stats.misses} misses"
    print(line)


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--depth", type=int, default=5, help="number of rings D (default 5)")
    parser.add_argument("--density", type=int, default=8, help="neighbourhood size C (default 8)")
    parser.add_argument(
        "--sampling-period",
        type=float,
        default=3600.0,
        help="application sampling period in seconds (default 3600)",
    )
    parser.add_argument("--radio", default="cc2420", help="radio preset (cc2420, cc1100, tr1001)")
    parser.add_argument(
        "--grid-points",
        type=int,
        default=60,
        help="grid resolution per parameter dimension for the hybrid solver",
    )


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the solves (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the solve cache (every solve is recomputed)",
    )


def _cmd_protocols(_: argparse.Namespace) -> int:
    for name in available_protocols():
        print(name)
    return 0


def _cmd_scenarios(_: argparse.Namespace) -> int:
    rows = [dict(preset.describe()) for preset in scenario_presets()]
    print(format_table(rows))
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    runner = _build_runner(args)
    suite = ScenarioSuite(
        scenarios=args.scenarios,
        protocols=args.protocols,
        runner=runner,
        grid_points_per_dimension=args.grid_points,
        energy_budget=args.energy_budget,
        max_delay=args.max_delay,
    )
    print(
        f"# scenario suite: {len(suite.presets)} scenarios × "
        f"{len(suite.protocols)} protocols = {suite.pair_count} games"
    )
    result = suite.run()
    rows = result.rows()
    print(format_table(rows))
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"# wrote {path}")
    infeasible = result.infeasible_cells
    if infeasible:
        pairs = ", ".join(f"{cell.scenario}/{cell.protocol}" for cell in infeasible)
        print(f"# infeasible pairs: {pairs}")
    _print_runtime_summary(runner)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    model = create_protocol(args.protocol, scenario)
    requirements = ApplicationRequirements(
        energy_budget=args.energy_budget,
        max_delay=args.max_delay,
        sampling_rate=scenario.sampling_rate,
    )
    game = EnergyDelayGame(model, requirements, grid_points_per_dimension=args.grid_points)
    solution = game.solve()
    rows = [
        {"quantity": "E_best [J/s]", "value": solution.energy_best},
        {"quantity": "L_worst [ms]", "value": solution.delay_worst * 1000.0},
        {"quantity": "E_worst [J/s]", "value": solution.energy_worst},
        {"quantity": "L_best [ms]", "value": solution.delay_best * 1000.0},
        {"quantity": "E_star [J/s]", "value": solution.energy_star},
        {"quantity": "L_star [ms]", "value": solution.delay_star * 1000.0},
        {"quantity": "fairness residual", "value": solution.bargaining.fairness_residual},
    ]
    print(f"# {model.name} — Ebudget={args.energy_budget} J/s, Lmax={args.max_delay} s")
    print(format_table(rows))
    print("# bargaining parameters:", dict(solution.bargaining.point.parameters))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    model = create_protocol(args.protocol, scenario)
    runner = _build_runner(args)
    values = [float(v) for v in args.values]
    if args.vary == "max-delay":
        result = sweep_delay_bound(
            model,
            energy_budget=args.energy_budget,
            delay_bounds=values,
            runner=runner,
            grid_points_per_dimension=args.grid_points,
        )
    else:
        result = sweep_energy_budget(
            model,
            max_delay=args.max_delay,
            energy_budgets=values,
            runner=runner,
            grid_points_per_dimension=args.grid_points,
        )
    rows = result.series()
    print(format_table(rows))
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"# wrote {path}")
    if result.infeasible_values:
        print(f"# infeasible values: {result.infeasible_values}")
    _print_runtime_summary(runner)
    return 0


def _cmd_figure(args: argparse.Namespace, which: int) -> int:
    runner = _build_runner(args)
    if which == 1:
        results = reproduce_figure1(grid_points_per_dimension=args.grid_points, runner=runner)
        rows = figure1_rows(results)
    else:
        results = reproduce_figure2(grid_points_per_dimension=args.grid_points, runner=runner)
        rows = figure2_rows(results)
    print(format_table(rows))
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"# wrote {path}")
    _print_runtime_summary(runner)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    model = create_protocol(args.protocol, scenario)
    space = model.parameter_space
    params = space.to_dict(space.midpoint())
    report = validate_protocol(
        model,
        params,
        SimulationConfig(horizon=args.horizon, seed=args.seed),
    )
    rows = [{"quantity": key, "value": value} for key, value in report.as_dict().items()]
    print(format_table(rows))
    return 0


def _cmd_validate_campaign(args: argparse.Namespace) -> int:
    runner = _build_runner(args)
    spec = CampaignSpec(
        scenarios=tuple(args.scenarios or ()),
        protocols=tuple(args.protocols or ()),
        replications=args.replications,
        base_seed=args.base_seed,
        horizon=args.horizon,
        confidence=args.confidence,
        grid_points_per_dimension=args.grid_points,
    )
    print(
        f"# validation campaign: {len(spec.scenarios)} scenarios × "
        f"{len(spec.protocols)} protocols × {spec.replications} replications "
        f"= {spec.cell_count * spec.replications} simulations"
    )
    result = run_campaign(spec, runner)
    rows = result.rows()
    print(format_table(rows))
    if args.out:
        path = write_campaign(result, args.out)
        print(f"# wrote {path}")
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"# wrote {path}")
    failed = result.failed_cells
    if failed:
        pairs = ", ".join(f"{cell.scenario}/{cell.protocol}" for cell in failed)
        print(f"# cells with failed checks: {pairs}")
    _print_runtime_summary(runner)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mac-game",
        description="Game-theoretic energy-delay balancing for duty-cycled MAC protocols",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    protocols_parser = subparsers.add_parser("protocols", help="list available protocols")
    protocols_parser.set_defaults(handler=_cmd_protocols)

    solve_parser = subparsers.add_parser("solve", help="solve the game for one protocol")
    solve_parser.add_argument("protocol", help="protocol name (xmac, dmac, lmac, scpmac)")
    solve_parser.add_argument("--energy-budget", type=float, default=0.06)
    solve_parser.add_argument("--max-delay", type=float, default=6.0)
    _add_scenario_arguments(solve_parser)
    solve_parser.set_defaults(handler=_cmd_solve)

    sweep_parser = subparsers.add_parser("sweep", help="sweep a requirement")
    sweep_parser.add_argument("protocol")
    sweep_parser.add_argument("--vary", choices=("max-delay", "energy-budget"), required=True)
    sweep_parser.add_argument("--values", nargs="+", required=True)
    sweep_parser.add_argument("--energy-budget", type=float, default=0.06)
    sweep_parser.add_argument("--max-delay", type=float, default=6.0)
    sweep_parser.add_argument("--csv", default=None, help="optional CSV output path")
    _add_scenario_arguments(sweep_parser)
    _add_runtime_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    figure1_parser = subparsers.add_parser("figure1", help="regenerate the paper's Figure 1")
    figure1_parser.add_argument("--csv", default=None)
    _add_scenario_arguments(figure1_parser)
    _add_runtime_arguments(figure1_parser)
    figure1_parser.set_defaults(handler=lambda args: _cmd_figure(args, 1))

    figure2_parser = subparsers.add_parser("figure2", help="regenerate the paper's Figure 2")
    figure2_parser.add_argument("--csv", default=None)
    _add_scenario_arguments(figure2_parser)
    _add_runtime_arguments(figure2_parser)
    figure2_parser.set_defaults(handler=lambda args: _cmd_figure(args, 2))

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list the scenario presets of the library"
    )
    scenarios_parser.set_defaults(handler=_cmd_scenarios)

    suite_parser = subparsers.add_parser(
        "suite", help="run every (scenario × protocol) game of the scenario library"
    )
    suite_parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"scenario presets to run (default: all — {', '.join(available_scenarios())})",
    )
    suite_parser.add_argument(
        "--protocols",
        nargs="+",
        default=None,
        metavar="NAME",
        help="protocols to run (default: all registered)",
    )
    suite_parser.add_argument(
        "--energy-budget",
        type=float,
        default=None,
        help="override every preset's suggested energy budget (J/s)",
    )
    suite_parser.add_argument(
        "--max-delay",
        type=float,
        default=None,
        help="override every preset's suggested delay bound (s)",
    )
    suite_parser.add_argument(
        "--grid-points",
        type=int,
        default=60,
        help="grid resolution per parameter dimension for the hybrid solver",
    )
    suite_parser.add_argument("--csv", default=None, help="optional CSV output path")
    _add_runtime_arguments(suite_parser)
    suite_parser.set_defaults(handler=_cmd_suite)

    validate_parser = subparsers.add_parser(
        "validate", help="compare the analytical model against the simulator"
    )
    validate_parser.add_argument("protocol")
    validate_parser.add_argument("--horizon", type=float, default=2000.0)
    validate_parser.add_argument("--seed", type=int, default=1)
    _add_scenario_arguments(validate_parser)
    validate_parser.set_defaults(handler=_cmd_validate)

    campaign_parser = subparsers.add_parser(
        "validate-campaign",
        help="replicated Monte-Carlo model-vs-simulation campaign over the scenario suite",
    )
    campaign_parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"scenario presets to cover (default: all — {', '.join(available_scenarios())})",
    )
    campaign_parser.add_argument(
        "--protocols",
        nargs="+",
        default=None,
        metavar="NAME",
        help="protocols to cover (default: all with a simulated behaviour)",
    )
    campaign_parser.add_argument(
        "--replications",
        type=int,
        default=5,
        help="independently seeded simulation runs per (scenario, protocol) cell",
    )
    campaign_parser.add_argument(
        "--base-seed",
        type=int,
        default=1,
        help="base seed every replication seed is derived from",
    )
    campaign_parser.add_argument(
        "--horizon",
        type=float,
        default=1500.0,
        help="simulated duration of each replication in seconds",
    )
    campaign_parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="two-sided confidence level of the Student-t intervals",
    )
    campaign_parser.add_argument(
        "--grid-points",
        type=int,
        default=40,
        help="grid resolution per parameter dimension for the hybrid solver",
    )
    campaign_parser.add_argument(
        "--out",
        default=None,
        help="write the versioned JSON campaign artifact to this path",
    )
    campaign_parser.add_argument("--csv", default=None, help="optional CSV output path")
    _add_runtime_arguments(campaign_parser)
    campaign_parser.set_defaults(handler=_cmd_validate_campaign)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return int(args.handler(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
