"""Command-line interface.

``repro-mac-game`` (or ``python -m repro.cli``) exposes the main workflows:

* ``run``       — execute a declarative experiment spec (``.json``/``.toml``),
* ``solve``     — solve the energy-delay game for one protocol,
* ``sweep``     — sweep a requirement and print the series,
* ``figure1``   — regenerate the paper's Figure 1 series,
* ``figure2``   — regenerate the paper's Figure 2 series,
* ``suite``     — run the scenario suite: every (scenario × protocol) game,
* ``scenarios`` — list the scenario presets of the library,
* ``validate``  — compare the analytical model against the simulator,
* ``validate-campaign`` — replicated Monte-Carlo validation over the suite,
* ``protocols`` — list the available protocol models,
* ``store``     — maintain persistent result stores (merge/verify/gc/stats),
* ``serve``     — run the experiment service (HTTP job server + worker pool).

Workload subcommands accept ``--store DIR`` to back the solve cache with a
persistent, content-addressed result store: warm runs skip already-solved
work (``run --require-warm`` turns "zero fresh results" into an exit-code
assertion), interrupted campaigns resume incrementally, and ``--shard I/N``
runs from separate machines merge byte-identically with ``store merge``.
``--no-cache`` bypasses *both* layers — memory cache and store — explicitly.

Every workload subcommand is a thin *spec builder*: it assembles an
:class:`repro.api.ExperimentSpec` from its arguments and pushes it through
the shared ``spec → plan → run`` pipeline, so ``solve``/``sweep``/``suite``
/... are each exactly equivalent to ``run`` with the corresponding spec
file (see ``examples/specs/`` and ``docs/api.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, ResultSet, plan as plan_experiment, run as run_experiment
from repro.api.engine import runner_for
from repro.exceptions import ConfigurationError, ReproError
from repro.protocols.registry import available_protocols
from repro.runtime import BatchRunner
from repro.scenarios import available_scenarios, scenario_presets
from repro.simulation.mac.factory import available_mac_protocols
from repro.store import ResultStore, merge_stores
from repro.validation import write_campaign

#: The CLI's documented exit-code contract.  The experiment service maps
#: these onto HTTP statuses, so they are pinned by tests — change them and
#: the service (and anything scripting the CLI) changes with you.
EXIT_OK = 0  # the command succeeded
EXIT_CORRUPT = 1  # `store verify` found corrupt records
EXIT_ERROR = 2  # a ReproError: bad spec/arguments, infeasible solve, ...
EXIT_NOT_WARM = 3  # `run --require-warm` saw fresh solves


def _print_runtime_summary(runner: BatchRunner) -> None:
    stats = runner.cache_stats()
    line = f"# runtime: {runner.describe()}"
    if runner.cache is not None:
        line += f" — cache: {stats.hits} hits / {stats.misses} misses"
    print(line)


def _open_store(args: argparse.Namespace) -> Optional[ResultStore]:
    """The persistent store the run should use, honouring ``--no-cache``.

    ``--no-cache`` disables *both* caching layers: combining it with
    ``--store`` prints an explicit note and runs with neither, instead of
    silently keeping one layer (or resetting its stats) behind the user's
    back.
    """
    path = getattr(args, "store", None)
    if not path:
        return None
    if getattr(args, "no_cache", False):
        print("# --no-cache: solve cache and result store both bypassed")
        return None
    return ResultStore(path)


def _print_store_summary(result: ResultSet) -> None:
    metadata = result.metadata
    if "store_hits" in metadata:
        print(
            f"# store: {metadata['store_hits']} hits / "
            f"{metadata['store_misses']} misses / {metadata['store_puts']} puts"
        )


def _split_names(values: Optional[Sequence[str]]) -> tuple:
    """Flatten name lists given space- and/or comma-separated.

    ``--protocols xmac lmac`` and ``--protocols xmac,lmac`` (or any mix)
    yield the same tuple; ``None``/empty stays empty (the kind's default).
    """
    if not values:
        return ()
    names = []
    for value in values:
        names.extend(part.strip() for part in value.split(",") if part.strip())
    return tuple(names)


def _scenario_ref(args: argparse.Namespace) -> dict:
    """The inline-scenario mapping a subcommand's scenario arguments describe."""
    return {
        "depth": args.depth,
        "density": args.density,
        "sampling_period": args.sampling_period,
        "radio": args.radio,
    }


def _runtime_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {"workers": args.workers, "cache": not args.no_cache}
    if getattr(args, "sim_engine", None):
        kwargs["sim_engine"] = args.sim_engine
    if getattr(args, "solver_method", None):
        kwargs["solver_method"] = args.solver_method
    return kwargs


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--depth", type=int, default=5, help="number of rings D (default 5)")
    parser.add_argument("--density", type=int, default=8, help="neighbourhood size C (default 8)")
    parser.add_argument(
        "--sampling-period",
        type=float,
        default=3600.0,
        help="application sampling period in seconds (default 3600)",
    )
    parser.add_argument("--radio", default="cc2420", help="radio preset (cc2420, cc1100, tr1001)")
    parser.add_argument(
        "--grid-points",
        type=int,
        default=60,
        help="grid resolution per parameter dimension for the hybrid solver",
    )


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the solves (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the solve cache (every solve is recomputed); "
            "also bypasses --store"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent content-addressed result store directory "
        "(read-through/write-behind; created if missing)",
    )
    parser.add_argument(
        "--sim-engine",
        choices=("scalar", "batched"),
        default=None,
        help="simulation engine for packet-level replications "
        "(bit-identical results; batched is faster for X-MAC/LMAC)",
    )
    parser.add_argument(
        "--solver-method",
        choices=("exhaustive", "adaptive"),
        default=None,
        help="grid stage of the game solver (identical solutions; "
        "adaptive evaluates a fraction of the grid)",
    )


def _write_optional_csv(result: ResultSet, path: Optional[str]) -> None:
    if path:
        written = result.to_csv(path)
        print(f"# wrote {written}")


def _cmd_protocols(_: argparse.Namespace) -> int:
    for name in available_protocols():
        print(name)
    return EXIT_OK


def _cmd_scenarios(_: argparse.Namespace) -> int:
    rows = [dict(preset.describe()) for preset in scenario_presets()]
    print(format_table(rows))
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_file(args.spec)
    if args.workers is not None:
        spec = spec.with_runtime(workers=args.workers)
    if args.no_cache:
        spec = spec.with_runtime(cache=False)
    if args.sim_engine is not None:
        spec = spec.with_runtime(sim_engine=args.sim_engine)
    if args.solver_method is not None:
        spec = spec.with_runtime(solver_method=args.solver_method)
    plan = plan_experiment(spec)
    if args.shard:
        try:
            index_text, _, count_text = args.shard.partition("/")
            index, count = int(index_text), int(count_text)
        except ValueError:
            raise ConfigurationError(
                f"--shard must look like INDEX/COUNT (e.g. 0/4), got {args.shard!r}"
            ) from None
        plan = plan.shard(index, count)
    title = f" {spec.name!r}" if spec.name else ""
    print(f"# spec{title}: {plan.describe()} — sha256 {spec.spec_hash()[:12]}")
    if args.plan_only:
        print(format_table(plan.rows()))
        return EXIT_OK
    store = _open_store(args)
    if args.require_warm and store is None:
        raise ConfigurationError(
            "--require-warm needs --store (and is incompatible with --no-cache)"
        )
    runner = runner_for(spec, store=store)
    result = run_experiment(plan, runner=runner)
    print(format_table(result.rows()))
    _write_optional_csv(result, args.csv)
    if args.out:
        written = result.to_json(args.out)
        print(f"# wrote {written}")
    failed = result.failed_records
    if failed:
        labels = ", ".join(
            f"{record.unit.scenario}/{record.unit.protocol}" for record in failed
        )
        print(f"# units without a passing result: {labels}")
    _print_store_summary(result)
    _print_runtime_summary(runner)
    if args.require_warm:
        fresh = int(result.metadata.get("store_misses", 0)) + int(
            result.metadata.get("store_puts", 0)
        )
        if fresh:
            print(
                f"# --require-warm: store was not warm "
                f"({result.metadata.get('store_misses', 0)} misses, "
                f"{result.metadata.get('store_puts', 0)} puts)",
                file=sys.stderr,
            )
            return EXIT_NOT_WARM
        print("# --require-warm: satisfied (zero fresh results)")
    return EXIT_OK


def _cmd_solve(args: argparse.Namespace) -> int:
    spec = (
        ExperimentSpec.experiment("solve")
        .with_scenario(_scenario_ref(args))
        .with_protocols(args.protocol)
        .with_requirements(energy_budget=args.energy_budget, max_delay=args.max_delay)
        .with_solver(grid_points=args.grid_points)
    )
    result = run_experiment(spec)
    solution = result.records[0].value
    print(f"# {solution.protocol} — Ebudget={args.energy_budget} J/s, Lmax={args.max_delay} s")
    print(format_table(result.rows()))
    print("# bargaining parameters:", dict(solution.bargaining.point.parameters))
    return EXIT_OK


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = (
        ExperimentSpec.experiment("sweep")
        .with_scenario(_scenario_ref(args))
        .with_protocols(args.protocol)
        .with_sweep(args.vary, [float(value) for value in args.values])
        .with_requirements(energy_budget=args.energy_budget, max_delay=args.max_delay)
        .with_solver(grid_points=args.grid_points)
        .with_runtime(**_runtime_kwargs(args))
    )
    runner = runner_for(spec, store=_open_store(args))
    result = run_experiment(spec, runner=runner)
    print(format_table(result.rows()))
    _write_optional_csv(result, args.csv)
    sweep = next(iter(result.raw.values()))
    if sweep.infeasible_values:
        print(f"# infeasible values: {sweep.infeasible_values}")
    _print_store_summary(result)
    _print_runtime_summary(runner)
    return EXIT_OK


def _cmd_figure(args: argparse.Namespace, which: int) -> int:
    spec = (
        ExperimentSpec.experiment(f"figure{which}")
        .with_solver(grid_points=args.grid_points)
        .with_runtime(**_runtime_kwargs(args))
    )
    runner = runner_for(spec, store=_open_store(args))
    result = run_experiment(spec, runner=runner)
    print(format_table(result.rows()))
    _write_optional_csv(result, args.csv)
    _print_store_summary(result)
    _print_runtime_summary(runner)
    return EXIT_OK


def _cmd_suite(args: argparse.Namespace) -> int:
    spec = (
        ExperimentSpec.experiment("suite")
        .with_scenarios(*_split_names(args.scenarios))
        .with_protocols(*_split_names(args.protocols))
        .with_solver(grid_points=args.grid_points)
        .with_runtime(**_runtime_kwargs(args))
    )
    if args.energy_budget is not None or args.max_delay is not None:
        spec = spec.with_requirements(
            energy_budget=args.energy_budget, max_delay=args.max_delay
        )
    plan = plan_experiment(spec)
    print(
        f"# scenario suite: {len(plan.scenario_names)} scenarios × "
        f"{len(plan.protocol_names)} protocols = {plan.count} games"
    )
    runner = runner_for(spec, store=_open_store(args))
    result = run_experiment(plan, runner=runner)
    print(format_table(result.rows()))
    _write_optional_csv(result, args.csv)
    infeasible = result.raw.infeasible_cells
    if infeasible:
        pairs = ", ".join(f"{cell.scenario}/{cell.protocol}" for cell in infeasible)
        print(f"# infeasible pairs: {pairs}")
    _print_store_summary(result)
    _print_runtime_summary(runner)
    return EXIT_OK


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = (
        ExperimentSpec.experiment("validate")
        .with_scenario(_scenario_ref(args))
        .with_protocols(args.protocol)
        .with_simulation(horizon=args.horizon, seed=args.seed)
    )
    if args.sim_engine is not None:
        spec = spec.with_runtime(sim_engine=args.sim_engine)
    result = run_experiment(spec)
    print(format_table(result.rows()))
    return EXIT_OK


def _cmd_validate_campaign(args: argparse.Namespace) -> int:
    spec = (
        ExperimentSpec.experiment("campaign")
        .with_scenarios(*_split_names(args.scenarios))
        .with_protocols(*_split_names(args.protocols))
        .with_campaign(
            replications=args.replications,
            base_seed=args.base_seed,
            horizon=args.horizon,
            confidence=args.confidence,
        )
        .with_solver(grid_points=args.grid_points)
        .with_runtime(**_runtime_kwargs(args))
    )
    plan = plan_experiment(spec)
    replications = spec.campaign.replications
    print(
        f"# validation campaign: {len(plan.scenario_names)} scenarios × "
        f"{len(plan.protocol_names)} protocols × {replications} replications "
        f"= {plan.count * replications} simulations"
    )
    runner = runner_for(spec, store=_open_store(args))
    result = run_experiment(plan, runner=runner)
    print(format_table(result.rows()))
    if args.out:
        path = write_campaign(result.raw, args.out)
        print(f"# wrote {path}")
    _write_optional_csv(result, args.csv)
    failed = result.raw.failed_cells
    if failed:
        pairs = ", ".join(f"{cell.scenario}/{cell.protocol}" for cell in failed)
        print(f"# cells with failed checks: {pairs}")
    _print_store_summary(result)
    _print_runtime_summary(runner)
    return EXIT_OK


def _cmd_store_merge(args: argparse.Namespace) -> int:
    report = merge_stores(args.sources, args.out)
    print(
        f"# merged {report.sources} store(s) into {args.out}: "
        f"{report.written} written, {report.shared} already shared"
    )
    return EXIT_OK


def _cmd_store_verify(args: argparse.Namespace) -> int:
    store = ResultStore(args.store_dir, create=False)
    report = store.verify()
    if report.ok:
        print(f"# verified {report.checked} record(s): all clean")
        return EXIT_OK
    for digest, reason in report.corrupt:
        print(f"# corrupt {digest[:12]}…: {reason}")
    print(f"# verified {report.checked} record(s): {len(report.corrupt)} corrupt")
    return EXIT_CORRUPT


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.store_dir, create=False)
    report = store.gc(drop_corrupt=args.drop_corrupt)
    print(
        f"# gc {args.store_dir}: removed {report.tmp_removed} temp file(s), "
        f"{report.corrupt_removed} corrupt record(s)"
    )
    return EXIT_OK


def _cmd_store_stats(args: argparse.Namespace) -> int:
    store = ResultStore(args.store_dir, create=False)
    stats = store.stats()
    counts = store.counts_by_kind()
    parts = ", ".join(f"{kind}: {count}" for kind, count in sorted(counts.items())) or "empty"
    print(
        f"# store {args.store_dir}: {stats.records} record(s) ({parts}), "
        f"{stats.bytes} bytes"
    )
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ExperimentService

    service = ExperimentService(
        store_dir=args.store,
        queue_dir=args.queue,
        host=args.host,
        port=args.port,
        workers=args.workers,
    )
    service.start()
    try:
        print(f"# serving on http://{service.host}:{service.port}/v1/ — "
              f"{args.workers} worker(s), store {args.store}")
        if service.queue.requeued:
            print(f"# journal replay re-queued {service.queue.requeued} job(s)")
        service.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down")
    finally:
        service.stop()
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mac-game",
        description="Game-theoretic energy-delay balancing for duty-cycled MAC protocols",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="execute a declarative experiment spec (.json or .toml)"
    )
    run_parser.add_argument("spec", help="path to the experiment spec file")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the spec's worker count (1 = serial, 0 = one per CPU)",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="override the spec to disable the solve cache (bypasses --store too)",
    )
    run_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent content-addressed result store directory "
        "(read-through/write-behind; created if missing)",
    )
    run_parser.add_argument(
        "--require-warm",
        action="store_true",
        help="exit 3 unless the run was answered entirely from --store "
        "(zero fresh solves/simulations)",
    )
    run_parser.add_argument(
        "--plan-only",
        action="store_true",
        help="print the expanded work units without running anything",
    )
    run_parser.add_argument(
        "--shard",
        default=None,
        metavar="INDEX/COUNT",
        help="run only one round-robin shard of the plan (e.g. 0/4)",
    )
    run_parser.add_argument("--csv", default=None, help="optional CSV output path")
    run_parser.add_argument(
        "--out", default=None, help="write the versioned result JSON to this path"
    )
    run_parser.add_argument(
        "--sim-engine",
        choices=("scalar", "batched"),
        default=None,
        help="override the spec's simulation engine (bit-identical results)",
    )
    run_parser.add_argument(
        "--solver-method",
        choices=("exhaustive", "adaptive"),
        default=None,
        help="override the spec's grid-stage solver method "
        "(identical solutions; adaptive evaluates a fraction of the grid)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    protocols_parser = subparsers.add_parser("protocols", help="list available protocols")
    protocols_parser.set_defaults(handler=_cmd_protocols)

    solve_parser = subparsers.add_parser("solve", help="solve the game for one protocol")
    solve_parser.add_argument(
        "protocol", help=f"protocol name ({', '.join(available_protocols())})"
    )
    solve_parser.add_argument("--energy-budget", type=float, default=0.06)
    solve_parser.add_argument("--max-delay", type=float, default=6.0)
    _add_scenario_arguments(solve_parser)
    solve_parser.set_defaults(handler=_cmd_solve)

    sweep_parser = subparsers.add_parser("sweep", help="sweep a requirement")
    sweep_parser.add_argument("protocol")
    sweep_parser.add_argument("--vary", choices=("max-delay", "energy-budget"), required=True)
    sweep_parser.add_argument("--values", nargs="+", required=True)
    sweep_parser.add_argument("--energy-budget", type=float, default=0.06)
    sweep_parser.add_argument("--max-delay", type=float, default=6.0)
    sweep_parser.add_argument("--csv", default=None, help="optional CSV output path")
    _add_scenario_arguments(sweep_parser)
    _add_runtime_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    figure1_parser = subparsers.add_parser("figure1", help="regenerate the paper's Figure 1")
    figure1_parser.add_argument("--csv", default=None)
    _add_scenario_arguments(figure1_parser)
    _add_runtime_arguments(figure1_parser)
    figure1_parser.set_defaults(handler=lambda args: _cmd_figure(args, 1))

    figure2_parser = subparsers.add_parser("figure2", help="regenerate the paper's Figure 2")
    figure2_parser.add_argument("--csv", default=None)
    _add_scenario_arguments(figure2_parser)
    _add_runtime_arguments(figure2_parser)
    figure2_parser.set_defaults(handler=lambda args: _cmd_figure(args, 2))

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list the scenario presets of the library"
    )
    scenarios_parser.set_defaults(handler=_cmd_scenarios)

    suite_parser = subparsers.add_parser(
        "suite", help="run every (scenario × protocol) game of the scenario library"
    )
    suite_parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"scenario presets to run (default: all — {', '.join(available_scenarios())})",
    )
    suite_parser.add_argument(
        "--protocols",
        nargs="+",
        default=None,
        metavar="NAME",
        help="protocols to run, space- or comma-separated (default: all registered)",
    )
    suite_parser.add_argument(
        "--energy-budget",
        type=float,
        default=None,
        help="override every preset's suggested energy budget (J/s)",
    )
    suite_parser.add_argument(
        "--max-delay",
        type=float,
        default=None,
        help="override every preset's suggested delay bound (s)",
    )
    suite_parser.add_argument(
        "--grid-points",
        type=int,
        default=60,
        help="grid resolution per parameter dimension for the hybrid solver",
    )
    suite_parser.add_argument("--csv", default=None, help="optional CSV output path")
    _add_runtime_arguments(suite_parser)
    suite_parser.set_defaults(handler=_cmd_suite)

    validate_parser = subparsers.add_parser(
        "validate", help="compare the analytical model against the simulator"
    )
    validate_parser.add_argument("protocol")
    validate_parser.add_argument("--horizon", type=float, default=2000.0)
    validate_parser.add_argument("--seed", type=int, default=1)
    validate_parser.add_argument(
        "--sim-engine",
        choices=("scalar", "batched"),
        default=None,
        help="simulation engine (bit-identical results)",
    )
    _add_scenario_arguments(validate_parser)
    validate_parser.set_defaults(handler=_cmd_validate)

    campaign_parser = subparsers.add_parser(
        "validate-campaign",
        help="replicated Monte-Carlo model-vs-simulation campaign over the scenario suite",
    )
    campaign_parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"scenario presets to cover (default: all — {', '.join(available_scenarios())})",
    )
    campaign_parser.add_argument(
        "--protocols",
        nargs="+",
        default=None,
        metavar="NAME",
        help=(
            "protocols to cover, space- or comma-separated (default: all "
            f"with a simulated behaviour — {', '.join(available_mac_protocols())})"
        ),
    )
    campaign_parser.add_argument(
        "--replications",
        type=int,
        default=5,
        help="independently seeded simulation runs per (scenario, protocol) cell",
    )
    campaign_parser.add_argument(
        "--base-seed",
        type=int,
        default=1,
        help="base seed every replication seed is derived from",
    )
    campaign_parser.add_argument(
        "--horizon",
        type=float,
        default=1500.0,
        help="simulated duration of each replication in seconds",
    )
    campaign_parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="two-sided confidence level of the Student-t intervals",
    )
    campaign_parser.add_argument(
        "--grid-points",
        type=int,
        default=40,
        help="grid resolution per parameter dimension for the hybrid solver",
    )
    campaign_parser.add_argument(
        "--out",
        default=None,
        help="write the versioned JSON campaign artifact to this path",
    )
    campaign_parser.add_argument("--csv", default=None, help="optional CSV output path")
    _add_runtime_arguments(campaign_parser)
    campaign_parser.set_defaults(handler=_cmd_validate_campaign)

    store_parser = subparsers.add_parser(
        "store", help="maintain persistent content-addressed result stores"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    merge_parser = store_sub.add_parser(
        "merge", help="merge stores (e.g. from sharded runs) into one"
    )
    merge_parser.add_argument("sources", nargs="+", help="source store directories")
    merge_parser.add_argument(
        "--out", required=True, help="destination store directory (created if missing)"
    )
    merge_parser.set_defaults(handler=_cmd_store_merge)

    verify_parser = store_sub.add_parser(
        "verify", help="check the integrity hash of every record"
    )
    verify_parser.add_argument("store_dir", help="store directory to verify")
    verify_parser.set_defaults(handler=_cmd_store_verify)

    gc_parser = store_sub.add_parser(
        "gc", help="remove stale temp files (and, on request, corrupt records)"
    )
    gc_parser.add_argument("store_dir", help="store directory to clean")
    gc_parser.add_argument(
        "--drop-corrupt",
        action="store_true",
        help="also delete records that fail their integrity check",
    )
    gc_parser.set_defaults(handler=_cmd_store_gc)

    stats_parser = store_sub.add_parser("stats", help="print record counts by kind")
    stats_parser.add_argument("store_dir", help="store directory to inspect")
    stats_parser.set_defaults(handler=_cmd_store_stats)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the experiment service: an HTTP job server executing "
        "queued specs on a shared result store",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (default 8642; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads draining the job queue (default 2)",
    )
    serve_parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="persistent result store shared by every job (created if missing)",
    )
    serve_parser.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="job queue directory (journal + results; default: STORE/jobs)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return int(args.handler(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
