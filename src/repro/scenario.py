"""Scenario: the environment a MAC protocol is evaluated in.

A :class:`Scenario` bundles everything the analytical protocol models and the
simulator need besides the protocol's own tunable parameters: the ring
topology, the application traffic, the radio hardware and the frame sizes.
It is deliberately immutable so that a scenario can be shared between the two
virtual players, the sweeps and the simulator without accidental mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.network.packets import PacketModel
from repro.network.radio import RadioModel, cc2420
from repro.network.topology import RingTopology
from repro.network.traffic import TrafficModel
from repro.units import require_positive


@dataclass(frozen=True)
class Scenario:
    """Evaluation environment shared by all protocol models.

    Attributes:
        topology: Analytical ring topology (depth ``D``, density ``C``).
        sampling_rate: Application sampling rate ``Fs`` in packets/s/node.
        radio: Radio hardware model.
        packets: Frame-size model.
        burstiness: Traffic burst factor ``beta >= 1``.  Samples are emitted
            in bursts of ``beta`` back-to-back packets: mean rates (and thus
            energy) are unchanged, peak rates (and thus the capacity
            constraints) scale by ``beta``.  ``1.0`` is strictly periodic.
    """

    topology: RingTopology = field(default_factory=lambda: RingTopology(depth=5, density=8))
    sampling_rate: float = 1.0 / 300.0
    radio: RadioModel = field(default_factory=cc2420)
    packets: PacketModel = field(default_factory=PacketModel)
    burstiness: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.topology, RingTopology):
            raise ConfigurationError(
                f"topology must be a RingTopology, got {type(self.topology).__name__}"
            )
        if not isinstance(self.radio, RadioModel):
            raise ConfigurationError(
                f"radio must be a RadioModel, got {type(self.radio).__name__}"
            )
        if not isinstance(self.packets, PacketModel):
            raise ConfigurationError(
                f"packets must be a PacketModel, got {type(self.packets).__name__}"
            )
        try:
            require_positive("sampling_rate", self.sampling_rate)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        if not isinstance(self.burstiness, (int, float)) or self.burstiness < 1.0:
            raise ConfigurationError(
                f"burstiness must be a number >= 1, got {self.burstiness!r}"
            )

    # ------------------------------------------------------------------ #
    # Derived objects
    # ------------------------------------------------------------------ #

    @property
    def traffic(self) -> TrafficModel:
        """Traffic model induced by the topology, sampling rate and burstiness."""
        return TrafficModel(self.topology, self.sampling_rate, self.burstiness)

    @property
    def depth(self) -> int:
        """Number of rings ``D``."""
        return self.topology.depth

    @property
    def density(self) -> int:
        """Unit-disk neighbourhood size ``C``."""
        return self.topology.density

    @property
    def sampling_period(self) -> float:
        """Application sampling period ``1/Fs`` in seconds."""
        return 1.0 / self.sampling_rate

    # ------------------------------------------------------------------ #
    # Variations
    # ------------------------------------------------------------------ #

    def with_topology(self, depth: Optional[int] = None, density: Optional[int] = None) -> "Scenario":
        """Return a copy with a different ring topology."""
        new_depth = self.topology.depth if depth is None else depth
        new_density = self.topology.density if density is None else density
        return replace(self, topology=RingTopology(depth=new_depth, density=new_density))

    def with_sampling_rate(self, sampling_rate: float) -> "Scenario":
        """Return a copy with a different application sampling rate."""
        return replace(self, sampling_rate=sampling_rate)

    def with_radio(self, radio: RadioModel) -> "Scenario":
        """Return a copy with a different radio model."""
        return replace(self, radio=radio)

    def with_packets(self, packets: PacketModel) -> "Scenario":
        """Return a copy with a different frame-size model."""
        return replace(self, packets=packets)

    def with_burstiness(self, burstiness: float) -> "Scenario":
        """Return a copy with a different traffic burst factor."""
        return replace(self, burstiness=burstiness)

    def describe(self) -> Mapping[str, object]:
        """Structured summary for reports and experiment headers."""
        return {
            "depth": self.topology.depth,
            "density": self.topology.density,
            "total_nodes": self.topology.total_nodes(),
            "sampling_rate_hz": self.sampling_rate,
            "sampling_period_s": self.sampling_period,
            "burstiness": self.burstiness,
            "radio": self.radio.name,
            "payload_bytes": self.packets.payload_bytes,
        }


def default_scenario() -> Scenario:
    """The default evaluation scenario used by the figure reproductions.

    Five rings, eight neighbours per node, one sample per node every five
    minutes on a CC2420-class radio with 32-byte payloads.  See DESIGN.md §3.
    """
    return Scenario(
        topology=RingTopology(depth=5, density=8),
        sampling_rate=1.0 / 300.0,
        radio=cc2420(),
        packets=PacketModel(payload_bytes=32.0),
    )
