"""Random node deployments.

The discrete-event simulator and the scalability analysis need concrete
topologies.  This module generates uniform-density deployments on a disk
around the sink whose *expected* ring structure matches a given
:class:`~repro.network.topology.RingTopology`, so that analytical predictions
and simulation results can be compared apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topology import RingTopology, UnitDiskDeployment, build_gathering_tree
from repro.units import require_positive


@dataclass(frozen=True)
class DeploymentConfig:
    """Parameters of a random uniform deployment.

    Attributes:
        depth: Target number of rings ``D``.
        density: Target unit-disk neighbourhood size ``C``.
        radius: Communication radius (metres); purely a scale factor.
        seed: Seed for the pseudo-random generator, for reproducibility.
        max_attempts: How many times to re-sample if the generated graph is
            disconnected (sparse deployments occasionally are).
    """

    depth: int = 5
    density: int = 8
    radius: float = 50.0
    seed: int = 1
    max_attempts: int = 25

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {self.depth!r}")
        if self.density < 1:
            raise ConfigurationError(f"density must be >= 1, got {self.density!r}")
        require_positive("radius", self.radius)
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")

    @property
    def target_node_count(self) -> int:
        """Expected number of sensor nodes, ``C * D^2``."""
        return int(self.density * self.depth**2)

    @property
    def field_radius(self) -> float:
        """Radius of the deployment disk, ``D`` communication radii."""
        return self.depth * self.radius


def _sample_positions(config: DeploymentConfig, rng: np.random.Generator) -> Dict[int, Tuple[float, float]]:
    """Sample sensor positions uniformly on the deployment disk."""
    count = config.target_node_count
    # Uniform sampling on a disk: radius ~ sqrt(U) * R, angle ~ U * 2*pi.
    radii = config.field_radius * np.sqrt(rng.uniform(0.0, 1.0, size=count))
    angles = rng.uniform(0.0, 2.0 * math.pi, size=count)
    positions: Dict[int, Tuple[float, float]] = {0: (0.0, 0.0)}
    for index in range(count):
        positions[index + 1] = (
            float(radii[index] * math.cos(angles[index])),
            float(radii[index] * math.sin(angles[index])),
        )
    return positions


def _unit_disk_graph(positions: Dict[int, Tuple[float, float]], radius: float) -> nx.Graph:
    """Build the unit-disk connectivity graph for the given positions."""
    graph = nx.Graph()
    graph.add_nodes_from(positions)
    ids = sorted(positions)
    coords = np.array([positions[node] for node in ids])
    for i, node_i in enumerate(ids):
        deltas = coords[i + 1 :] - coords[i]
        distances = np.hypot(deltas[:, 0], deltas[:, 1])
        for offset, distance in enumerate(distances):
            if distance <= radius:
                graph.add_edge(node_i, ids[i + 1 + offset])
    return graph


def generate_deployment(
    config: Optional[DeploymentConfig] = None,
    *,
    depth: Optional[int] = None,
    density: Optional[int] = None,
    seed: Optional[int] = None,
) -> UnitDiskDeployment:
    """Generate a random connected deployment matching the ring model.

    Either pass a full :class:`DeploymentConfig` or override ``depth``,
    ``density`` and ``seed`` individually.

    The generator re-samples (with incremented seeds) until the unit-disk
    graph is connected, because the analytical model assumes every node has a
    path to the sink.

    Raises:
        ConfigurationError: if no connected deployment is found within
            ``config.max_attempts`` attempts.
    """
    if config is None:
        config = DeploymentConfig()
    overrides = {}
    if depth is not None:
        overrides["depth"] = depth
    if density is not None:
        overrides["density"] = density
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = DeploymentConfig(
            depth=overrides.get("depth", config.depth),
            density=overrides.get("density", config.density),
            radius=config.radius,
            seed=overrides.get("seed", config.seed),
            max_attempts=config.max_attempts,
        )

    last_error: Optional[Exception] = None
    for attempt in range(config.max_attempts):
        rng = np.random.default_rng(config.seed + attempt)
        positions = _sample_positions(config, rng)
        graph = _unit_disk_graph(positions, config.radius)
        if not nx.is_connected(graph):
            last_error = ConfigurationError("sampled unit-disk graph is disconnected")
            continue
        tree = build_gathering_tree(graph, sink=0)
        deployment = UnitDiskDeployment(
            positions=positions,
            radius=config.radius,
            graph=graph,
            tree=tree,
        )
        return deployment
    raise ConfigurationError(
        f"could not generate a connected deployment after {config.max_attempts} "
        f"attempts (depth={config.depth}, density={config.density}); "
        f"last error: {last_error}"
    )


def ring_deployment(
    depth: int,
    density: int,
    radius: float = 50.0,
    spacing_factor: float = 0.75,
    seed: int = 0,
    angular_jitter: float = 0.05,
) -> UnitDiskDeployment:
    """Deterministic deployment that instantiates the analytical ring model.

    Ring ``d`` (d = 1..depth) holds exactly ``density * (2d - 1)`` nodes,
    evenly spread on a circle of radius ``d * spacing_factor * radius`` with a
    small angular jitter.  By construction every node's hop distance to the
    sink equals its ring index, ring populations match the analytical
    topology, and the gathering tree splits relayed traffic evenly — which is
    exactly what the closed-form models assume, making this the default
    substrate for model-vs-simulation validation.

    Args:
        depth: Number of rings ``D``.
        density: Unit-disk neighbourhood size ``C``.
        radius: Communication radius.
        spacing_factor: Ring spacing as a fraction of the radius (must stay
            below ~0.8 so that every node finds a parent one ring inward).
        seed: Seed for the angular jitter.
        angular_jitter: Jitter amplitude as a fraction of the angular spacing.
    """
    if depth < 1 or density < 1:
        raise ConfigurationError("depth and density must be >= 1")
    require_positive("radius", radius)
    if not (0.1 <= spacing_factor <= 0.8):
        raise ConfigurationError(
            f"spacing_factor must lie in [0.1, 0.8], got {spacing_factor!r}"
        )
    rng = np.random.default_rng(seed)
    positions: Dict[int, Tuple[float, float]] = {0: (0.0, 0.0)}
    node_id = 1
    for ring in range(1, depth + 1):
        ring_radius = ring * spacing_factor * radius
        count = density * (2 * ring - 1)
        base_angles = np.linspace(0.0, 2.0 * math.pi, count, endpoint=False)
        jitter = rng.uniform(-angular_jitter, angular_jitter, size=count) * (
            2.0 * math.pi / count
        )
        for angle in base_angles + jitter:
            positions[node_id] = (
                float(ring_radius * math.cos(angle)),
                float(ring_radius * math.sin(angle)),
            )
            node_id += 1
    graph = _unit_disk_graph(positions, radius)
    if not nx.is_connected(graph):
        raise ConfigurationError(
            "ring deployment is disconnected; lower spacing_factor or raise density"
        )
    tree = build_gathering_tree(graph, sink=0)
    deployment = UnitDiskDeployment(
        positions=positions, radius=radius, graph=graph, tree=tree
    )
    if deployment.depth != depth:
        raise ConfigurationError(
            f"ring deployment produced depth {deployment.depth}, expected {depth}; "
            "lower spacing_factor"
        )
    return deployment


def chain_deployment(depth: int, spacing: Optional[float] = None, radius: float = 50.0) -> UnitDiskDeployment:
    """Deterministic single-chain deployment: sink — n1 — n2 — … — nD.

    Useful in unit tests and for validating the per-hop latency models: the
    topology has exactly one node per ring and no contention.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth!r}")
    require_positive("radius", radius)
    if spacing is None:
        spacing = 0.9 * radius
    if spacing > radius:
        raise ConfigurationError("spacing larger than radius would disconnect the chain")
    positions: Dict[int, Tuple[float, float]] = {
        node: (node * spacing, 0.0) for node in range(depth + 1)
    }
    graph = _unit_disk_graph(positions, radius)
    tree = build_gathering_tree(graph, sink=0)
    return UnitDiskDeployment(positions=positions, radius=radius, graph=graph, tree=tree)
