"""Traffic model.

Periodic, unsaturated traffic: every sensor node samples the environment at
rate ``Fs`` (packets per second) and forwards its own packets plus those of
its descendants toward the sink over the gathering tree.  Following the ring
abstraction (see :class:`repro.network.topology.RingTopology`), the load seen
by a node depends only on its ring ``d``:

* output rate ``F_out(d) = Fs * (D^2 - (d-1)^2) / (2d - 1)`` — own traffic
  plus relayed traffic,
* input rate ``F_in(d) = F_out(d) - Fs`` — relayed traffic only,
* background rate ``F_B(d)`` — traffic transmitted within the node's radio
  range but not addressed to it (what the node can *overhear*),
* input links ``I(d)`` — expected number of tree children.

These are the quantities the paper refers to as "the same input, output,
background traffic and input links equations ... derived in [3]".

Beyond the paper's strictly periodic workload, the model supports *bursty*
arrivals through a ``burstiness`` factor ``beta >= 1``: samples are emitted
in bursts of ``beta`` back-to-back packets (every ``beta`` sampling periods),
so the *mean* rates above are unchanged while the *peak* rates the MAC must
provision channel capacity for are ``beta`` times higher.  Energy models keep
using the mean rates (the long-run energy only depends on how many packets
flow); capacity constraints use the peak rates.  ``beta = 1`` recovers the
paper's periodic workload exactly (bit-identically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.network.topology import RingTopology
from repro.units import require_positive


@dataclass(frozen=True)
class RingTraffic:
    """Per-node traffic rates (packets per second) for one ring.

    Attributes:
        ring: Ring index ``d``.
        generated: Own sampling rate ``Fs``.
        output: Mean transmit rate ``F_out(d)``.
        input: Mean receive rate ``F_in(d)`` (traffic from children).
        background: Overhearable rate ``F_B(d)`` from neighbours whose
            transmissions are not addressed to this node.
        input_links: Expected number of tree children ``I(d)``.
        peak_output: Peak transmit rate the MAC must provision capacity
            for; ``burstiness * output``.  Defaults to ``output`` (periodic
            traffic).
        peak_input: Peak receive rate; ``burstiness * input``.  Defaults to
            ``input``.
    """

    ring: int
    generated: float
    output: float
    input: float
    background: float
    input_links: float
    peak_output: Optional[float] = None
    peak_input: Optional[float] = None

    def __post_init__(self) -> None:
        if self.peak_output is None:
            object.__setattr__(self, "peak_output", self.output)
        if self.peak_input is None:
            object.__setattr__(self, "peak_input", self.input)
        for name in ("generated", "output", "input", "background", "input_links"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"RingTraffic.{name} must be >= 0, got {value!r}")
        if self.output + 1e-12 < self.input + self.generated:
            raise ConfigurationError(
                "flow conservation violated: output < input + generated "
                f"({self.output!r} < {self.input!r} + {self.generated!r})"
            )
        if self.peak_output + 1e-12 < self.output or self.peak_input + 1e-12 < self.input:
            raise ConfigurationError(
                "peak rates must not be below the mean rates: "
                f"peak_output={self.peak_output!r} < output={self.output!r} or "
                f"peak_input={self.peak_input!r} < input={self.input!r}"
            )

    @property
    def relay_fraction(self) -> float:
        """Fraction of the transmitted traffic that is relayed (not own)."""
        if self.output == 0:
            return 0.0
        return self.input / self.output


class TrafficModel:
    """Periodic (optionally bursty) traffic load over a ring topology.

    Args:
        topology: The analytical ring topology.
        sampling_rate: Application sampling rate ``Fs`` in packets per second
            per node (e.g. ``0.01`` for one reading every 100 s).
        burstiness: Burst factor ``beta >= 1``: samples are emitted in bursts
            of ``beta`` back-to-back packets, leaving the mean rates unchanged
            but multiplying the peak rates by ``beta``.  The default ``1.0``
            is the paper's strictly periodic workload.

    Raises:
        ConfigurationError: if the sampling rate is not strictly positive or
            the burstiness is below one.
    """

    def __init__(
        self,
        topology: RingTopology,
        sampling_rate: float,
        burstiness: float = 1.0,
    ) -> None:
        if not isinstance(topology, RingTopology):
            raise ConfigurationError(
                f"topology must be a RingTopology, got {type(topology).__name__}"
            )
        self._topology = topology
        try:
            self._sampling_rate = require_positive("sampling_rate", sampling_rate)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        if not isinstance(burstiness, (int, float)) or burstiness < 1.0:
            raise ConfigurationError(
                f"burstiness must be a number >= 1, got {burstiness!r}"
            )
        self._burstiness = float(burstiness)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def topology(self) -> RingTopology:
        """The ring topology this traffic model is defined over."""
        return self._topology

    @property
    def sampling_rate(self) -> float:
        """Application sampling rate ``Fs`` (packets per second per node)."""
        return self._sampling_rate

    @property
    def sampling_period(self) -> float:
        """Application sampling period ``1 / Fs`` in seconds."""
        return 1.0 / self._sampling_rate

    @property
    def burstiness(self) -> float:
        """Burst factor ``beta`` (``1.0`` for strictly periodic traffic)."""
        return self._burstiness

    # ------------------------------------------------------------------ #
    # Per-ring rates
    # ------------------------------------------------------------------ #

    def output_rate(self, ring: int) -> float:
        """Transmit rate ``F_out(d)`` of a node in ring ``d`` (packets/s)."""
        topo = self._topology
        topo._check_ring(ring)  # noqa: SLF001 - deliberate reuse of the validator
        descendants = topo.descendants_per_node(ring)
        return self._sampling_rate * (descendants + 1.0)

    def input_rate(self, ring: int) -> float:
        """Receive rate ``F_in(d)`` of a node in ring ``d`` (packets/s)."""
        return self.output_rate(ring) - self._sampling_rate

    def background_rate(self, ring: int) -> float:
        """Overhearable rate ``F_B(d)`` around a node in ring ``d`` (packets/s).

        A node has ``C`` neighbours; each transmits at roughly the ring's
        output rate, and the transmissions addressed to the node itself
        (``F_in``) are accounted separately as receptions.  The overhearable
        background is therefore ``C * F_out(d) - F_in(d)``, floored at zero.
        """
        overheard = self._topology.density * self.output_rate(ring) - self.input_rate(ring)
        return max(0.0, overheard)

    def input_links(self, ring: int) -> float:
        """Expected number of tree children ``I(d)`` of a node in ring ``d``."""
        return self._topology.children_per_node(ring)

    def peak_output_rate(self, ring: int) -> float:
        """Peak transmit rate ``beta * F_out(d)`` the MAC must absorb."""
        return self._burstiness * self.output_rate(ring)

    def peak_input_rate(self, ring: int) -> float:
        """Peak receive rate ``beta * F_in(d)`` the MAC must absorb."""
        return self._burstiness * self.input_rate(ring)

    def ring_traffic(self, ring: int) -> RingTraffic:
        """Bundle all per-ring quantities into a :class:`RingTraffic`."""
        return RingTraffic(
            ring=ring,
            generated=self._sampling_rate,
            output=self.output_rate(ring),
            input=self.input_rate(ring),
            background=self.background_rate(ring),
            input_links=self.input_links(ring),
            peak_output=self.peak_output_rate(ring),
            peak_input=self.peak_input_rate(ring),
        )

    def all_rings(self) -> Dict[int, RingTraffic]:
        """Return the :class:`RingTraffic` of every ring, keyed by ring index."""
        return {ring: self.ring_traffic(ring) for ring in self._topology.rings()}

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def bottleneck_output_rate(self) -> float:
        """Transmit rate of the most loaded node (ring 1)."""
        return self.output_rate(self._topology.bottleneck_ring)

    def sink_arrival_rate(self) -> float:
        """Aggregate packet arrival rate at the sink (packets per second)."""
        return self._sampling_rate * self._topology.total_nodes()

    def network_offered_load(self) -> float:
        """Total number of link transmissions per second across the network.

        Every packet generated in ring ``d`` crosses ``d`` links, so the
        offered load is ``Fs * sum_d d * C (2d - 1)``.
        """
        total = 0.0
        for ring in self._topology.rings():
            total += ring * self._topology.nodes_in_ring(ring)
        return self._sampling_rate * total

    def describe(self) -> Mapping[str, float]:
        """Summary used by reports and experiment headers."""
        return {
            "sampling_rate_hz": self._sampling_rate,
            "sampling_period_s": self.sampling_period,
            "burstiness": self._burstiness,
            "bottleneck_output_rate_hz": self.bottleneck_output_rate(),
            "peak_bottleneck_output_rate_hz": self.peak_output_rate(
                self._topology.bottleneck_ring
            ),
            "sink_arrival_rate_hz": self.sink_arrival_rate(),
            "network_offered_load_hz": self.network_offered_load(),
        }
