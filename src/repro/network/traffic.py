"""Traffic model.

Periodic, unsaturated traffic: every sensor node samples the environment at
rate ``Fs`` (packets per second) and forwards its own packets plus those of
its descendants toward the sink over the gathering tree.  Following the ring
abstraction (see :class:`repro.network.topology.RingTopology`), the load seen
by a node depends only on its ring ``d``:

* output rate ``F_out(d) = Fs * (D^2 - (d-1)^2) / (2d - 1)`` — own traffic
  plus relayed traffic,
* input rate ``F_in(d) = F_out(d) - Fs`` — relayed traffic only,
* background rate ``F_B(d)`` — traffic transmitted within the node's radio
  range but not addressed to it (what the node can *overhear*),
* input links ``I(d)`` — expected number of tree children.

These are the quantities the paper refers to as "the same input, output,
background traffic and input links equations ... derived in [3]".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.exceptions import ConfigurationError
from repro.network.topology import RingTopology
from repro.units import require_positive


@dataclass(frozen=True)
class RingTraffic:
    """Per-node traffic rates (packets per second) for one ring.

    Attributes:
        ring: Ring index ``d``.
        generated: Own sampling rate ``Fs``.
        output: Total transmit rate ``F_out(d)``.
        input: Total receive rate ``F_in(d)`` (traffic from children).
        background: Overhearable rate ``F_B(d)`` from neighbours whose
            transmissions are not addressed to this node.
        input_links: Expected number of tree children ``I(d)``.
    """

    ring: int
    generated: float
    output: float
    input: float
    background: float
    input_links: float

    def __post_init__(self) -> None:
        for name in ("generated", "output", "input", "background", "input_links"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"RingTraffic.{name} must be >= 0, got {value!r}")
        if self.output + 1e-12 < self.input + self.generated:
            raise ConfigurationError(
                "flow conservation violated: output < input + generated "
                f"({self.output!r} < {self.input!r} + {self.generated!r})"
            )

    @property
    def relay_fraction(self) -> float:
        """Fraction of the transmitted traffic that is relayed (not own)."""
        if self.output == 0:
            return 0.0
        return self.input / self.output


class TrafficModel:
    """Periodic traffic load over a ring topology.

    Args:
        topology: The analytical ring topology.
        sampling_rate: Application sampling rate ``Fs`` in packets per second
            per node (e.g. ``0.01`` for one reading every 100 s).

    Raises:
        ConfigurationError: if the sampling rate is not strictly positive.
    """

    def __init__(self, topology: RingTopology, sampling_rate: float) -> None:
        if not isinstance(topology, RingTopology):
            raise ConfigurationError(
                f"topology must be a RingTopology, got {type(topology).__name__}"
            )
        self._topology = topology
        try:
            self._sampling_rate = require_positive("sampling_rate", sampling_rate)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def topology(self) -> RingTopology:
        """The ring topology this traffic model is defined over."""
        return self._topology

    @property
    def sampling_rate(self) -> float:
        """Application sampling rate ``Fs`` (packets per second per node)."""
        return self._sampling_rate

    @property
    def sampling_period(self) -> float:
        """Application sampling period ``1 / Fs`` in seconds."""
        return 1.0 / self._sampling_rate

    # ------------------------------------------------------------------ #
    # Per-ring rates
    # ------------------------------------------------------------------ #

    def output_rate(self, ring: int) -> float:
        """Transmit rate ``F_out(d)`` of a node in ring ``d`` (packets/s)."""
        topo = self._topology
        topo._check_ring(ring)  # noqa: SLF001 - deliberate reuse of the validator
        descendants = topo.descendants_per_node(ring)
        return self._sampling_rate * (descendants + 1.0)

    def input_rate(self, ring: int) -> float:
        """Receive rate ``F_in(d)`` of a node in ring ``d`` (packets/s)."""
        return self.output_rate(ring) - self._sampling_rate

    def background_rate(self, ring: int) -> float:
        """Overhearable rate ``F_B(d)`` around a node in ring ``d`` (packets/s).

        A node has ``C`` neighbours; each transmits at roughly the ring's
        output rate, and the transmissions addressed to the node itself
        (``F_in``) are accounted separately as receptions.  The overhearable
        background is therefore ``C * F_out(d) - F_in(d)``, floored at zero.
        """
        overheard = self._topology.density * self.output_rate(ring) - self.input_rate(ring)
        return max(0.0, overheard)

    def input_links(self, ring: int) -> float:
        """Expected number of tree children ``I(d)`` of a node in ring ``d``."""
        return self._topology.children_per_node(ring)

    def ring_traffic(self, ring: int) -> RingTraffic:
        """Bundle all per-ring quantities into a :class:`RingTraffic`."""
        return RingTraffic(
            ring=ring,
            generated=self._sampling_rate,
            output=self.output_rate(ring),
            input=self.input_rate(ring),
            background=self.background_rate(ring),
            input_links=self.input_links(ring),
        )

    def all_rings(self) -> Dict[int, RingTraffic]:
        """Return the :class:`RingTraffic` of every ring, keyed by ring index."""
        return {ring: self.ring_traffic(ring) for ring in self._topology.rings()}

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def bottleneck_output_rate(self) -> float:
        """Transmit rate of the most loaded node (ring 1)."""
        return self.output_rate(self._topology.bottleneck_ring)

    def sink_arrival_rate(self) -> float:
        """Aggregate packet arrival rate at the sink (packets per second)."""
        return self._sampling_rate * self._topology.total_nodes()

    def network_offered_load(self) -> float:
        """Total number of link transmissions per second across the network.

        Every packet generated in ring ``d`` crosses ``d`` links, so the
        offered load is ``Fs * sum_d d * C (2d - 1)``.
        """
        total = 0.0
        for ring in self._topology.rings():
            total += ring * self._topology.nodes_in_ring(ring)
        return self._sampling_rate * total

    def describe(self) -> Mapping[str, float]:
        """Summary used by reports and experiment headers."""
        return {
            "sampling_rate_hz": self._sampling_rate,
            "sampling_period_s": self.sampling_period,
            "bottleneck_output_rate_hz": self.bottleneck_output_rate(),
            "sink_arrival_rate_hz": self.sink_arrival_rate(),
            "network_offered_load_hz": self.network_offered_load(),
        }
