"""Topology models.

The paper adopts the ring abstraction of Langendoen & Meier: nodes are
deployed with uniform density on the plane, communicate over unit-disk links
(each unit disk contains ``C + 1`` nodes) and are layered into rings
``d = 1 .. D`` by their minimum hop distance to a single static sink at
``d = 0``.  A shortest-path spanning tree carries all traffic toward the
sink.

Two levels of fidelity are provided:

* :class:`RingTopology` — the purely analytical abstraction (only ``D`` and
  ``C`` matter).  This is what the closed-form energy/latency models consume.
* :class:`UnitDiskDeployment` — a concrete random deployment with node
  positions, a unit-disk connectivity graph (built with :mod:`networkx`) and
  a BFS gathering tree.  This is what the discrete-event simulator consumes,
  and it can be *summarized back* into a :class:`RingTopology` so the
  analytical and simulated worlds stay comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import ConfigurationError
from repro.units import require_positive


@dataclass(frozen=True)
class RingTopology:
    """Analytical ring topology.

    Attributes:
        depth: Number of rings ``D`` (the maximum hop distance to the sink).
        density: Unit-disk neighbourhood size ``C``: a unit disk contains
            ``C + 1`` nodes, i.e. every node has (on average) ``C``
            neighbours.
    """

    depth: int
    density: int

    def __post_init__(self) -> None:
        if not isinstance(self.depth, int) or self.depth < 1:
            raise ConfigurationError(
                f"RingTopology.depth must be an integer >= 1, got {self.depth!r}"
            )
        if not isinstance(self.density, int) or self.density < 1:
            raise ConfigurationError(
                f"RingTopology.density must be an integer >= 1, got {self.density!r}"
            )

    # ------------------------------------------------------------------ #
    # Ring population
    # ------------------------------------------------------------------ #

    def rings(self) -> range:
        """Iterate over ring indices ``1 .. D`` (the sink ring 0 is excluded)."""
        return range(1, self.depth + 1)

    def nodes_in_ring(self, ring: int) -> float:
        """Expected number of nodes in ring ``ring``.

        With uniform density and unit-disk radius ``r``, ring ``d`` is the
        annulus between radii ``(d-1)r`` and ``dr``; its area is
        ``pi r^2 (2d - 1)``, hence it contains ``C (2d - 1)`` nodes when the
        unit disk (area ``pi r^2``) contains ``C`` nodes besides the centre.
        """
        self._check_ring(ring)
        return float(self.density * (2 * ring - 1))

    def nodes_beyond_ring(self, ring: int) -> float:
        """Expected number of nodes strictly farther than ring ``ring``."""
        self._check_ring(ring)
        return float(self.density * (self.depth**2 - ring**2))

    def total_nodes(self) -> float:
        """Expected total number of nodes in the network (excluding the sink)."""
        return float(self.density * self.depth**2)

    def descendants_per_node(self, ring: int) -> float:
        """Expected number of descendants routed through a node in ring ``ring``.

        Nodes beyond ring ``d`` split their traffic evenly over the
        ``C (2d - 1)`` nodes of ring ``d``:
        ``(D^2 - d^2) / (2d - 1)`` descendants per node.
        """
        self._check_ring(ring)
        return (self.depth**2 - ring**2) / float(2 * ring - 1)

    def children_per_node(self, ring: int) -> float:
        """Expected number of direct children (input links) of a ring-``d`` node.

        Ring ``d + 1`` contains ``C (2d + 1)`` nodes which attach evenly to
        the ``C (2d - 1)`` nodes of ring ``d``; the innermost rings therefore
        fan in the most.  The outermost ring has no children.
        """
        self._check_ring(ring)
        if ring == self.depth:
            return 0.0
        return (2 * ring + 1) / float(2 * ring - 1)

    def _check_ring(self, ring: int) -> None:
        if not isinstance(ring, int) or not (1 <= ring <= self.depth):
            raise ConfigurationError(
                f"ring index must be an integer in [1, {self.depth}], got {ring!r}"
            )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    @property
    def bottleneck_ring(self) -> int:
        """Ring that carries the most traffic per node (always ring 1)."""
        return 1

    @property
    def delay_critical_ring(self) -> int:
        """Ring whose packets travel the most hops (always ring ``D``)."""
        return self.depth

    def describe(self) -> Mapping[str, float]:
        """Summary used in reports and experiment headers."""
        return {
            "depth": float(self.depth),
            "density": float(self.density),
            "total_nodes": self.total_nodes(),
            "ring1_relay_load": self.descendants_per_node(1) + 1.0,
        }


# ---------------------------------------------------------------------- #
# Concrete deployments
# ---------------------------------------------------------------------- #


@dataclass
class UnitDiskDeployment:
    """A concrete node deployment with unit-disk connectivity.

    Attributes:
        positions: Mapping from node id to ``(x, y)`` coordinates.  Node ``0``
            is always the sink and sits at the origin.
        radius: Communication (unit-disk) radius.
        graph: Undirected connectivity graph.
        tree: Directed gathering tree; edges point from child to parent
            (toward the sink).
        ring_of: Mapping from node id to its ring index (hop distance to the
            sink); the sink maps to ``0``.
    """

    positions: Dict[int, Tuple[float, float]]
    radius: float
    graph: nx.Graph = field(repr=False)
    tree: nx.DiGraph = field(repr=False)
    ring_of: Dict[int, int] = field(default_factory=dict)

    SINK: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        require_positive("radius", self.radius)
        if self.SINK not in self.positions:
            raise ConfigurationError("deployment must contain the sink (node 0)")
        if not self.ring_of:
            self.ring_of = dict(nx.shortest_path_length(self.graph, source=self.SINK))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def node_ids(self) -> List[int]:
        """All node ids, sink first, then sorted ascending."""
        others = sorted(n for n in self.positions if n != self.SINK)
        return [self.SINK] + others

    @property
    def sensor_ids(self) -> List[int]:
        """All non-sink node ids, sorted ascending."""
        return [n for n in self.node_ids if n != self.SINK]

    @property
    def depth(self) -> int:
        """Maximum hop distance from any connected node to the sink."""
        reachable = [ring for node, ring in self.ring_of.items() if node != self.SINK]
        if not reachable:
            raise ConfigurationError("deployment has no sensor connected to the sink")
        return max(reachable)

    def parent_of(self, node: int) -> Optional[int]:
        """Return the tree parent of ``node`` (``None`` for the sink)."""
        if node == self.SINK:
            return None
        successors = list(self.tree.successors(node))
        if not successors:
            raise ConfigurationError(f"node {node} is not connected to the sink")
        return successors[0]

    def children_of(self, node: int) -> List[int]:
        """Return the tree children of ``node`` (may be empty)."""
        return sorted(self.tree.predecessors(node))

    def neighbours_of(self, node: int) -> List[int]:
        """Return the unit-disk neighbours of ``node``."""
        return sorted(self.graph.neighbors(node))

    def path_to_sink(self, node: int) -> List[int]:
        """Return the tree path from ``node`` to the sink, inclusive."""
        path = [node]
        current = node
        while current != self.SINK:
            parent = self.parent_of(current)
            if parent is None:
                break
            path.append(parent)
            current = parent
        return path

    def nodes_in_ring(self, ring: int) -> List[int]:
        """Return the node ids whose hop distance to the sink equals ``ring``."""
        return sorted(n for n, r in self.ring_of.items() if r == ring and n != self.SINK)

    def subtree_size(self, node: int) -> int:
        """Number of nodes (including ``node``) whose traffic crosses ``node``."""
        size = 1
        for child in self.children_of(node):
            size += self.subtree_size(child)
        return size

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    def average_degree(self) -> float:
        """Average unit-disk degree of the sensor nodes."""
        sensors = self.sensor_ids
        if not sensors:
            return 0.0
        return sum(self.graph.degree(n) for n in sensors) / len(sensors)

    def to_ring_topology(self) -> RingTopology:
        """Summarize this deployment into the analytical ring abstraction.

        ``depth`` is the observed maximum hop count; ``density`` is the
        rounded average degree (minimum 1).  This is the bridge used when
        validating the analytical models against the simulator.
        """
        density = max(1, round(self.average_degree()))
        return RingTopology(depth=self.depth, density=density)


# ---------------------------------------------------------------------- #
# Tree construction
# ---------------------------------------------------------------------- #


def build_gathering_tree(graph: nx.Graph, sink: int = 0) -> nx.DiGraph:
    """Build a shortest-path (BFS) gathering tree rooted at the sink.

    Every node picks a parent among its neighbours that are strictly closer
    to the sink.  To mirror the analytical assumption that relayed traffic is
    split evenly over the nodes of a ring, the parent chosen is the candidate
    that currently has the fewest children (ties broken by the smaller id).
    The returned directed graph has one edge per non-sink node, pointing from
    child to parent.

    Raises:
        ConfigurationError: if some node has no path to the sink.
    """
    if sink not in graph:
        raise ConfigurationError(f"sink node {sink!r} is not in the graph")
    distances = nx.shortest_path_length(graph, source=sink)
    unreachable = set(graph.nodes) - set(distances)
    if unreachable:
        raise ConfigurationError(
            f"{len(unreachable)} node(s) have no path to the sink: "
            f"{sorted(unreachable)[:5]}..."
        )
    tree = nx.DiGraph()
    tree.add_nodes_from(graph.nodes)
    child_count: Dict[int, int] = {node: 0 for node in graph.nodes}
    # Attach nodes ring by ring so parents' loads are known before deeper
    # rings choose; within a ring process in id order for determinism.
    for node in sorted(graph.nodes, key=lambda n: (distances[n], n)):
        if node == sink:
            continue
        closer = [
            neighbour
            for neighbour in graph.neighbors(node)
            if distances[neighbour] == distances[node] - 1
        ]
        if not closer:
            raise ConfigurationError(
                f"node {node} at distance {distances[node]} has no parent candidate"
            )
        parent = min(closer, key=lambda candidate: (child_count[candidate], candidate))
        child_count[parent] += 1
        tree.add_edge(node, parent)
    return tree


def ring_histogram(deployment: UnitDiskDeployment) -> Dict[int, int]:
    """Return ``{ring: node count}`` for a deployment (sink excluded)."""
    histogram: Dict[int, int] = {}
    for node, ring in deployment.ring_of.items():
        if node == deployment.SINK:
            continue
        histogram[ring] = histogram.get(ring, 0) + 1
    return dict(sorted(histogram.items()))
