"""Frame-size model.

MAC analytical models need on-air durations for the different frame types a
protocol exchanges: data frames, acknowledgements, preamble strobes, SYNC /
schedule frames and TDMA control headers.  This module centralizes the byte
bookkeeping (payload + MAC header + PHY overhead) so the per-protocol models
in :mod:`repro.protocols` can ask for durations instead of repeating size
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.network.radio import RadioModel


@dataclass(frozen=True)
class PacketModel:
    """Sizes (in bytes) of the frames exchanged by duty-cycled MAC protocols.

    Attributes:
        payload_bytes: Application payload carried by a data frame.
        mac_header_bytes: MAC-layer header and footer (addresses, FCS).
        phy_overhead_bytes: Physical-layer preamble + SFD + length field that
            precedes every frame on air.
        ack_bytes: Size of a link-layer acknowledgement frame.
        strobe_bytes: Size of a single short preamble strobe (X-MAC style),
            carrying the target address.
        sync_bytes: Size of a schedule/SYNC frame (slotted protocols).
        control_bytes: Size of a TDMA control header transmitted at the start
            of an owned slot (LMAC style).
    """

    payload_bytes: float = 32.0
    mac_header_bytes: float = 9.0
    phy_overhead_bytes: float = 6.0
    ack_bytes: float = 11.0
    strobe_bytes: float = 12.0
    sync_bytes: float = 18.0
    control_bytes: float = 12.0

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if not isinstance(value, (int, float)) or value < 0:
                raise ConfigurationError(
                    f"PacketModel.{name} must be a non-negative number, got {value!r}"
                )
        if self.payload_bytes == 0 and self.mac_header_bytes == 0:
            raise ConfigurationError("data frames must have a non-zero size")

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #

    @property
    def data_frame_bytes(self) -> float:
        """Total on-air size of a data frame in bytes."""
        return self.payload_bytes + self.mac_header_bytes + self.phy_overhead_bytes

    @property
    def ack_frame_bytes(self) -> float:
        """Total on-air size of an acknowledgement frame in bytes."""
        return self.ack_bytes + self.phy_overhead_bytes

    @property
    def strobe_frame_bytes(self) -> float:
        """Total on-air size of a single preamble strobe in bytes."""
        return self.strobe_bytes + self.phy_overhead_bytes

    @property
    def sync_frame_bytes(self) -> float:
        """Total on-air size of a SYNC/schedule frame in bytes."""
        return self.sync_bytes + self.phy_overhead_bytes

    @property
    def control_frame_bytes(self) -> float:
        """Total on-air size of a TDMA slot control header in bytes."""
        return self.control_bytes + self.phy_overhead_bytes

    # ------------------------------------------------------------------ #
    # Durations (require a radio)
    # ------------------------------------------------------------------ #

    def data_airtime(self, radio: RadioModel) -> float:
        """On-air duration (seconds) of a data frame on the given radio."""
        return radio.airtime_bytes(self.data_frame_bytes)

    def ack_airtime(self, radio: RadioModel) -> float:
        """On-air duration (seconds) of an ACK frame on the given radio."""
        return radio.airtime_bytes(self.ack_frame_bytes)

    def strobe_airtime(self, radio: RadioModel) -> float:
        """On-air duration (seconds) of one preamble strobe."""
        return radio.airtime_bytes(self.strobe_frame_bytes)

    def sync_airtime(self, radio: RadioModel) -> float:
        """On-air duration (seconds) of a SYNC/schedule frame."""
        return radio.airtime_bytes(self.sync_frame_bytes)

    def control_airtime(self, radio: RadioModel) -> float:
        """On-air duration (seconds) of a TDMA slot control header."""
        return radio.airtime_bytes(self.control_frame_bytes)

    def strobe_period(self, radio: RadioModel) -> float:
        """Duration of one strobe + the gap the sender listens for an early ACK.

        X-MAC alternates short strobes with listening gaps long enough for
        the receiver to answer; we model the gap as the ACK airtime plus two
        rx/tx turnarounds.
        """
        return (
            self.strobe_airtime(radio)
            + self.ack_airtime(radio)
            + 2.0 * radio.turnaround_time
        )

    def hop_exchange_time(self, radio: RadioModel) -> float:
        """Time for a single data + ACK exchange once both parties are awake."""
        return (
            self.data_airtime(radio)
            + radio.turnaround_time
            + self.ack_airtime(radio)
        )

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #

    def with_payload(self, payload_bytes: float) -> "PacketModel":
        """Return a copy of this model with a different payload size."""
        return replace(self, payload_bytes=payload_bytes)

    def as_dict(self) -> Mapping[str, float]:
        """Return the configured sizes as a plain dictionary (for reporting)."""
        return {
            "payload_bytes": self.payload_bytes,
            "mac_header_bytes": self.mac_header_bytes,
            "phy_overhead_bytes": self.phy_overhead_bytes,
            "ack_bytes": self.ack_bytes,
            "strobe_bytes": self.strobe_bytes,
            "sync_bytes": self.sync_bytes,
            "control_bytes": self.control_bytes,
        }
