"""Network substrate: radio hardware, packets, topology, deployment and traffic.

This subpackage provides everything the MAC analytical models and the
discrete-event simulator need to describe the *environment* the protocol runs
in:

* :mod:`repro.network.radio` — radio hardware model (power per operating
  mode, bit-rate, turnaround times) with CC2420/CC1100-class presets.
* :mod:`repro.network.packets` — frame-size model translating payload bytes
  and protocol overheads into on-air durations.
* :mod:`repro.network.topology` — the ring ("concentric circles around the
  sink") abstraction used by the paper, plus a concrete unit-disk-graph
  deployment and spanning-tree construction built on :mod:`networkx`.
* :mod:`repro.network.traffic` — the periodic-traffic load equations
  (per-ring output, input, background traffic and input link counts).
* :mod:`repro.network.deployment` — random uniform-density deployments used
  by the simulator and by the scalability analysis.
"""

from repro.network.radio import RadioMode, RadioModel, cc2420, cc1100, tr1001
from repro.network.packets import PacketModel
from repro.network.topology import RingTopology, UnitDiskDeployment, build_gathering_tree
from repro.network.traffic import TrafficModel, RingTraffic
from repro.network.deployment import (
    DeploymentConfig,
    chain_deployment,
    generate_deployment,
    ring_deployment,
)

__all__ = [
    "RadioMode",
    "RadioModel",
    "cc2420",
    "cc1100",
    "tr1001",
    "PacketModel",
    "RingTopology",
    "UnitDiskDeployment",
    "build_gathering_tree",
    "TrafficModel",
    "RingTraffic",
    "DeploymentConfig",
    "generate_deployment",
    "ring_deployment",
    "chain_deployment",
]
