"""Radio hardware model.

Duty-cycled MAC protocols trade radio-on time against latency; the analytical
models therefore need to know how much power the transceiver draws in each
operating mode and how fast it can push bits.  The paper (and the
Langendoen & Meier analysis it builds on) assumes a CC2420-class IEEE
802.15.4 radio; the brief announcement never states the constants, so we take
them from the CC2420 datasheet and expose them as an explicit, overridable
:class:`RadioModel`.

Power figures are stored in **watts**, durations in **seconds** and bit-rates
in **bits per second**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from repro.exceptions import ConfigurationError
from repro.units import bytes_to_bits, ma_to_w


class RadioMode(str, enum.Enum):
    """Operating modes of a low-power transceiver.

    The energy decomposition used throughout the library (carrier sensing,
    transmission, reception, overhearing, synchronization) maps onto these
    physical modes: carrier sensing and overhearing happen in ``RX``/``IDLE``,
    transmissions in ``TX``, and everything else in ``SLEEP``.
    """

    SLEEP = "sleep"
    IDLE = "idle"
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class RadioModel:
    """Power/time characteristics of a transceiver.

    Attributes:
        name: Human-readable identifier of the radio (e.g. ``"CC2420"``).
        power_tx: Power draw while transmitting, in watts.
        power_rx: Power draw while receiving, in watts.
        power_idle: Power draw while listening to an idle channel, in watts.
            For most packet radios this equals ``power_rx``.
        power_sleep: Power draw in sleep mode, in watts.
        bitrate: Physical-layer bit-rate in bits per second.
        turnaround_time: Time to switch between receive and transmit, in
            seconds.  Contributes to per-hop handshake costs.
        wakeup_time: Time to go from sleep to an operational (rx/tx) state,
            in seconds.  Paid on every duty-cycle wake-up.
        carrier_sense_time: Duration of a single clear-channel assessment /
            channel poll, in seconds.  Preamble-sampling MACs pay this once
            per wake-up interval.
    """

    name: str
    power_tx: float
    power_rx: float
    power_idle: float
    power_sleep: float
    bitrate: float
    turnaround_time: float = 192e-6
    wakeup_time: float = 1.0e-3
    carrier_sense_time: float = 2.5e-3

    def __post_init__(self) -> None:
        numeric_fields = {
            "power_tx": self.power_tx,
            "power_rx": self.power_rx,
            "power_idle": self.power_idle,
            "power_sleep": self.power_sleep,
            "bitrate": self.bitrate,
            "turnaround_time": self.turnaround_time,
            "wakeup_time": self.wakeup_time,
            "carrier_sense_time": self.carrier_sense_time,
        }
        for field_name, value in numeric_fields.items():
            if not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"RadioModel.{field_name} must be numeric, got {value!r}"
                )
            if value < 0:
                raise ConfigurationError(
                    f"RadioModel.{field_name} must be non-negative, got {value!r}"
                )
        if self.bitrate <= 0:
            raise ConfigurationError("RadioModel.bitrate must be strictly positive")
        if self.power_sleep > min(self.power_rx, self.power_tx, self.power_idle):
            raise ConfigurationError(
                "RadioModel.power_sleep must not exceed the active-mode powers; "
                f"got sleep={self.power_sleep!r}"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def power(self, mode: RadioMode) -> float:
        """Return the power draw (watts) of the given operating mode."""
        mapping: Dict[RadioMode, float] = {
            RadioMode.SLEEP: self.power_sleep,
            RadioMode.IDLE: self.power_idle,
            RadioMode.RX: self.power_rx,
            RadioMode.TX: self.power_tx,
        }
        try:
            return mapping[RadioMode(mode)]
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(f"unknown radio mode {mode!r}") from exc

    def airtime_bits(self, n_bits: float) -> float:
        """On-air duration (seconds) of a frame of ``n_bits`` bits."""
        if n_bits < 0:
            raise ConfigurationError(f"frame size must be non-negative, got {n_bits!r}")
        return float(n_bits) / self.bitrate

    def airtime_bytes(self, n_bytes: float) -> float:
        """On-air duration (seconds) of a frame of ``n_bytes`` bytes."""
        return self.airtime_bits(bytes_to_bits(n_bytes))

    def tx_energy_bytes(self, n_bytes: float) -> float:
        """Energy (joules) to transmit a frame of ``n_bytes`` bytes."""
        return self.airtime_bytes(n_bytes) * self.power_tx

    def rx_energy_bytes(self, n_bytes: float) -> float:
        """Energy (joules) to receive a frame of ``n_bytes`` bytes."""
        return self.airtime_bytes(n_bytes) * self.power_rx

    def energy(self, mode: RadioMode, duration: float) -> float:
        """Energy (joules) spent staying ``duration`` seconds in ``mode``."""
        if duration < 0:
            raise ConfigurationError(f"duration must be non-negative, got {duration!r}")
        return self.power(mode) * float(duration)

    @property
    def always_on_power(self) -> float:
        """Power draw (watts) of a node that never sleeps (idle listening).

        Useful as a natural upper bound on any duty-cycled protocol's average
        power, and as the reference point for interpreting the paper's energy
        budgets: ``Ebudget = 0.06 J`` per second is roughly the always-on
        power of a CC2420-class radio.
        """
        return self.power_idle

    def with_overrides(self, **overrides: float) -> "RadioModel":
        """Return a copy of the model with some fields replaced.

        Example:
            >>> fast = cc2420().with_overrides(bitrate=500_000.0)
        """
        return replace(self, **overrides)

    def as_dict(self) -> Mapping[str, float]:
        """Return the numeric fields as a plain dictionary (for reporting)."""
        return {
            "power_tx": self.power_tx,
            "power_rx": self.power_rx,
            "power_idle": self.power_idle,
            "power_sleep": self.power_sleep,
            "bitrate": self.bitrate,
            "turnaround_time": self.turnaround_time,
            "wakeup_time": self.wakeup_time,
            "carrier_sense_time": self.carrier_sense_time,
        }


# ---------------------------------------------------------------------- #
# Presets
# ---------------------------------------------------------------------- #


def cc2420(voltage: float = 3.0) -> RadioModel:
    """IEEE 802.15.4 CC2420 radio (the one assumed by Langendoen & Meier).

    Datasheet current draws: 17.4 mA TX at 0 dBm, 18.8 mA RX/idle listening,
    ~20 µA in power-down; 250 kbps physical rate.
    """
    return RadioModel(
        name="CC2420",
        power_tx=ma_to_w(17.4, voltage),
        power_rx=ma_to_w(18.8, voltage),
        power_idle=ma_to_w(18.8, voltage),
        power_sleep=ma_to_w(0.02, voltage),
        bitrate=250_000.0,
        turnaround_time=192e-6,
        wakeup_time=0.58e-3,
        carrier_sense_time=2.5e-3,
    )


def cc1100(voltage: float = 3.0) -> RadioModel:
    """Sub-GHz CC1100/CC1101-class byte radio at 76.8 kbps."""
    return RadioModel(
        name="CC1100",
        power_tx=ma_to_w(16.9, voltage),
        power_rx=ma_to_w(16.4, voltage),
        power_idle=ma_to_w(16.4, voltage),
        power_sleep=ma_to_w(0.0005, voltage),
        bitrate=76_800.0,
        turnaround_time=9.6e-6,
        wakeup_time=0.24e-3,
        carrier_sense_time=0.9e-3,
    )


def tr1001(voltage: float = 3.0) -> RadioModel:
    """Legacy TR1001 bit radio (EYES nodes, used in the original LMAC work)."""
    return RadioModel(
        name="TR1001",
        power_tx=ma_to_w(12.0, voltage),
        power_rx=ma_to_w(3.8, voltage),
        power_idle=ma_to_w(3.8, voltage),
        power_sleep=ma_to_w(0.0007, voltage),
        bitrate=115_200.0,
        turnaround_time=20e-6,
        wakeup_time=0.02e-3,
        carrier_sense_time=0.5e-3,
    )


#: Registry of radio presets by lower-case name, used by the CLI.
RADIO_PRESETS = {
    "cc2420": cc2420,
    "cc1100": cc1100,
    "tr1001": tr1001,
}


def radio_by_name(name: str, voltage: float = 3.0) -> RadioModel:
    """Look up a radio preset by (case-insensitive) name.

    Raises:
        ConfigurationError: if the name does not match a known preset.
    """
    key = name.strip().lower()
    if key not in RADIO_PRESETS:
        known = ", ".join(sorted(RADIO_PRESETS))
        raise ConfigurationError(f"unknown radio {name!r}; known presets: {known}")
    return RADIO_PRESETS[key](voltage=voltage)
