"""Nash bargaining solver for the energy-delay game.

This module orchestrates the complete game of Section 2 of the paper for one
protocol and one set of application requirements:

1. solve (P1) — the energy player's problem — giving ``(Ebest, Lworst)``;
2. solve (P2) — the delay player's problem — giving ``(Eworst, Lbest)``;
3. build the disagreement point ``(Eworst, Lworst)`` and solve the concave
   reformulation (P4), giving the agreed point ``(E*, L*)``;
4. evaluate the proportional-fairness identity at the agreement.

The result is a :class:`~repro.core.results.GameSolution`, the record behind
each cluster of points in the paper's figures.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.fairness import proportional_fairness_residual
from repro.core.problems import (
    DelayMinimizationProblem,
    EnergyMinimizationProblem,
    NashBargainingProblem,
)
from repro.core.requirements import ApplicationRequirements
from repro.core.results import BargainingOutcome, GameSolution, OptimizationOutcome
from repro.exceptions import ConfigurationError
from repro.optimization.hybrid import hybrid_solve
from repro.optimization.result import SolverResult
from repro.protocols.base import DutyCycledMACModel


class NashBargainingSolver:
    """Solves the full energy-delay bargaining game for one protocol.

    Args:
        solver: Constrained-optimization backend used for (P1), (P2) and
            (P4); defaults to the grid-seeded SLSQP hybrid.
        solver_options: Extra keyword arguments forwarded to the backend
            (e.g. ``grid_points_per_dimension``).
    """

    def __init__(
        self,
        solver: Callable[..., SolverResult] = hybrid_solve,
        **solver_options: object,
    ) -> None:
        if not callable(solver):
            raise ConfigurationError("solver must be callable")
        self._solver = solver
        self._solver_options = dict(solver_options)

    # ------------------------------------------------------------------ #
    # Individual stages (exposed for tests and ablations)
    # ------------------------------------------------------------------ #

    def solve_energy_problem(
        self, model: DutyCycledMACModel, requirements: ApplicationRequirements
    ) -> OptimizationOutcome:
        """Solve (P1): minimize energy subject to the delay bound."""
        problem = EnergyMinimizationProblem(model, requirements)
        return problem.solve(self._solver, **self._solver_options)

    def solve_delay_problem(
        self, model: DutyCycledMACModel, requirements: ApplicationRequirements
    ) -> OptimizationOutcome:
        """Solve (P2): minimize delay subject to the energy budget."""
        problem = DelayMinimizationProblem(model, requirements)
        return problem.solve(self._solver, **self._solver_options)

    def solve_bargaining_problem(
        self,
        model: DutyCycledMACModel,
        requirements: ApplicationRequirements,
        energy_optimum: OptimizationOutcome,
        delay_optimum: OptimizationOutcome,
    ) -> BargainingOutcome:
        """Solve (P4) given the two single-objective outcomes."""
        disagreement_energy = delay_optimum.point.energy  # Eworst
        disagreement_delay = energy_optimum.point.delay  # Lworst
        problem = NashBargainingProblem(
            model,
            requirements,
            disagreement_energy=disagreement_energy,
            disagreement_delay=disagreement_delay,
        )
        point, solver_result = problem.solve(self._solver, **self._solver_options)
        residual = proportional_fairness_residual(
            energy_star=point.energy,
            delay_star=point.delay,
            energy_best=energy_optimum.point.energy,
            energy_worst=disagreement_energy,
            delay_best=delay_optimum.point.delay,
            delay_worst=disagreement_delay,
        )
        return BargainingOutcome(
            point=point,
            nash_product=problem.nash_product(solver_result.x),
            disagreement_energy=disagreement_energy,
            disagreement_delay=disagreement_delay,
            energy_gain=max(0.0, disagreement_energy - point.energy),
            delay_gain=max(0.0, disagreement_delay - point.delay),
            fairness_residual=residual,
            solver=solver_result.method,
            evaluations=solver_result.evaluations,
            work=solver_result.work,
        )

    # ------------------------------------------------------------------ #
    # Full game
    # ------------------------------------------------------------------ #

    def solve(
        self, model: DutyCycledMACModel, requirements: ApplicationRequirements
    ) -> GameSolution:
        """Run the complete (P1) → (P2) → (P4) pipeline for one protocol.

        Raises:
            InfeasibleProblemError: if either single-objective problem has no
                feasible point (the application requirements cannot be met by
                this protocol in this scenario).
        """
        energy_optimum = self.solve_energy_problem(model, requirements)
        delay_optimum = self.solve_delay_problem(model, requirements)
        bargaining = self.solve_bargaining_problem(
            model, requirements, energy_optimum, delay_optimum
        )
        return GameSolution(
            protocol=model.name,
            energy_budget=requirements.energy_budget,
            max_delay=requirements.max_delay,
            energy_optimum=energy_optimum,
            delay_optimum=delay_optimum,
            bargaining=bargaining,
        )
