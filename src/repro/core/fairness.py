"""Proportional-fairness identity of the Nash bargaining point.

The paper (following Zhao et al.) notes that choosing ``(Eworst, Lworst)`` as
the disagreement point makes the Nash bargaining solution *proportionally
fair*:

    (E* - Eworst) / (Ebest - Eworst) = (L* - Lworst) / (Lbest - Lworst)

i.e. both players give up the same fraction of the distance between their
worst and best achievable values.  This module computes the two sides of the
identity and their residual; the tests and the figure benches assert that the
residual vanishes (up to solver tolerance) for every protocol and every
requirement pair.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import ConfigurationError


def _relative_concession(star: float, worst: float, best: float) -> float:
    """Fraction of the worst-to-best distance conceded by one player.

    Returns ``(star - worst) / (best - worst)``; a value of 0 means the
    player ended at its threat value, 1 means it obtained its best value.
    """
    span = best - worst
    if span == 0.0:
        # Degenerate player: its best and worst coincide, so any agreement
        # concedes "everything and nothing"; treat as fully satisfied.
        return 1.0
    return (star - worst) / span


def fairness_shares(
    energy_star: float,
    delay_star: float,
    energy_best: float,
    energy_worst: float,
    delay_best: float,
    delay_worst: float,
) -> Tuple[float, float]:
    """Return the two sides of the proportional-fairness identity.

    The first element is the energy player's share
    ``(E* - Eworst) / (Ebest - Eworst)``, the second the delay player's share
    ``(L* - Lworst) / (Lbest - Lworst)``.
    """
    for name, value in (
        ("energy_star", energy_star),
        ("delay_star", delay_star),
        ("energy_best", energy_best),
        ("energy_worst", energy_worst),
        ("delay_best", delay_best),
        ("delay_worst", delay_worst),
    ):
        if not isinstance(value, (int, float)):
            raise ConfigurationError(f"{name} must be numeric, got {value!r}")
    energy_share = _relative_concession(energy_star, energy_worst, energy_best)
    delay_share = _relative_concession(delay_star, delay_worst, delay_best)
    return energy_share, delay_share


def proportional_fairness_residual(
    energy_star: float,
    delay_star: float,
    energy_best: float,
    energy_worst: float,
    delay_best: float,
    delay_worst: float,
) -> float:
    """Difference between the two sides of the proportional-fairness identity.

    Zero means the agreement is exactly proportionally fair; the sign tells
    which player got the better deal (positive: the energy player obtained a
    larger share of its achievable improvement than the delay player).
    """
    energy_share, delay_share = fairness_shares(
        energy_star, delay_star, energy_best, energy_worst, delay_best, delay_worst
    )
    return energy_share - delay_share


def is_proportionally_fair(
    energy_star: float,
    delay_star: float,
    energy_best: float,
    energy_worst: float,
    delay_best: float,
    delay_worst: float,
    tolerance: float = 5e-2,
) -> bool:
    """Whether the agreement satisfies the identity within ``tolerance``.

    The default tolerance is deliberately loose (a few percent): the identity
    holds exactly for the continuous problem, but the numerical solution of
    (P1), (P2) and (P4) introduces small errors on both sides.
    """
    residual = proportional_fairness_residual(
        energy_star, delay_star, energy_best, energy_worst, delay_best, delay_worst
    )
    return abs(residual) <= tolerance
