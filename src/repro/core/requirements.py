"""Application requirements.

The framework's inputs are the application requirements: the per-node energy
budget ``Ebudget`` (joules per second of operation, see DESIGN.md §3.1), the
maximum tolerated end-to-end packet delay ``Lmax`` (seconds), and the
application sampling rate ``Fs`` (packets per second per source).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.units import s_to_ms


@dataclass(frozen=True)
class ApplicationRequirements:
    """Application-level requirements fed to the energy-delay game.

    Attributes:
        energy_budget: Maximum admissible system-wide energy consumption
            ``Ebudget`` in joules per second (i.e. average radio power of the
            bottleneck node).
        max_delay: Maximum admissible end-to-end packet delay ``Lmax`` in
            seconds.
        sampling_rate: Application sampling rate ``Fs`` in packets per second
            per source node.
    """

    energy_budget: float
    max_delay: float
    sampling_rate: float = 1.0 / 300.0

    def __post_init__(self) -> None:
        for name in ("energy_budget", "max_delay", "sampling_rate"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ConfigurationError(
                    f"ApplicationRequirements.{name} must be a positive number, got {value!r}"
                )

    @property
    def sampling_period(self) -> float:
        """Application sampling period ``1 / Fs`` in seconds."""
        return 1.0 / self.sampling_rate

    @property
    def max_delay_ms(self) -> float:
        """The delay bound expressed in milliseconds (the paper's unit)."""
        return s_to_ms(self.max_delay)

    def with_energy_budget(self, energy_budget: float) -> "ApplicationRequirements":
        """Return a copy with a different energy budget (used in sweeps)."""
        return replace(self, energy_budget=energy_budget)

    def with_max_delay(self, max_delay: float) -> "ApplicationRequirements":
        """Return a copy with a different delay bound (used in sweeps)."""
        return replace(self, max_delay=max_delay)

    def satisfied_by(self, energy: float, delay: float, tolerance: float = 1e-9) -> bool:
        """Whether an ``(energy, delay)`` operating point meets both requirements."""
        return (
            energy <= self.energy_budget * (1.0 + tolerance) + tolerance
            and delay <= self.max_delay * (1.0 + tolerance) + tolerance
        )

    def describe(self) -> Mapping[str, float]:
        """Summary used in reports and experiment headers."""
        return {
            "energy_budget_j_per_s": self.energy_budget,
            "max_delay_s": self.max_delay,
            "sampling_rate_hz": self.sampling_rate,
        }
