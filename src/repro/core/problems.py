"""The paper's optimization problems (P1), (P2) and (P4).

Each problem class binds a protocol's analytical model to the application
requirements and exposes a ``solve`` method returning a structured outcome.
The decision variables are always the protocol's tunable parameters ``X``;
the auxiliary variables ``(E1, L1)`` of the paper's (P4) are eliminated
analytically (at the optimum ``E1 = E(X)`` and ``L1 = L(X)``), which leaves a
smooth box-constrained program that the solvers in
:mod:`repro.optimization` handle directly.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace
from repro.core.requirements import ApplicationRequirements
from repro.core.results import OptimizationOutcome, TradeoffPoint
from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.optimization.grid import batched
from repro.optimization.hybrid import hybrid_solve
from repro.optimization.result import SolverResult
from repro.protocols.base import DutyCycledMACModel

#: Relative tolerance used to decide which constraint is binding at an optimum.
_BINDING_TOLERANCE = 1e-3


def _binding_constraint(
    model: DutyCycledMACModel,
    requirements: ApplicationRequirements,
    x: np.ndarray,
) -> str:
    """Classify which constraint is active at the point ``x``."""
    energy = model.system_energy(x)
    delay = model.system_latency(x)
    space = model.parameter_space
    if delay >= requirements.max_delay * (1.0 - _BINDING_TOLERANCE):
        return "delay-bound"
    if energy >= requirements.energy_budget * (1.0 - _BINDING_TOLERANCE):
        return "energy-budget"
    if model.capacity_margin(x) <= _BINDING_TOLERANCE * model.max_utilization:
        return "capacity"
    lower = space.lower_bounds
    upper = space.upper_bounds
    span = np.where(upper > lower, upper - lower, 1.0)
    if np.any((x - lower) / span <= _BINDING_TOLERANCE) or np.any(
        (upper - x) / span <= _BINDING_TOLERANCE
    ):
        return "parameter-bound"
    return "interior"


class _ProblemBase:
    """Shared plumbing of the three optimization problems."""

    def __init__(
        self,
        model: DutyCycledMACModel,
        requirements: ApplicationRequirements,
    ) -> None:
        if not isinstance(model, DutyCycledMACModel):
            raise ConfigurationError(
                f"model must be a DutyCycledMACModel, got {type(model).__name__}"
            )
        if not isinstance(requirements, ApplicationRequirements):
            raise ConfigurationError(
                f"requirements must be ApplicationRequirements, got {type(requirements).__name__}"
            )
        self._model = model
        self._requirements = requirements

    @property
    def model(self) -> DutyCycledMACModel:
        """The protocol model the problem is defined over."""
        return self._model

    @property
    def requirements(self) -> ApplicationRequirements:
        """The application requirements of the problem."""
        return self._requirements

    @property
    def space(self) -> ParameterSpace:
        """The decision-variable box."""
        return self._model.parameter_space

    def _point(self, x: np.ndarray) -> TradeoffPoint:
        return TradeoffPoint(
            parameters=self._model.coerce(x),
            energy=self._model.system_energy(x),
            delay=self._model.system_latency(x),
        )

    # The objectives and constraints handed to the solvers carry batched
    # ``.many`` twins (see :func:`repro.optimization.batched`) so the grid
    # stage evaluates whole parameter grids in a few NumPy calls instead of
    # one Python call per point; SLSQP keeps using the scalar side.

    def _energy_objective(self) -> Callable[[np.ndarray], float]:
        model = self._model
        return batched(model.system_energy, model.energy_many)

    def _latency_objective(self) -> Callable[[np.ndarray], float]:
        model = self._model
        return batched(model.system_latency, model.latency_many)

    def _capacity_constraint(self) -> Callable[[np.ndarray], float]:
        model = self._model
        return batched(
            lambda x: model.capacity_margin(x),
            lambda grid: model.capacity_margin_many(grid),
        )


class EnergyMinimizationProblem(_ProblemBase):
    """Problem (P1): minimize ``E(X)`` subject to ``L(X) <= Lmax``.

    The solution gives the energy player's best value ``Ebest`` and, at the
    same point, the delay ``Lworst`` that the delay player would have to
    accept if the energy player dictated the parameters.
    """

    name = "P1-energy"

    def constraints(self) -> List[Callable[[np.ndarray], float]]:
        """Inequality margins (``>= 0`` feasible): delay bound and capacity."""
        model = self._model
        max_delay = self._requirements.max_delay
        return [
            batched(
                lambda x: max_delay - model.system_latency(x),
                lambda grid: max_delay - model.latency_many(grid),
            ),
            self._capacity_constraint(),
        ]

    def solve(
        self,
        solver: Callable[..., SolverResult] = hybrid_solve,
        **solver_options: object,
    ) -> OptimizationOutcome:
        """Solve (P1) and return the energy-optimal operating point.

        Raises:
            InfeasibleProblemError: if no admissible parameter vector meets
                the delay bound.
        """
        result = solver(
            self._energy_objective(),
            self.space,
            self.constraints(),
            maximize=False,
            **solver_options,
        )
        if not result.feasible:
            raise InfeasibleProblemError(
                f"{self._model.name}: no parameter setting achieves an end-to-end delay "
                f"below {self._requirements.max_delay:.3f}s "
                f"(violation {result.constraint_violation:.3g})"
            )
        return OptimizationOutcome(
            problem=self.name,
            point=self._point(result.x),
            feasible=True,
            solver=result.method,
            evaluations=result.evaluations,
            binding_constraint=_binding_constraint(self._model, self._requirements, result.x),
            work=result.work,
        )


class DelayMinimizationProblem(_ProblemBase):
    """Problem (P2): minimize ``L(X)`` subject to ``E(X) <= Ebudget``.

    The solution gives the delay player's best value ``Lbest`` and, at the
    same point, the energy ``Eworst`` that the energy player would have to
    accept if the delay player dictated the parameters.
    """

    name = "P2-delay"

    def constraints(self) -> List[Callable[[np.ndarray], float]]:
        """Inequality margins (``>= 0`` feasible): energy budget and capacity."""
        model = self._model
        budget = self._requirements.energy_budget
        return [
            batched(
                lambda x: budget - model.system_energy(x),
                lambda grid: budget - model.energy_many(grid),
            ),
            self._capacity_constraint(),
        ]

    def solve(
        self,
        solver: Callable[..., SolverResult] = hybrid_solve,
        **solver_options: object,
    ) -> OptimizationOutcome:
        """Solve (P2) and return the delay-optimal operating point.

        Raises:
            InfeasibleProblemError: if no admissible parameter vector meets
                the energy budget.
        """
        result = solver(
            self._latency_objective(),
            self.space,
            self.constraints(),
            maximize=False,
            **solver_options,
        )
        if not result.feasible:
            raise InfeasibleProblemError(
                f"{self._model.name}: no parameter setting keeps the energy consumption "
                f"below {self._requirements.energy_budget:.4f} J/s "
                f"(violation {result.constraint_violation:.3g})"
            )
        return OptimizationOutcome(
            problem=self.name,
            point=self._point(result.x),
            feasible=True,
            solver=result.method,
            evaluations=result.evaluations,
            binding_constraint=_binding_constraint(self._model, self._requirements, result.x),
            work=result.work,
        )


class NashBargainingProblem(_ProblemBase):
    """Problem (P4): the concave reformulation of the Nash bargaining game.

    Maximizes ``log(Eworst - E(X)) + log(Lworst - L(X))`` subject to the
    application requirements and the disagreement bounds, where
    ``(Eworst, Lworst)`` is the disagreement point built from the solutions
    of (P1) and (P2).

    Args:
        model: Protocol analytical model.
        requirements: Application requirements ``(Ebudget, Lmax)``.
        disagreement_energy: ``Eworst`` (from (P2)).
        disagreement_delay: ``Lworst`` (from (P1)).
    """

    name = "P4-nash-bargaining"

    #: Fraction of the disagreement value used as the numerical floor inside
    #: the logarithms (keeps the objective finite on the boundary).
    _LOG_FLOOR = 1e-12

    def __init__(
        self,
        model: DutyCycledMACModel,
        requirements: ApplicationRequirements,
        disagreement_energy: float,
        disagreement_delay: float,
    ) -> None:
        super().__init__(model, requirements)
        if disagreement_energy <= 0 or disagreement_delay <= 0:
            raise ConfigurationError(
                "disagreement point must be strictly positive, got "
                f"({disagreement_energy!r}, {disagreement_delay!r})"
            )
        self._disagreement_energy = float(disagreement_energy)
        self._disagreement_delay = float(disagreement_delay)

    @property
    def disagreement(self) -> tuple[float, float]:
        """The disagreement point ``(Eworst, Lworst)``."""
        return (self._disagreement_energy, self._disagreement_delay)

    # ------------------------------------------------------------------ #
    # Objective and constraints
    # ------------------------------------------------------------------ #

    def objective(self, x: np.ndarray) -> float:
        """``log(Eworst - E(X)) + log(Lworst - L(X))`` with a numerical floor."""
        energy_gain = self._disagreement_energy - self._model.system_energy(x)
        delay_gain = self._disagreement_delay - self._model.system_latency(x)
        floor_energy = self._LOG_FLOOR * self._disagreement_energy
        floor_delay = self._LOG_FLOOR * self._disagreement_delay
        return math.log(max(energy_gain, floor_energy)) + math.log(
            max(delay_gain, floor_delay)
        )

    def objective_many(self, grid: np.ndarray) -> np.ndarray:
        """Batched twin of :meth:`objective` for a parameter grid.

        The expensive part — ``E(X)`` and ``L(X)`` over the whole grid — is
        vectorized; the logarithms are applied per element with ``math.log``
        because ``np.log`` is not guaranteed to round identically, and the
        grid stage must stay bit-identical to the scalar path.
        """
        energy_gains = self._disagreement_energy - self._model.energy_many(grid)
        delay_gains = self._disagreement_delay - self._model.latency_many(grid)
        floor_energy = self._LOG_FLOOR * self._disagreement_energy
        floor_delay = self._LOG_FLOOR * self._disagreement_delay
        return np.array(
            [
                math.log(max(energy_gain, floor_energy))
                + math.log(max(delay_gain, floor_delay))
                for energy_gain, delay_gain in zip(
                    energy_gains.tolist(), delay_gains.tolist()
                )
            ],
            dtype=float,
        )

    def nash_product(self, x: np.ndarray) -> float:
        """The raw Nash product ``(Eworst - E(X)) (Lworst - L(X))`` (clipped at 0)."""
        energy_gain = max(0.0, self._disagreement_energy - self._model.system_energy(x))
        delay_gain = max(0.0, self._disagreement_delay - self._model.system_latency(x))
        return energy_gain * delay_gain

    def constraints(self) -> List[Callable[[np.ndarray], float]]:
        """Inequality margins of (P4): requirements, disagreement bounds, capacity."""
        model = self._model
        budget = min(self._requirements.energy_budget, self._disagreement_energy)
        delay_cap = min(self._requirements.max_delay, self._disagreement_delay)
        return [
            batched(
                lambda x: budget - model.system_energy(x),
                lambda grid: budget - model.energy_many(grid),
            ),
            batched(
                lambda x: delay_cap - model.system_latency(x),
                lambda grid: delay_cap - model.latency_many(grid),
            ),
            self._capacity_constraint(),
        ]

    def solve(
        self,
        solver: Callable[..., SolverResult] = hybrid_solve,
        **solver_options: object,
    ) -> tuple[TradeoffPoint, SolverResult]:
        """Solve (P4) and return the agreed operating point and solver detail.

        Raises:
            InfeasibleProblemError: if the feasible region is empty, which
                can only happen when the two single-objective solutions are
                inconsistent (e.g. the requirements changed between solves).
        """
        result = solver(
            batched(self.objective, self.objective_many),
            self.space,
            self.constraints(),
            maximize=True,
            **solver_options,
        )
        if not result.feasible:
            raise InfeasibleProblemError(
                f"{self._model.name}: the Nash bargaining problem has an empty feasible "
                f"region under disagreement point {self.disagreement}"
            )
        return self._point(result.x), result
