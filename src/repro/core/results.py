"""Result records shared by the core framework.

These dataclasses are what users get back from the public API: the outcome of
the single-objective problems (P1) and (P2), the Nash bargaining outcome
(P3)/(P4), and the full game solution that bundles everything together the
way the paper's figures report it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.units import s_to_ms


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point of a protocol: parameters and the two metrics.

    Attributes:
        parameters: Protocol parameter values ``X`` (by name).
        energy: System-wide energy consumption ``E(X)`` in J/s.
        delay: Maximum end-to-end delay ``L(X)`` in seconds.
    """

    parameters: Mapping[str, float]
    energy: float
    delay: float

    def __post_init__(self) -> None:
        if self.energy < 0 or self.delay < 0:
            raise ConfigurationError(
                f"energy and delay must be non-negative, got ({self.energy}, {self.delay})"
            )

    @property
    def delay_ms(self) -> float:
        """Delay in milliseconds, the unit used by the paper's figures."""
        return s_to_ms(self.delay)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for reports and CSV writers."""
        return {
            "parameters": dict(self.parameters),
            "energy_j_per_s": self.energy,
            "delay_s": self.delay,
            "delay_ms": self.delay_ms,
        }


@dataclass(frozen=True)
class OptimizationOutcome:
    """Outcome of one single-objective problem ((P1) or (P2)).

    Attributes:
        problem: ``"P1-energy"`` or ``"P2-delay"``.
        point: The optimal operating point.
        feasible: Whether the requirements could be met at all.
        solver: Name of the solver that produced the point.
        evaluations: Number of model evaluations spent.
        binding_constraint: Name of the constraint that is active at the
            optimum (``"delay-bound"``, ``"energy-budget"``, ``"parameter-bound"``
            or ``"interior"``), useful to explain the saturation behaviour in
            the paper's figures.
        work: Volatile solver work counters (coarse/refined/polish
            evaluations, cells pruned) describing how the point was found.
            Excluded from equality, :meth:`as_dict` and store records, like
            the runtime's cache counters — two outcomes differing only in
            ``work`` are the same outcome.
    """

    problem: str
    point: TradeoffPoint
    feasible: bool
    solver: str
    evaluations: int = 0
    binding_constraint: str = "unknown"
    work: Optional[Mapping[str, int]] = field(default=None, compare=False)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for reports and CSV writers."""
        return {
            "problem": self.problem,
            "feasible": self.feasible,
            "solver": self.solver,
            "evaluations": self.evaluations,
            "binding_constraint": self.binding_constraint,
            **self.point.as_dict(),
        }


@dataclass(frozen=True)
class BargainingOutcome:
    """Outcome of the Nash bargaining problem (P3)/(P4).

    Attributes:
        point: The agreed operating point ``(E*, L*)`` and its parameters.
        nash_product: Value of ``(Eworst - E*)(Lworst - L*)``.
        disagreement_energy: ``Eworst``, the energy player's threat value.
        disagreement_delay: ``Lworst``, the delay player's threat value.
        energy_gain: ``Eworst - E*`` (how much the energy player gained).
        delay_gain: ``Lworst - L*`` (how much the delay player gained).
        fairness_residual: Difference between the two sides of the
            proportional-fairness identity (0 means exactly proportionally
            fair).
        solver: Name of the solver that produced the point.
        evaluations: Number of model evaluations spent.
        work: Volatile solver work counters, excluded from equality and
            :meth:`as_dict` (see :class:`OptimizationOutcome`).
    """

    point: TradeoffPoint
    nash_product: float
    disagreement_energy: float
    disagreement_delay: float
    energy_gain: float
    delay_gain: float
    fairness_residual: float
    solver: str = ""
    evaluations: int = 0
    work: Optional[Mapping[str, int]] = field(default=None, compare=False)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for reports and CSV writers."""
        return {
            "nash_product": self.nash_product,
            "disagreement_energy": self.disagreement_energy,
            "disagreement_delay": self.disagreement_delay,
            "energy_gain": self.energy_gain,
            "delay_gain": self.delay_gain,
            "fairness_residual": self.fairness_residual,
            "solver": self.solver,
            "evaluations": self.evaluations,
            **self.point.as_dict(),
        }


@dataclass(frozen=True)
class GameSolution:
    """Complete solution of the energy-delay game for one protocol.

    This is the record behind each group of points in the paper's figures:
    the energy-optimal corner (``Ebest``, ``Lworst``), the delay-optimal
    corner (``Eworst``, ``Lbest``) and the Nash bargaining trade-off point
    ``(E*, L*)`` between them.
    """

    protocol: str
    energy_budget: float
    max_delay: float
    energy_optimum: OptimizationOutcome
    delay_optimum: OptimizationOutcome
    bargaining: BargainingOutcome

    # ------------------------------------------------------------------ #
    # The paper's named quantities
    # ------------------------------------------------------------------ #

    @property
    def energy_best(self) -> float:
        """``Ebest = E(X*_E)``: minimum energy meeting the delay bound."""
        return self.energy_optimum.point.energy

    @property
    def delay_worst(self) -> float:
        """``Lworst = L(X*_E)``: the delay paid at the energy optimum."""
        return self.energy_optimum.point.delay

    @property
    def delay_best(self) -> float:
        """``Lbest = L(X*_L)``: minimum delay meeting the energy budget."""
        return self.delay_optimum.point.delay

    @property
    def energy_worst(self) -> float:
        """``Eworst = E(X*_L)``: the energy paid at the delay optimum."""
        return self.delay_optimum.point.energy

    @property
    def energy_star(self) -> float:
        """``E*``: the agreed (Nash bargaining) energy."""
        return self.bargaining.point.energy

    @property
    def delay_star(self) -> float:
        """``L*``: the agreed (Nash bargaining) delay."""
        return self.bargaining.point.delay

    @property
    def is_fully_feasible(self) -> bool:
        """Whether both single-objective problems were feasible."""
        return self.energy_optimum.feasible and self.delay_optimum.feasible

    @property
    def solver_work(self) -> Optional[Dict[str, int]]:
        """Summed volatile work counters of the three solves, or ``None``.

        ``None`` means no stage recorded any work — either the exhaustive
        method ran (which has no counters) or the solution was replayed from
        a cache/store, in which case no fresh solver work happened.  Not part
        of :meth:`as_dict`, mirroring the runtime's volatile counters.
        """
        merged: Dict[str, int] = {}
        for outcome in (self.energy_optimum, self.delay_optimum, self.bargaining):
            if outcome.work:
                for key, count in outcome.work.items():
                    merged[key] = merged.get(key, 0) + int(count)
        return merged or None

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary with the paper's named quantities (for tables)."""
        return {
            "protocol": self.protocol,
            "energy_budget_j_per_s": self.energy_budget,
            "max_delay_s": self.max_delay,
            "E_best": self.energy_best,
            "L_worst": self.delay_worst,
            "E_worst": self.energy_worst,
            "L_best": self.delay_best,
            "E_star": self.energy_star,
            "L_star": self.delay_star,
            "L_star_ms": s_to_ms(self.delay_star),
            "nash_product": self.bargaining.nash_product,
            "fairness_residual": self.bargaining.fairness_residual,
            "parameters_energy_opt": dict(self.energy_optimum.point.parameters),
            "parameters_delay_opt": dict(self.delay_optimum.point.parameters),
            "parameters_bargaining": dict(self.bargaining.point.parameters),
        }
