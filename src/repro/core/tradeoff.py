"""High-level public API: the energy-delay game.

:class:`EnergyDelayGame` is the entry point most users (and all examples,
experiments and benches) go through: bind a protocol model to application
requirements, solve the game, sweep requirement values, and extract the
energy-delay frontier behind the paper's figures.

Example:
    >>> from repro import EnergyDelayGame, ApplicationRequirements
    >>> from repro.protocols import XMACModel
    >>> from repro.scenario import default_scenario
    >>> model = XMACModel(default_scenario())
    >>> requirements = ApplicationRequirements(energy_budget=0.06, max_delay=2.0)
    >>> solution = EnergyDelayGame(model, requirements).solve()
    >>> solution.energy_star <= solution.energy_worst
    True
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.bargaining import NashBargainingSolver
from repro.core.pareto import pareto_frontier
from repro.core.requirements import ApplicationRequirements
from repro.core.results import GameSolution, TradeoffPoint
from repro.exceptions import ConfigurationError
from repro.optimization.result import SolverResult
from repro.protocols.base import DutyCycledMACModel


class EnergyDelayGame:
    """The cooperative energy-delay game for one protocol and one scenario.

    Args:
        model: Analytical model of the protocol under study.
        requirements: Application requirements ``(Ebudget, Lmax, Fs)``.
        solver: Optional custom constrained-optimization backend; defaults to
            the grid-seeded SLSQP hybrid in :mod:`repro.optimization.hybrid`.
        solver_options: Extra options forwarded to the backend.
    """

    def __init__(
        self,
        model: DutyCycledMACModel,
        requirements: ApplicationRequirements,
        solver: Optional[Callable[..., SolverResult]] = None,
        **solver_options: object,
    ) -> None:
        if not isinstance(model, DutyCycledMACModel):
            raise ConfigurationError(
                f"model must be a DutyCycledMACModel, got {type(model).__name__}"
            )
        if not isinstance(requirements, ApplicationRequirements):
            raise ConfigurationError(
                f"requirements must be ApplicationRequirements, got {type(requirements).__name__}"
            )
        self._model = model
        self._requirements = requirements
        if solver is None:
            self._bargaining_solver = NashBargainingSolver(**solver_options)
        else:
            self._bargaining_solver = NashBargainingSolver(solver, **solver_options)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> DutyCycledMACModel:
        """The protocol model the game is played over."""
        return self._model

    @property
    def requirements(self) -> ApplicationRequirements:
        """The application requirements of the game."""
        return self._requirements

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(self) -> GameSolution:
        """Solve (P1), (P2) and (P4) and return the complete game solution."""
        return self._bargaining_solver.solve(self._model, self._requirements)

    def sweep_max_delay(self, delays: Iterable[float]) -> List[GameSolution]:
        """Re-solve the game for each delay bound (the paper's Figure 1 sweep)."""
        solutions: List[GameSolution] = []
        for delay in delays:
            requirements = self._requirements.with_max_delay(float(delay))
            solutions.append(self._bargaining_solver.solve(self._model, requirements))
        return solutions

    def sweep_energy_budget(self, budgets: Iterable[float]) -> List[GameSolution]:
        """Re-solve the game for each energy budget (the paper's Figure 2 sweep)."""
        solutions: List[GameSolution] = []
        for budget in budgets:
            requirements = self._requirements.with_energy_budget(float(budget))
            solutions.append(self._bargaining_solver.solve(self._model, requirements))
        return solutions

    # ------------------------------------------------------------------ #
    # Frontier extraction
    # ------------------------------------------------------------------ #

    def frontier(
        self,
        samples_per_dimension: int = 120,
        respect_requirements: bool = False,
    ) -> List[TradeoffPoint]:
        """Sample the protocol's energy-delay Pareto frontier.

        The frontier is the curve on which the paper's figures place the
        trade-off points.  Points are obtained by evaluating the model on a
        dense parameter grid, discarding inadmissible configurations, and
        keeping the Pareto-efficient subset.

        Args:
            samples_per_dimension: Grid resolution along each parameter axis.
            respect_requirements: When True, configurations violating the
                application requirements are discarded before the Pareto
                filtering (the "feasible frontier" of the specific game).
        """
        space = self._model.parameter_space
        grid = space.grid(samples_per_dimension)
        admissible = self._model.is_admissible_many(grid)
        candidates = grid[admissible]
        if candidates.shape[0] == 0:
            return []
        energies = self._model.energy_many(candidates)
        delays = self._model.latency_many(candidates)
        if respect_requirements:
            satisfied = np.array(
                [
                    self._requirements.satisfied_by(energy, delay)
                    for energy, delay in zip(energies.tolist(), delays.tolist())
                ],
                dtype=bool,
            )
            candidates = candidates[satisfied]
            energies = energies[satisfied]
            delays = delays[satisfied]
        if candidates.shape[0] == 0:
            return []
        admissible_points = list(candidates)
        cost_array = np.stack([energies, delays], axis=-1)
        frontier_costs = pareto_frontier(cost_array)
        # Map each frontier point back to a parameter vector (first match).
        frontier_points: List[TradeoffPoint] = []
        for energy, delay in frontier_costs:
            index = int(
                np.argmin(
                    np.abs(cost_array[:, 0] - energy) + np.abs(cost_array[:, 1] - delay)
                )
            )
            frontier_points.append(
                TradeoffPoint(
                    parameters=self._model.coerce(admissible_points[index]),
                    energy=float(energy),
                    delay=float(delay),
                )
            )
        return frontier_points

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, object]:
        """Solve the game and return a flat report dictionary."""
        solution = self.solve()
        report = solution.as_dict()
        report["scenario"] = dict(self._model.scenario.describe())
        return report
