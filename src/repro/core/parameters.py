"""Tunable MAC parameter vectors.

The paper denotes by ``Theta`` the set of parameters that can be optimized
and by ``X in Theta`` the vector of protocol-specific tunables (wake-up
interval for X-MAC, frame length for DMAC, slot length and slot count for
LMAC).  This module provides a small, explicit representation of such
parameter vectors: named scalars with box bounds, plus helpers to convert
between dictionaries and plain ``numpy`` arrays for the solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Parameter:
    """One tunable protocol parameter.

    Attributes:
        name: Identifier used in result dictionaries (e.g. ``"wakeup_interval"``).
        lower: Lower bound (inclusive).
        upper: Upper bound (inclusive).
        unit: Human-readable unit, for reports (e.g. ``"s"``).
        description: One-line explanation of what the parameter controls.
        integer: Whether the parameter is physically integer-valued (e.g. a
            slot count).  Solvers treat it as continuous and round at the end.
    """

    name: str
    lower: float
    upper: float
    unit: str = ""
    description: str = ""
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"parameter name must be a non-empty string, got {self.name!r}")
        if not (math.isfinite(self.lower) and math.isfinite(self.upper)):
            raise ConfigurationError(f"bounds of {self.name!r} must be finite")
        if self.lower > self.upper:
            raise ConfigurationError(
                f"parameter {self.name!r} has empty range [{self.lower}, {self.upper}]"
            )

    @property
    def span(self) -> float:
        """Width of the admissible interval."""
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        """Centre of the admissible interval."""
        return 0.5 * (self.lower + self.upper)

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        """Whether ``value`` lies inside the bounds (with a small tolerance)."""
        return (self.lower - tolerance) <= value <= (self.upper + tolerance)

    def clip(self, value: float) -> float:
        """Project ``value`` onto the admissible interval."""
        return min(self.upper, max(self.lower, float(value)))

    def sample_grid(self, count: int) -> np.ndarray:
        """Return ``count`` evenly spaced admissible values (log-spaced when
        the interval spans more than two orders of magnitude and is positive)."""
        if count < 1:
            raise ConfigurationError(f"grid count must be >= 1, got {count!r}")
        if count == 1 or self.span == 0.0:
            return np.array([self.midpoint])
        if self.lower > 0 and self.upper / self.lower > 100.0:
            return np.geomspace(self.lower, self.upper, count)
        return np.linspace(self.lower, self.upper, count)


class ParameterSpace:
    """An ordered collection of :class:`Parameter` objects.

    The order defines the layout of the plain arrays exchanged with the
    numerical solvers.
    """

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        parameters = list(parameters)
        if not parameters:
            raise ConfigurationError("a parameter space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate parameter names: {names}")
        self._parameters: List[Parameter] = parameters
        self._index: Dict[str, int] = {p.name: i for i, p in enumerate(parameters)}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._parameters[self._index[name]]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown parameter {name!r}; known: {self.names}"
            ) from exc

    @property
    def names(self) -> List[str]:
        """Parameter names in solver order."""
        return [p.name for p in self._parameters]

    @property
    def dimension(self) -> int:
        """Number of tunable parameters."""
        return len(self._parameters)

    @property
    def lower_bounds(self) -> np.ndarray:
        """Vector of lower bounds in solver order."""
        return np.array([p.lower for p in self._parameters], dtype=float)

    @property
    def upper_bounds(self) -> np.ndarray:
        """Vector of upper bounds in solver order."""
        return np.array([p.upper for p in self._parameters], dtype=float)

    @property
    def bounds(self) -> List[Tuple[float, float]]:
        """List of ``(lower, upper)`` pairs, the format SciPy expects."""
        return [(p.lower, p.upper) for p in self._parameters]

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def to_array(self, values: Mapping[str, float]) -> np.ndarray:
        """Convert a ``{name: value}`` mapping into a solver-ordered array.

        Raises:
            ConfigurationError: if a parameter is missing or unknown names
                are present.
        """
        unknown = set(values) - set(self._index)
        if unknown:
            raise ConfigurationError(f"unknown parameter(s): {sorted(unknown)}")
        missing = set(self._index) - set(values)
        if missing:
            raise ConfigurationError(f"missing parameter(s): {sorted(missing)}")
        return np.array([float(values[name]) for name in self.names], dtype=float)

    def to_dict(self, array: Sequence[float]) -> Dict[str, float]:
        """Convert a solver-ordered array into a ``{name: value}`` mapping."""
        array = np.asarray(array, dtype=float).ravel()
        if array.shape[0] != self.dimension:
            raise ConfigurationError(
                f"expected {self.dimension} values, got {array.shape[0]}"
            )
        return {name: float(array[i]) for i, name in enumerate(self.names)}

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    def contains(self, array: Sequence[float], tolerance: float = 1e-9) -> bool:
        """Whether a point lies inside the box (with tolerance)."""
        array = np.asarray(array, dtype=float).ravel()
        if array.shape[0] != self.dimension:
            return False
        return all(
            parameter.contains(value, tolerance)
            for parameter, value in zip(self._parameters, array)
        )

    def clip(self, array: Sequence[float]) -> np.ndarray:
        """Project a point onto the box."""
        array = np.asarray(array, dtype=float).ravel()
        if array.shape[0] != self.dimension:
            raise ConfigurationError(
                f"expected {self.dimension} values, got {array.shape[0]}"
            )
        return np.clip(array, self.lower_bounds, self.upper_bounds)

    def midpoint(self) -> np.ndarray:
        """Centre of the box, a robust solver starting point."""
        return np.array([p.midpoint for p in self._parameters], dtype=float)

    def grid(self, points_per_dimension: int) -> np.ndarray:
        """Full-factorial grid over the box.

        Returns an array of shape ``(points_per_dimension ** dim, dim)``.
        Only intended for the low-dimensional (1–3 parameters) spaces used by
        the MAC models; the size is validated to avoid surprises.
        """
        if points_per_dimension < 1:
            raise ConfigurationError("points_per_dimension must be >= 1")
        total = points_per_dimension**self.dimension
        if total > 2_000_000:
            raise ConfigurationError(
                f"grid of {total} points is too large; reduce points_per_dimension"
            )
        axes = [p.sample_grid(points_per_dimension) for p in self._parameters]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=-1)

    def random_points(self, count: int, seed: int = 0) -> np.ndarray:
        """Uniform random points inside the box (for multi-start solvers)."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        rng = np.random.default_rng(seed)
        unit = rng.uniform(0.0, 1.0, size=(count, self.dimension))
        return self.lower_bounds + unit * (self.upper_bounds - self.lower_bounds)

    def describe(self) -> List[Dict[str, object]]:
        """Structured description used in reports."""
        return [
            {
                "name": p.name,
                "lower": p.lower,
                "upper": p.upper,
                "unit": p.unit,
                "integer": p.integer,
                "description": p.description,
            }
            for p in self._parameters
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{p.name}∈[{p.lower:g},{p.upper:g}]" for p in self._parameters
        )
        return f"ParameterSpace({inner})"
