"""Energy-delay Pareto frontier utilities.

The curves behind the paper's figures are the protocols' energy-delay
frontiers: the set of operating points for which no admissible parameter
change improves one metric without degrading the other.  These helpers work
on arrays of cost pairs (minimization sense for both coordinates).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def _as_cost_array(points: Iterable[Sequence[float]]) -> np.ndarray:
    array = np.asarray(list(points), dtype=float)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ConfigurationError(f"expected an (n, 2) array of cost pairs, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ConfigurationError("cost pairs contain non-finite values")
    return array


def is_pareto_efficient(points: Iterable[Sequence[float]]) -> np.ndarray:
    """Boolean mask of Pareto-efficient points (both coordinates minimized).

    A point is efficient when no other point is at least as good in both
    coordinates and strictly better in one.
    """
    costs = _as_cost_array(points)
    count = costs.shape[0]
    efficient = np.ones(count, dtype=bool)
    for index in range(count):
        if not efficient[index]:
            continue
        dominates = np.all(costs <= costs[index], axis=1) & np.any(costs < costs[index], axis=1)
        if np.any(dominates):
            efficient[index] = False
    return efficient


def pareto_frontier(points: Iterable[Sequence[float]]) -> np.ndarray:
    """Return the Pareto-efficient subset sorted by the first coordinate.

    The result is an ``(m, 2)`` array: the frontier curve from the cheapest
    (lowest-energy) to the fastest (lowest-delay) end, which is how the
    figure benches print the series.
    """
    costs = _as_cost_array(points)
    mask = is_pareto_efficient(costs)
    frontier = costs[mask]
    order = np.argsort(frontier[:, 0], kind="stable")
    return frontier[order]


def hypervolume_2d(
    points: Iterable[Sequence[float]], reference: Sequence[float]
) -> float:
    """Dominated hypervolume (area) of a 2-D minimization frontier.

    The hypervolume with respect to a reference (worst-case) point is a
    scalar quality indicator of a frontier; the ablation benches use it to
    compare frontiers produced by different solvers.

    Raises:
        ConfigurationError: if the reference point does not dominate-worse
            every frontier point (which would make the area ill-defined).
    """
    frontier = pareto_frontier(points)
    ref = np.asarray(reference, dtype=float).ravel()
    if ref.shape != (2,):
        raise ConfigurationError(f"reference must be a pair, got {reference!r}")
    if np.any(frontier[:, 0] > ref[0]) or np.any(frontier[:, 1] > ref[1]):
        raise ConfigurationError("reference point must be worse than every frontier point")
    area = 0.0
    previous_second = ref[1]
    for first, second in frontier:
        width = ref[0] - first
        height = previous_second - second
        if height < 0:
            continue
        area += width * height
        previous_second = second
    return float(area)


def attainment_curve(
    points: Iterable[Sequence[float]], grid: Sequence[float]
) -> List[Tuple[float, float]]:
    """Best achievable second coordinate for each bound on the first.

    For each value ``g`` in ``grid`` (interpreted as a cap on the first
    coordinate, e.g. an energy budget), returns the minimum second coordinate
    among points whose first coordinate is below ``g`` — ``inf`` if none is.
    Useful for turning a frontier sample into "delay achievable under budget"
    tables.
    """
    costs = _as_cost_array(points)
    curve: List[Tuple[float, float]] = []
    for bound in grid:
        bound = float(bound)
        admissible = costs[costs[:, 0] <= bound]
        if admissible.size == 0:
            curve.append((bound, float("inf")))
        else:
            curve.append((bound, float(admissible[:, 1].min())))
    return curve
