"""Core framework: the paper's contribution.

This subpackage implements Section 2 of the paper:

* :mod:`repro.core.parameters` — tunable MAC parameter vectors ``X`` and
  their admissible boxes ``Theta``.
* :mod:`repro.core.requirements` — application requirements
  ``(Ebudget, Lmax)`` plus the sampling rate.
* :mod:`repro.core.problems` — the constrained optimization problems (P1)
  energy minimization, (P2) delay minimization and (P4) the concave Nash
  bargaining reformulation.
* :mod:`repro.core.bargaining` — the Nash Bargaining Solution applied to the
  energy/delay game (players are the metrics, not the nodes).
* :mod:`repro.core.fairness` — the proportional-fairness identity the paper
  proves for the chosen disagreement point.
* :mod:`repro.core.pareto` — energy-delay Pareto frontier extraction.
* :mod:`repro.core.tradeoff` — :class:`EnergyDelayGame`, the high-level
  orchestrator that ties everything together (the main public API).
* :mod:`repro.core.results` — result dataclasses shared by all of the above.
"""

from repro.core.parameters import Parameter, ParameterSpace
from repro.core.requirements import ApplicationRequirements
from repro.core.results import (
    OptimizationOutcome,
    TradeoffPoint,
    BargainingOutcome,
    GameSolution,
)
from repro.core.problems import (
    EnergyMinimizationProblem,
    DelayMinimizationProblem,
    NashBargainingProblem,
)
from repro.core.bargaining import NashBargainingSolver
from repro.core.fairness import proportional_fairness_residual, is_proportionally_fair
from repro.core.pareto import pareto_frontier, is_pareto_efficient
from repro.core.tradeoff import EnergyDelayGame

__all__ = [
    "Parameter",
    "ParameterSpace",
    "ApplicationRequirements",
    "OptimizationOutcome",
    "TradeoffPoint",
    "BargainingOutcome",
    "GameSolution",
    "EnergyMinimizationProblem",
    "DelayMinimizationProblem",
    "NashBargainingProblem",
    "NashBargainingSolver",
    "proportional_fairness_residual",
    "is_proportionally_fair",
    "pareto_frontier",
    "is_pareto_efficient",
    "EnergyDelayGame",
]
