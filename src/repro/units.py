"""Small helpers for unit handling and numeric hygiene.

The analytical models in :mod:`repro.protocols` and the game formulation in
:mod:`repro.core` mix quantities expressed in seconds, milliseconds, joules,
watts, bits and bytes.  Keeping the conversions in one place avoids the
classic class of bugs where a milli- factor silently goes missing.

All public model code in the library uses **SI base units internally**:
seconds for time, joules for energy, watts for power, bits for frame sizes
and hertz for rates.  The helpers below convert at the boundaries (user
input, report output).
"""

from __future__ import annotations

import math
from typing import Iterable

#: Number of bits in a byte; frame sizes are specified in bytes by users.
BITS_PER_BYTE = 8

#: Milliseconds per second, used when formatting delays the way the paper does.
MS_PER_S = 1000.0

#: Microjoule per joule, occasionally useful when reporting per-packet costs.
UJ_PER_J = 1.0e6


def ms_to_s(milliseconds: float) -> float:
    """Convert a duration in milliseconds to seconds."""
    return float(milliseconds) / MS_PER_S


def s_to_ms(seconds: float) -> float:
    """Convert a duration in seconds to milliseconds.

    The paper's figures report end-to-end delay in milliseconds, so reporting
    code uses this helper when printing series.
    """
    return float(seconds) * MS_PER_S


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a frame size in bytes to bits."""
    return float(n_bytes) * BITS_PER_BYTE


def bits_to_bytes(n_bits: float) -> float:
    """Convert a frame size in bits to bytes."""
    return float(n_bits) / BITS_PER_BYTE


def mw_to_w(milliwatts: float) -> float:
    """Convert a power draw in milliwatts to watts."""
    return float(milliwatts) / 1000.0


def w_to_mw(watts: float) -> float:
    """Convert a power draw in watts to milliwatts."""
    return float(watts) * 1000.0


def ma_to_w(milliamps: float, voltage: float = 3.0) -> float:
    """Convert a current draw (mA) at the given supply voltage to watts.

    Radio datasheets (e.g. the CC2420) specify consumption as current draw;
    energy models need power.  ``P = V * I``.
    """
    if voltage <= 0:
        raise ValueError(f"voltage must be positive, got {voltage!r}")
    return float(milliamps) / 1000.0 * float(voltage)


def is_close(a: float, b: float, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Robust float comparison used across tests and invariant checks."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp ``value`` to the closed interval ``[lower, upper]``.

    Raises:
        ValueError: if ``lower > upper``.
    """
    if lower > upper:
        raise ValueError(f"empty interval: lower={lower!r} > upper={upper!r}")
    return max(lower, min(upper, value))


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a strictly positive finite number.

    Returns the value unchanged so the helper can be used inline in
    constructors, e.g. ``self.rate = require_positive("rate", rate)``.
    """
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def require_in_range(name: str, value: float, lower: float, upper: float) -> float:
    """Validate that ``value`` lies in the closed interval ``[lower, upper]``."""
    value = float(value)
    if not (lower <= value <= upper):
        raise ValueError(
            f"{name} must lie in [{lower!r}, {upper!r}], got {value!r}"
        )
    return value


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable of floats."""
    values = list(values)
    if not values:
        raise ValueError("mean() of an empty iterable")
    return sum(values) / len(values)
