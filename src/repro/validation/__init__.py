"""Monte-Carlo validation campaigns: replicated model-vs-simulation checks.

Scales the single-configuration spot check of
:mod:`repro.analysis.validation` into statistically quantified campaigns
over the whole scenario suite:

* :mod:`repro.validation.stats` — streaming Welford moments and Student-t
  confidence intervals;
* :mod:`repro.validation.campaign` — :func:`run_campaign`: solve every
  (scenario × protocol) game through the batch runner, replicate the
  simulation with derived seeds, aggregate and tolerance-gate each cell;
* :mod:`repro.validation.artifacts` — versioned JSON artifact + CSV rows;
* :mod:`repro.validation.report` — ``docs/validation.md`` generator
  (``python -m repro.validation.report``).

The campaign inherits the runtime's core guarantee: a ``--workers N`` run
produces a byte-identical artifact to a serial run.
"""

from repro.validation.artifacts import (
    CAMPAIGN_SCHEMA,
    CAMPAIGN_SCHEMA_VERSION,
    campaign_to_json,
    load_campaign_dict,
    write_campaign,
)
from repro.validation.campaign import (
    CAMPAIGN_METRICS,
    CampaignCell,
    CampaignResult,
    CampaignSpec,
    MetricCheck,
    ReplicationMeasurement,
    aggregate_measurements,
    campaign_rows,
    replication_seed,
    run_campaign,
)
from repro.validation.stats import MetricAggregate, StreamingMoments, student_t_critical

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CAMPAIGN_SCHEMA_VERSION",
    "CAMPAIGN_METRICS",
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "MetricAggregate",
    "MetricCheck",
    "ReplicationMeasurement",
    "StreamingMoments",
    "aggregate_measurements",
    "campaign_rows",
    "campaign_to_json",
    "load_campaign_dict",
    "replication_seed",
    "run_campaign",
    "student_t_critical",
    "write_campaign",
]
