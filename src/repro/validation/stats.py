"""Streaming statistics for replicated simulation campaigns.

A campaign replicates every (scenario, protocol) simulation R times with
independent seeds and needs mean/variance/confidence intervals per metric
without keeping the raw samples around.  :class:`StreamingMoments` is the
standard single-pass Welford recurrence (numerically stable, order-dependent
only in the bit-irrelevant sense: the campaign always feeds samples in
replication order, so serial and process-pool runs aggregate identically),
and :class:`MetricAggregate` is the frozen summary that ends up in the
campaign artifact.

The confidence interval is the classic Student-t interval
``mean ± t_{(1+c)/2, n-1} * s / sqrt(n)``.  With a single replication the
sample variance — and hence the interval — is undefined; that degenerate
case is represented as ``None`` bounds rather than ``inf`` so it survives a
JSON round-trip unambiguously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ValidationError


def student_t_critical(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value ``t_{(1+confidence)/2, dof}``.

    Args:
        confidence: Two-sided confidence level in (0, 1), e.g. ``0.95``.
        dof: Degrees of freedom (must be >= 1).

    Returns:
        The critical value such that the central interval of the t
        distribution with ``dof`` degrees of freedom has mass ``confidence``.

    Raises:
        ValidationError: if ``confidence`` is outside (0, 1) or ``dof < 1``.
    """
    if not (0.0 < confidence < 1.0):
        raise ValidationError(f"confidence must lie in (0, 1), got {confidence!r}")
    if dof < 1:
        raise ValidationError(f"degrees of freedom must be >= 1, got {dof!r}")
    from scipy.stats import t as student_t

    return float(student_t.ppf((1.0 + confidence) / 2.0, dof))


class StreamingMoments:
    """Welford's single-pass accumulator of mean and variance.

    Feed samples with :meth:`add`; read ``count`` / ``mean`` /
    ``variance`` / ``std`` at any point.  The variance is the *sample*
    variance (``ddof=1``), which is what the Student-t interval needs.

    Example:
        >>> moments = StreamingMoments()
        >>> for x in (1.0, 2.0, 3.0):
        ...     moments.add(x)
        >>> moments.count, moments.mean, moments.variance
        (3, 2.0, 1.0)
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, sample: float) -> None:
        """Fold one sample into the running moments.

        Args:
            sample: The sample value (must be finite).

        Raises:
            ValidationError: if the sample is NaN or infinite.
        """
        value = float(sample)
        if not math.isfinite(value):
            raise ValidationError(f"samples must be finite, got {sample!r}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        """Number of samples folded in so far."""
        return self._count

    @property
    def mean(self) -> Optional[float]:
        """Sample mean, or ``None`` before the first sample."""
        if self._count == 0:
            return None
        return self._mean

    @property
    def variance(self) -> Optional[float]:
        """Sample variance (``ddof=1``), or ``None`` with fewer than 2 samples."""
        if self._count < 2:
            return None
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> Optional[float]:
        """Sample standard deviation, or ``None`` with fewer than 2 samples."""
        variance = self.variance
        if variance is None:
            return None
        return math.sqrt(variance)


@dataclass(frozen=True)
class MetricAggregate:
    """Frozen summary of one metric across a cell's replications.

    Attributes:
        metric: Metric name (``"energy"``, ``"delay"``, ``"delivery_ratio"``).
        count: Number of replications that produced a sample (can be below
            the campaign's replication count, e.g. delay when some
            replications delivered no packet).
        mean: Sample mean, or ``None`` when no replication produced a sample.
        variance: Sample variance (``ddof=1``), or ``None`` when fewer than
            two samples exist — the single-replication degenerate case.
        std: Sample standard deviation, ``None`` under the same condition.
        ci_lower: Lower bound of the Student-t confidence interval, or
            ``None`` when the interval is undefined (fewer than two samples).
        ci_upper: Upper bound, same convention.
        confidence: Two-sided confidence level the interval was computed at.
    """

    metric: str
    count: int
    mean: Optional[float]
    variance: Optional[float]
    std: Optional[float]
    ci_lower: Optional[float]
    ci_upper: Optional[float]
    confidence: float

    @classmethod
    def from_moments(
        cls, metric: str, moments: StreamingMoments, confidence: float
    ) -> "MetricAggregate":
        """Summarize a finished accumulator into a frozen aggregate.

        Args:
            metric: Metric name recorded in the aggregate.
            moments: The accumulator holding the replication samples.
            confidence: Two-sided confidence level for the Student-t interval.

        Returns:
            The :class:`MetricAggregate`; interval bounds are ``None`` when
            fewer than two samples make the interval undefined.
        """
        mean = moments.mean
        std = moments.std
        ci_lower = ci_upper = None
        if mean is not None and std is not None and moments.count >= 2:
            half_width = (
                student_t_critical(confidence, moments.count - 1)
                * std
                / math.sqrt(moments.count)
            )
            ci_lower = mean - half_width
            ci_upper = mean + half_width
        return cls(
            metric=metric,
            count=moments.count,
            mean=mean,
            variance=moments.variance,
            std=std,
            ci_lower=ci_lower,
            ci_upper=ci_upper,
            confidence=confidence,
        )

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready representation (``None`` maps to JSON ``null``)."""
        return {
            "metric": self.metric,
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "std": self.std,
            "ci_lower": self.ci_lower,
            "ci_upper": self.ci_upper,
            "confidence": self.confidence,
        }
