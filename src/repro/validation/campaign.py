"""Monte-Carlo validation campaigns across the scenario suite.

:mod:`repro.analysis.validation` compares the analytical model against the
simulator at *one* seed and *one* configuration — a spot check.  A campaign
scales that into a statistically quantified sweep: for every
(scenario preset × protocol), solve the bargaining game through the shared
:class:`~repro.runtime.batch.BatchRunner` (so the solve stage is cached and
deduplicated), then run R independently seeded packet-level replications at
the Nash bargaining point, aggregate each metric with streaming Welford
moments and Student-t confidence intervals, and gate the cell with
per-metric tolerance checks.

Disagreement is **data, not an exception**: a cell whose game is infeasible,
whose replications deliver no packets, or whose simulated mean falls outside
the analytical tolerance is recorded with a failed/skipped check and the
campaign keeps going.  The whole result serializes into a versioned JSON
artifact (see :mod:`repro.validation.artifacts`) from which
``docs/validation.md`` is generated (:mod:`repro.validation.report`).

Determinism: replication seeds are derived by hashing
``(base_seed, scenario, protocol, replication)``, each simulation is fully
determined by its seed, and aggregation always folds samples in replication
order — so a campaign run with ``--workers N`` is byte-identical to a serial
run (``tests/validation`` and ``benchmarks/bench_campaign.py`` assert it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, StoreError, ValidationError
from repro.optimization.hybrid import SOLVER_METHODS
from repro.protocols.registry import canonical_name, protocol_class
from repro.runtime import BatchRunner, default_runner
from repro.scenarios.presets import available_scenarios, scenario_preset
from repro.simulation.mac.factory import available_mac_protocols, has_behaviour_for
from repro.simulation.runner import SIM_ENGINES, SimulationConfig, simulate_protocol
from repro.validation.stats import MetricAggregate, StreamingMoments

#: Metrics every campaign cell aggregates, in artifact order.
CAMPAIGN_METRICS = ("energy", "delay", "delivery_ratio")

#: Allowed states of a :class:`MetricCheck`.
CHECK_STATUSES = ("pass", "fail", "skipped")


def replication_seed(base_seed: int, scenario: str, protocol: str, replication: int) -> int:
    """Deterministic, platform-independent seed of one replication.

    The seed is derived by hashing the full replication identity, so it does
    not depend on the order cells are enumerated in, on the worker count, or
    on Python's per-process hash randomization.

    Args:
        base_seed: Campaign-level base seed.
        scenario: Scenario preset name.
        protocol: Canonical protocol name.
        replication: Zero-based replication index.

    Returns:
        A 32-bit unsigned seed for :class:`~repro.simulation.runner.SimulationConfig`.
    """
    identity = f"{base_seed}:{scenario}:{protocol}:{replication}".encode("utf-8")
    digest = hashlib.sha256(identity).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one validation campaign.

    Attributes:
        scenarios: Scenario preset names to cover (default: all registered).
        protocols: Protocol names to cover (default: every registered
            protocol with a simulated behaviour — all four built-ins,
            including SCP-MAC).
        replications: Independently seeded simulation runs per cell.
        base_seed: Base seed every replication seed is derived from.
        horizon: Simulated duration of each replication (seconds).
        confidence: Two-sided confidence level of the Student-t intervals.
        grid_points_per_dimension: Grid resolution of the game solver.
        energy_tolerance: Allowed relative error of the analytical energy
            prediction against the simulated mean.
        delay_tolerance: Allowed relative error of the delay prediction.
        min_delivery_ratio: Floor on the mean delivery ratio.
        sim_engine: Simulation engine the replications run on (``"scalar"``
            or ``"batched"``).  Pure runtime provenance: the engines are
            bit-identical, so the knob is excluded from :meth:`as_dict`
            (campaign artifacts stay byte-identical across engines) and
            from the result-store record keys.
        solver_method: Grid stage of the game solver (``"exhaustive"`` or
            ``"adaptive"``).  Like ``sim_engine``, the methods return
            identical solutions, so the knob is excluded from
            :meth:`as_dict` and from the solve cache/store keys.
    """

    scenarios: Tuple[str, ...] = ()
    protocols: Tuple[str, ...] = ()
    replications: int = 5
    base_seed: int = 1
    horizon: float = 1500.0
    confidence: float = 0.95
    grid_points_per_dimension: int = 40
    energy_tolerance: float = 0.35
    delay_tolerance: float = 0.6
    min_delivery_ratio: float = 0.9
    sim_engine: str = "scalar"
    solver_method: str = "exhaustive"

    def __post_init__(self) -> None:
        scenarios = tuple(self.scenarios) or tuple(available_scenarios())
        protocols = tuple(
            canonical_name(name) for name in (self.protocols or _simulable_protocols())
        )
        for name in scenarios:
            scenario_preset(name)  # raises ConfigurationError on unknown names
        for name in protocols:
            # Reject analytical-only protocols up front: discovering mid-
            # campaign (after the solve stage) that a cell cannot be
            # simulated would abort the whole run.
            if not has_behaviour_for(protocol_class(name)):
                raise ConfigurationError(
                    f"protocol {name!r} has no simulated behaviour and cannot "
                    f"be validated by simulation; simulable protocols: "
                    f"{', '.join(available_mac_protocols())}"
                )
        object.__setattr__(self, "scenarios", scenarios)
        object.__setattr__(self, "protocols", protocols)
        if len(set(scenarios)) != len(scenarios):
            raise ConfigurationError(f"duplicate scenarios in campaign: {scenarios}")
        if len(set(protocols)) != len(protocols):
            raise ConfigurationError(f"duplicate protocols in campaign: {protocols}")
        if self.replications < 1:
            raise ConfigurationError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon!r}")
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie in (0, 1), got {self.confidence!r}"
            )
        if self.energy_tolerance <= 0 or self.delay_tolerance <= 0:
            raise ConfigurationError("tolerances must be positive")
        if not (0.0 <= self.min_delivery_ratio <= 1.0):
            raise ConfigurationError(
                f"min_delivery_ratio must lie in [0, 1], got {self.min_delivery_ratio!r}"
            )
        if self.sim_engine not in SIM_ENGINES:
            raise ConfigurationError(
                f"unknown simulation engine {self.sim_engine!r}; "
                f"choose from {', '.join(SIM_ENGINES)}"
            )
        if self.solver_method not in SOLVER_METHODS:
            raise ConfigurationError(
                f"unknown solver method {self.solver_method!r}; "
                f"choose from {', '.join(SOLVER_METHODS)}"
            )

    @property
    def cell_count(self) -> int:
        """Number of (scenario, protocol) cells the campaign covers."""
        return len(self.scenarios) * len(self.protocols)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (embedded in the campaign artifact)."""
        return {
            "scenarios": list(self.scenarios),
            "protocols": list(self.protocols),
            "replications": self.replications,
            "base_seed": self.base_seed,
            "horizon_s": self.horizon,
            "confidence": self.confidence,
            "grid_points_per_dimension": self.grid_points_per_dimension,
            "energy_tolerance": self.energy_tolerance,
            "delay_tolerance": self.delay_tolerance,
            "min_delivery_ratio": self.min_delivery_ratio,
        }


def _simulable_protocols() -> Tuple[str, ...]:
    """Registered protocols that have a simulated behaviour.

    Delegates to :func:`repro.simulation.mac.factory.available_mac_protocols`,
    so analytical-only models (user-registered protocols without a
    registered behaviour) are excluded.
    """
    return tuple(available_mac_protocols())


@dataclass(frozen=True)
class ReplicationMeasurement:
    """Metrics of one seeded simulation replication.

    Attributes:
        seed: The replication's simulation seed.
        energy: Measured mean ring-1 per-node power (J/s).
        delay: Measured mean end-to-end delay of the farthest delivering
            ring (s), or ``None`` when the replication delivered no packet.
        delivery_ratio: Fraction of generated packets delivered.
        generated: Packets generated.
        delivered: Packets delivered to the sink.
        dropped: Packets dropped at full queues.
    """

    seed: int
    energy: float
    delay: Optional[float]
    delivery_ratio: float
    generated: int
    delivered: int
    dropped: int

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready payload for the persistent result store.

        Every field round-trips exactly through JSON (floats keep their
        shortest round-tripping ``repr``), so a measurement read back from
        the store is indistinguishable from a freshly simulated one — the
        property resume/shard-merge byte-identity rests on.
        """
        return {
            "seed": self.seed,
            "energy": self.energy,
            "delay": self.delay,
            "delivery_ratio": self.delivery_ratio,
            "generated": self.generated,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ReplicationMeasurement":
        """Rebuild a measurement from its stored payload.

        Raises:
            StoreError: if the payload is missing fields or has the wrong
                shape (e.g. a record of another kind filed under this key).
        """
        try:
            delay = payload["delay"]
            return cls(
                seed=int(payload["seed"]),  # type: ignore[arg-type]
                energy=float(payload["energy"]),  # type: ignore[arg-type]
                delay=None if delay is None else float(delay),  # type: ignore[arg-type]
                delivery_ratio=float(payload["delivery_ratio"]),  # type: ignore[arg-type]
                generated=int(payload["generated"]),  # type: ignore[arg-type]
                delivered=int(payload["delivered"]),  # type: ignore[arg-type]
                dropped=int(payload["dropped"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(f"malformed replication payload: {error!r}") from error


@dataclass(frozen=True)
class MetricCheck:
    """One tolerance gate of a campaign cell — pass/fail/skip as data.

    Attributes:
        metric: The gated metric name.
        status: ``"pass"``, ``"fail"`` or ``"skipped"``.
        observed: The simulated aggregate the gate looked at (``None`` when
            skipped for lack of data).
        reference: The analytical prediction (energy/delay) or the required
            floor (delivery ratio).
        tolerance: Allowed relative error, or ``None`` for floor checks.
        error: Achieved relative error, or ``None`` when not applicable.
        detail: Human-readable reason, filled for failures and skips.
    """

    metric: str
    status: str
    observed: Optional[float] = None
    reference: Optional[float] = None
    tolerance: Optional[float] = None
    error: Optional[float] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in CHECK_STATUSES:
            raise ValidationError(
                f"check status must be one of {CHECK_STATUSES}, got {self.status!r}"
            )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "metric": self.metric,
            "status": self.status,
            "observed": self.observed,
            "reference": self.reference,
            "tolerance": self.tolerance,
            "error": self.error,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class CampaignCell:
    """Everything the campaign learned about one (scenario, protocol) pair.

    Attributes:
        scenario: Scenario preset name.
        protocol: Canonical protocol name.
        feasible: Whether the bargaining game had a solution (only feasible
            cells are simulated).
        solve_error: Why the cell was not simulated, when infeasible.
        parameters: The Nash bargaining point's parameter vector.
        analytical_energy: Model-predicted ring-1 per-node power (J/s).
        analytical_delay: Model-predicted end-to-end delay (s).
        seeds: Replication seeds, in replication order.
        metrics: One :class:`MetricAggregate` per campaign metric.
        checks: The cell's tolerance gates.
        generated: Total packets generated across replications.
        delivered: Total packets delivered across replications.
        dropped: Total packets dropped across replications.
    """

    scenario: str
    protocol: str
    feasible: bool
    solve_error: str = ""
    parameters: Mapping[str, float] = field(default_factory=dict)
    analytical_energy: Optional[float] = None
    analytical_delay: Optional[float] = None
    seeds: Tuple[int, ...] = ()
    metrics: Mapping[str, MetricAggregate] = field(default_factory=dict)
    checks: Tuple[MetricCheck, ...] = ()
    generated: int = 0
    delivered: int = 0
    dropped: int = 0

    @property
    def passed(self) -> bool:
        """Whether the cell is feasible and no check failed."""
        return self.feasible and all(check.status != "fail" for check in self.checks)

    def check(self, metric: str) -> Optional[MetricCheck]:
        """The cell's check for one metric, or ``None`` if absent."""
        for check in self.checks:
            if check.metric == metric:
                return check
        return None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the artifact's per-cell record)."""
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "feasible": self.feasible,
            "solve_error": self.solve_error,
            "parameters": dict(self.parameters),
            "analytical_energy_j_per_s": self.analytical_energy,
            "analytical_delay_s": self.analytical_delay,
            "seeds": list(self.seeds),
            "metrics": {name: agg.as_dict() for name, agg in self.metrics.items()},
            "checks": [check.as_dict() for check in self.checks],
            "generated": self.generated,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }


@dataclass
class CampaignResult:
    """All cells of one campaign run, in (scenario-major) submission order.

    Attributes:
        spec: The campaign specification that produced the result.
        cells: One :class:`CampaignCell` per (scenario, protocol) pair.
    """

    spec: CampaignSpec
    cells: List[CampaignCell] = field(default_factory=list)

    @property
    def feasible_cells(self) -> List[CampaignCell]:
        """Cells whose game produced a solution (and were simulated)."""
        return [cell for cell in self.cells if cell.feasible]

    @property
    def failed_cells(self) -> List[CampaignCell]:
        """Feasible cells with at least one failed check."""
        return [cell for cell in self.cells if cell.feasible and not cell.passed]

    @property
    def passed(self) -> bool:
        """Whether every feasible cell passed all its checks."""
        return not self.failed_cells

    def cell(self, scenario: str, protocol: str) -> Optional[CampaignCell]:
        """The cell of one (scenario, protocol) pair, or ``None`` if absent."""
        protocol = canonical_name(protocol)
        for cell in self.cells:
            if cell.scenario == scenario and cell.protocol == protocol:
                return cell
        return None

    def check_counts(self) -> Dict[str, int]:
        """Number of checks per status across all cells."""
        counts = {status: 0 for status in CHECK_STATUSES}
        for cell in self.cells:
            for check in cell.checks:
                counts[check.status] += 1
        return counts

    def rows(self) -> List[Dict[str, object]]:
        """One flat row per cell, for tables and CSV export.

        Delegates to :func:`campaign_rows` over :meth:`as_dict`, so a CSV
        written at campaign time has exactly the columns of one derived
        later from the loaded artifact.
        """
        return campaign_rows(self.as_dict())

    def as_dict(self) -> Dict[str, object]:
        """The versioned artifact payload (see :mod:`repro.validation.artifacts`).

        Deliberately excludes wall-clock timing and runner identity so the
        artifact of a ``--workers N`` run is byte-identical to a serial one.
        """
        counts = self.check_counts()
        return {
            "schema": "repro.validation.campaign",
            "schema_version": 1,
            "spec": self.spec.as_dict(),
            "summary": {
                "cells": len(self.cells),
                "feasible_cells": len(self.feasible_cells),
                "failed_cells": len(self.failed_cells),
                "checks_pass": counts["pass"],
                "checks_fail": counts["fail"],
                "checks_skipped": counts["skipped"],
            },
            "cells": [cell.as_dict() for cell in self.cells],
        }


def campaign_rows(artifact: Mapping[str, object]) -> List[Dict[str, object]]:
    """Flatten a campaign payload into one row per cell (for CSV/tables).

    The single row schema shared by :meth:`CampaignResult.rows` and the
    artifact loader in :mod:`repro.validation.artifacts`.

    Args:
        artifact: A payload from ``CampaignResult.as_dict()`` or
            :func:`repro.validation.artifacts.load_campaign_dict`.

    Returns:
        Rows with identical columns across cells, blank where a cell has no
        data (infeasible cells, undefined intervals).
    """
    rows: List[Dict[str, object]] = []
    for cell in artifact["cells"]:  # type: ignore[index]
        metrics = cell.get("metrics", {})
        checks = {check["metric"]: check for check in cell.get("checks", ())}
        energy = metrics.get("energy", {})
        delay = metrics.get("delay", {})
        delivery = metrics.get("delivery_ratio", {})
        rows.append(
            {
                "scenario": cell["scenario"],
                "protocol": cell["protocol"],
                "feasible": cell["feasible"],
                "replications": len(cell.get("seeds", ())),
                "E_model": _blank(cell.get("analytical_energy_j_per_s")),
                "E_sim_mean": _blank(energy.get("mean")),
                "E_ci_lower": _blank(energy.get("ci_lower")),
                "E_ci_upper": _blank(energy.get("ci_upper")),
                "E_err": _blank(checks.get("energy", {}).get("error")),
                "L_model": _blank(cell.get("analytical_delay_s")),
                "L_sim_mean": _blank(delay.get("mean")),
                "L_ci_lower": _blank(delay.get("ci_lower")),
                "L_ci_upper": _blank(delay.get("ci_upper")),
                "L_err": _blank(checks.get("delay", {}).get("error")),
                "delivery": _blank(delivery.get("mean")),
                "status": _row_status(cell),
                "error": str(cell.get("solve_error", ""))[:80],
            }
        )
    return rows


def _blank(value: object) -> object:
    """CSV/table cell: the value, or an empty string for ``None``."""
    return "" if value is None else value


def _row_status(cell: Mapping[str, object]) -> str:
    if not cell["feasible"]:
        return "infeasible"
    failed = any(check["status"] == "fail" for check in cell.get("checks", ()))
    return "fail" if failed else "pass"


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #

#: Wire format of one replication job: (model, parameters, config).
_SimPayload = Tuple[object, Mapping[str, float], SimulationConfig]


def _simulate_payload(payload: _SimPayload) -> ReplicationMeasurement:
    """Run one seeded replication and extract its metrics.

    Module-level so process-pool workers can resolve it by reference.  A
    replication that delivers no packet yields ``delay=None`` instead of
    raising — zero delivery is a campaign finding, not a crash.
    """
    model, params, config = payload
    result = simulate_protocol(model, params, config)
    delivered_any = any(values for values in result.delays_by_ring.values())
    return ReplicationMeasurement(
        seed=config.seed,
        energy=result.bottleneck_ring_energy,
        delay=result.max_ring_delay() if delivered_any else None,
        delivery_ratio=result.delivery_ratio,
        generated=result.generated_packets,
        delivered=result.delivered_packets,
        dropped=result.dropped_packets,
    )


def _run_replications(
    payloads: Sequence[_SimPayload],
    runner: BatchRunner,
    store: Optional[object],
) -> List[ReplicationMeasurement]:
    """Run the replication grid, answering what the store already holds.

    Without a store this is a plain ordered fan-out.  With one, every
    payload is first looked up by its content key; only misses are
    dispatched to the executor, fresh measurements are written behind, and
    the combined list is reassembled in submission order — so the result
    is element-for-element identical to an uncached run.
    """
    if store is None:
        return runner.executor.map_ordered(_simulate_payload, payloads)

    from repro.store.keys import key_digest, replication_record_key

    measurements: List[Optional[ReplicationMeasurement]] = [None] * len(payloads)
    digests: List[str] = []
    fresh: List[_SimPayload] = []
    fresh_positions: List[int] = []
    for position, payload in enumerate(payloads):
        model, params, config = payload
        digest = key_digest(
            replication_record_key(model, params, config.horizon, config.seed)
        )
        digests.append(digest)
        stored = store.get(digest)  # type: ignore[attr-defined]
        if stored is not None:
            try:
                measurements[position] = ReplicationMeasurement.from_dict(stored)
                continue
            except StoreError:
                # Undecodable payload under a valid record: treat as a
                # miss, like the store's own corruption policy.
                pass
        fresh.append(payload)
        fresh_positions.append(position)
    def _persist(index: int, measurement: ReplicationMeasurement) -> None:
        # Write behind as each replication completes (not after the whole
        # fan-out): a campaign killed mid-stage keeps everything that
        # finished, which is what makes an interrupted run resumable.
        store.put(  # type: ignore[attr-defined]
            digests[fresh_positions[index]], measurement.as_dict(), kind="replication"
        )

    for position, measurement in zip(
        fresh_positions, runner.executor.map_ordered(_simulate_payload, fresh, _persist)
    ):
        measurements[position] = measurement
    return [measurement for measurement in measurements if measurement is not None]


def aggregate_measurements(
    spec: CampaignSpec,
    analytical_energy: float,
    analytical_delay: float,
    measurements: Sequence[ReplicationMeasurement],
) -> Tuple[Dict[str, MetricAggregate], Tuple[MetricCheck, ...]]:
    """Fold a cell's replication measurements into aggregates and checks.

    Pure function of its inputs (no I/O, no randomness), always folding in
    replication order — the property that makes campaign artifacts
    byte-identical across worker counts.

    Args:
        spec: The campaign specification (tolerances, confidence level).
        analytical_energy: Model-predicted ring-1 power (J/s).
        analytical_delay: Model-predicted end-to-end delay (s).
        measurements: The cell's replications, in replication order.

    Returns:
        ``(metrics, checks)``: one :class:`MetricAggregate` per campaign
        metric, and the cell's tolerance gates.

    Raises:
        ValidationError: if ``measurements`` is empty.
    """
    if not measurements:
        raise ValidationError("cannot aggregate a cell with no measurements")
    moments = {name: StreamingMoments() for name in CAMPAIGN_METRICS}
    for measurement in measurements:
        moments["energy"].add(measurement.energy)
        if measurement.delay is not None:
            moments["delay"].add(measurement.delay)
        moments["delivery_ratio"].add(measurement.delivery_ratio)
    metrics = {
        name: MetricAggregate.from_moments(name, moments[name], spec.confidence)
        for name in CAMPAIGN_METRICS
    }
    checks = (
        _relative_error_check(
            "energy", metrics["energy"], analytical_energy, spec.energy_tolerance
        ),
        _relative_error_check(
            "delay", metrics["delay"], analytical_delay, spec.delay_tolerance
        ),
        _delivery_check(metrics["delivery_ratio"], spec.min_delivery_ratio),
    )
    return metrics, checks


def _relative_error_check(
    metric: str, aggregate: MetricAggregate, reference: float, tolerance: float
) -> MetricCheck:
    """Gate ``|reference - mean| / mean <= tolerance`` (simulation as truth)."""
    if aggregate.mean is None:
        return MetricCheck(
            metric=metric,
            status="skipped",
            reference=reference,
            tolerance=tolerance,
            detail="no replication produced a sample (no delivered packets)",
        )
    if aggregate.mean == 0.0:
        return MetricCheck(
            metric=metric,
            status="skipped",
            observed=0.0,
            reference=reference,
            tolerance=tolerance,
            detail="simulated mean is zero; relative error undefined",
        )
    error = abs(reference - aggregate.mean) / aggregate.mean
    status = "pass" if error <= tolerance else "fail"
    detail = (
        ""
        if status == "pass"
        else f"relative error {error:.3f} exceeds tolerance {tolerance:g}"
    )
    return MetricCheck(
        metric=metric,
        status=status,
        observed=aggregate.mean,
        reference=reference,
        tolerance=tolerance,
        error=error,
        detail=detail,
    )


def _delivery_check(aggregate: MetricAggregate, floor: float) -> MetricCheck:
    """Gate ``mean delivery ratio >= floor``."""
    if aggregate.mean is None:
        return MetricCheck(
            metric="delivery_ratio",
            status="skipped",
            reference=floor,
            detail="no replication produced a sample",
        )
    status = "pass" if aggregate.mean >= floor else "fail"
    detail = (
        ""
        if status == "pass"
        else f"mean delivery ratio {aggregate.mean:.3f} below floor {floor:g}"
    )
    return MetricCheck(
        metric="delivery_ratio",
        status=status,
        observed=aggregate.mean,
        reference=floor,
        detail=detail,
    )


def run_campaign(
    spec: Optional[CampaignSpec] = None,
    runner: Optional[BatchRunner] = None,
    store: Optional[object] = None,
) -> CampaignResult:
    """Execute a Monte-Carlo validation campaign.

    Two batched stages share one runner: the (scenario × protocol) game
    solves go through the runner's :class:`~repro.runtime.batch.BatchRunner`
    machinery (solve cache, in-batch dedup), and the
    cells × replications simulation grid fans out over the *same* executor
    policy, so ``--workers`` accelerates both stages.

    Both stages are store-addressable: with a persistent result store
    attached, the solve stage reads through the runner's cache into the
    store, and every replication is looked up by its content key
    (:func:`repro.store.keys.replication_record_key`) before being
    simulated — only missing replications are dispatched, and fresh ones
    are written behind.  That is what makes an interrupted campaign
    resumable and a sharded one mergeable, byte-identically.

    Args:
        spec: The campaign specification (default: every scenario preset ×
            every simulable protocol, 5 replications).
        runner: Batch runner for the solve stage and executor for the
            replications; defaults to the serial cached runner.  Pass
            ``build_runner(workers=4)`` for a process pool — the resulting
            artifact stays byte-identical.
        store: Persistent result store for the replication stage; defaults
            to the store backing the runner's cache, if any (so a runner
            built with ``build_runner(store=...)`` campaigns end-to-end
            through it with no extra wiring).

    Returns:
        The :class:`CampaignResult`, one cell per (scenario, protocol) pair
        in scenario-major order.  Infeasible games, un-constructible models
        and out-of-tolerance cells are recorded as data; any non-infeasibility
        solver error is re-raised.
    """
    # Imported here, not at module top: the api engine imports this module
    # for the declarative ``campaign`` executor.
    from repro.api.engine import build_grid_cell, solve_grid

    spec = spec if spec is not None else CampaignSpec()
    runner = runner if runner is not None else default_runner()
    if store is None:
        store = getattr(runner.cache, "store", None)

    # Stage 1: solve every cell's bargaining game through the shared grid
    # primitive (cached, deduplicated, construction failures as data).
    cells_grid = [
        build_grid_cell(
            scenario_label=scenario_name,
            protocol=protocol,
            scenario=scenario_preset(scenario_name).scenario,
            requirements=scenario_preset(scenario_name).requirements(),
            solver_options={
                "grid_points_per_dimension": spec.grid_points_per_dimension,
                "method": spec.solver_method,
            },
        )
        for scenario_name in spec.scenarios
        for protocol in spec.protocols
    ]
    outcomes = solve_grid(cells_grid, runner)

    # Stage 2: fan every feasible cell's replications out over the executor.
    # ``pending`` keeps (scenario, protocol, model, params, analytical E/L,
    # seeds) per feasible cell, in submission order; ``placements`` records,
    # per grid cell, either the pending index or the finished infeasible
    # cell, so stage 3 can reassemble in submission order.
    pending: List[Tuple[str, str, object, Dict[str, float], float, float, Tuple[int, ...]]] = []
    placements: List[Tuple[str, object]] = []
    for outcome in outcomes:
        scenario_name = outcome.cell.scenario
        protocol = outcome.cell.protocol
        if outcome.ok:
            model = outcome.cell.model
            params = model.coerce(outcome.solution.bargaining.point.parameters)
            seeds = tuple(
                replication_seed(spec.base_seed, scenario_name, protocol, replication)
                for replication in range(spec.replications)
            )
            placements.append(("sim", len(pending)))
            pending.append(
                (
                    scenario_name,
                    protocol,
                    model,
                    params,
                    model.node_energy(params, model.scenario.topology.bottleneck_ring),
                    model.system_latency(params),
                    seeds,
                )
            )
        else:
            # Build failure or infeasible game: the cell is data.
            placements.append(
                (
                    "cell",
                    CampaignCell(
                        scenario=scenario_name,
                        protocol=protocol,
                        feasible=False,
                        solve_error=outcome.error_message,
                    ),
                )
            )

    payloads: List[_SimPayload] = []
    for scenario_name, protocol, model, params, _, _, seeds in pending:
        for seed in seeds:
            payloads.append(
                (
                    model,
                    params,
                    SimulationConfig(
                        horizon=spec.horizon, seed=seed, engine=spec.sim_engine
                    ),
                )
            )
    flat_measurements = _run_replications(payloads, runner, store)

    # Stage 3: aggregate per cell, in replication order.
    aggregated: List[CampaignCell] = []
    cursor = 0
    for scenario_name, protocol, model, params, energy, delay, seeds in pending:
        measurements = flat_measurements[cursor : cursor + len(seeds)]
        cursor += len(seeds)
        metrics, checks = aggregate_measurements(spec, energy, delay, measurements)
        aggregated.append(
            CampaignCell(
                scenario=scenario_name,
                protocol=protocol,
                feasible=True,
                parameters=dict(params),
                analytical_energy=energy,
                analytical_delay=delay,
                seeds=seeds,
                metrics=metrics,
                checks=checks,
                generated=sum(m.generated for m in measurements),
                delivered=sum(m.delivered for m in measurements),
                dropped=sum(m.dropped for m in measurements),
            )
        )

    # Reassemble in submission order.
    cells: List[CampaignCell] = []
    for disposition, payload in placements:
        if disposition == "sim":
            cells.append(aggregated[payload])  # type: ignore[index]
        else:
            cells.append(payload)  # type: ignore[arg-type]
    return CampaignResult(spec=spec, cells=cells)
