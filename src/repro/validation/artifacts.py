"""Versioned persistence of campaign results (JSON artifact + CSV rows).

The JSON artifact is the campaign's canonical on-disk form: schema-tagged,
version-checked on load, serialized with sorted keys and a fixed layout so
the bytes are a function of the campaign's *content only* — two runs of the
same spec produce identical files regardless of worker count.  The
committed artifact under ``docs/`` is what ``docs/validation.md`` is
generated from (see :mod:`repro.validation.report`), and CI re-runs a small
campaign against it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.exceptions import ValidationError
from repro.validation.campaign import CampaignResult, campaign_rows

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CAMPAIGN_SCHEMA_VERSION",
    "campaign_rows",
    "campaign_to_json",
    "load_campaign_dict",
    "write_campaign",
]

#: Schema tag every campaign artifact carries.
CAMPAIGN_SCHEMA = "repro.validation.campaign"

#: Artifact schema version this code writes and accepts.
CAMPAIGN_SCHEMA_VERSION = 1


def campaign_to_json(result: CampaignResult) -> str:
    """Serialize a campaign result into its canonical JSON text.

    Sorted keys, two-space indentation, trailing newline: the bytes are
    deterministic given the campaign content, which is what the
    serial-vs-parallel byte-identity tests compare.

    Args:
        result: The campaign result to serialize.

    Returns:
        The JSON document as a string (ending in a newline).
    """
    return json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n"


def write_campaign(result: CampaignResult, path: Union[str, Path]) -> Path:
    """Write a campaign result to ``path`` as a JSON artifact.

    Args:
        result: The campaign result to persist.
        path: Output file path; parent directories are created.

    Returns:
        The resolved output path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(campaign_to_json(result), encoding="utf-8")
    return path


def load_campaign_dict(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-check a campaign artifact.

    Args:
        path: Path of a JSON artifact written by :func:`write_campaign`.

    Returns:
        The artifact payload as a plain dictionary (the report renderer and
        the CSV exporter consume this form directly).

    Raises:
        ValidationError: if the file is missing, is not valid JSON, or does
            not carry the expected schema tag/version.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"campaign artifact not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValidationError(f"campaign artifact {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or payload.get("schema") != CAMPAIGN_SCHEMA:
        raise ValidationError(
            f"{path} is not a campaign artifact (missing schema tag "
            f"{CAMPAIGN_SCHEMA!r})"
        )
    version = payload.get("schema_version")
    if version != CAMPAIGN_SCHEMA_VERSION:
        raise ValidationError(
            f"{path} has campaign schema version {version!r}; "
            f"this code reads version {CAMPAIGN_SCHEMA_VERSION}"
        )
    return payload


