"""repro — game-theoretic energy-delay balancing for duty-cycled MAC protocols.

Reproduction of Doudou, Barcelo-Ordinas, Djenouri, Garcia-Vidal and Badache,
"Game Theoretical Approach for Energy-Delay Balancing in Distributed
Duty-Cycled MAC Protocols of Wireless Networks" (PODC 2014, brief
announcement).

The package models the energy/end-to-end-delay trade-off of duty-cycled MAC
protocols in multi-hop wireless sensor networks as a two-player cooperative
bargaining game whose players are the performance metrics themselves, and
solves it with the Nash Bargaining Solution.

Quickstart::

    from repro import ApplicationRequirements, EnergyDelayGame
    from repro.protocols import XMACModel
    from repro.scenario import default_scenario

    model = XMACModel(default_scenario())
    requirements = ApplicationRequirements(energy_budget=0.06, max_delay=2.0)
    solution = EnergyDelayGame(model, requirements).solve()
    print(solution.energy_star, solution.delay_star)

Package layout:

* :mod:`repro.core` — the game formulation (P1/P2/P4, NBS, fairness).
* :mod:`repro.protocols` — X-MAC, DMAC, LMAC (and SCP-MAC) analytical models.
* :mod:`repro.network` — topology, traffic, radio and packet substrates.
* :mod:`repro.optimization` — constrained solvers and convexity probes.
* :mod:`repro.gametheory` — generic bargaining solutions and axiom checks.
* :mod:`repro.simulation` — packet-level discrete-event simulator.
* :mod:`repro.runtime` — parallel executor policies, solve cache, batch runner.
* :mod:`repro.scenarios` — named scenario presets and the (scenario ×
  protocol) suite runner.
* :mod:`repro.analysis` — sweeps, validation and reporting.
* :mod:`repro.experiments` — figure-by-figure reproduction drivers.
* :mod:`repro.api` — the declarative experiment pipeline
  (``ExperimentSpec`` → ``plan`` → ``run`` → ``ResultSet``) every workflow
  above is also reachable through.
"""

from repro.core.requirements import ApplicationRequirements
from repro.core.results import (
    BargainingOutcome,
    GameSolution,
    OptimizationOutcome,
    TradeoffPoint,
)
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import (
    BargainingError,
    ConfigurationError,
    InfeasibleProblemError,
    ReproError,
    SimulationError,
    SolverError,
    ValidationError,
)
from repro.runtime import (
    BatchRunner,
    CacheStats,
    ExecutorPolicy,
    SolveCache,
    SolveTask,
    TaskOutcome,
    build_runner,
    resolve_executor,
)
from repro.scenario import Scenario, default_scenario
from repro.scenarios import (
    ScenarioPreset,
    ScenarioSuite,
    SuiteCell,
    SuiteResult,
    run_scenario_suite,
)

# Imported last: repro.api builds on every layer above.
from repro.api import (
    ExperimentPlan,
    ExperimentSpec,
    ResultSet,
    WorkUnit,
    plan_experiment,
    run_experiment,
)

__version__ = "1.3.0"

__all__ = [
    "ApplicationRequirements",
    "ExperimentPlan",
    "ExperimentSpec",
    "ResultSet",
    "WorkUnit",
    "plan_experiment",
    "run_experiment",
    "BargainingOutcome",
    "EnergyDelayGame",
    "GameSolution",
    "OptimizationOutcome",
    "TradeoffPoint",
    "Scenario",
    "ScenarioPreset",
    "ScenarioSuite",
    "SuiteCell",
    "SuiteResult",
    "default_scenario",
    "run_scenario_suite",
    "BatchRunner",
    "CacheStats",
    "ExecutorPolicy",
    "SolveCache",
    "SolveTask",
    "TaskOutcome",
    "build_runner",
    "resolve_executor",
    "ReproError",
    "ConfigurationError",
    "InfeasibleProblemError",
    "SolverError",
    "BargainingError",
    "SimulationError",
    "ValidationError",
    "__version__",
]
