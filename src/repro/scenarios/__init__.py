"""Scenario library: named evaluation environments and the suite runner.

The paper's framework is formulated for one canonical environment, but it
applies to any :class:`~repro.scenario.Scenario` that yields ``E(X)`` /
``L(X)`` cost surfaces.  This subpackage makes "any scenario" concrete:

* :mod:`repro.scenarios.presets` — a registry of named, documented
  :class:`ScenarioPreset` environments (dense/sparse rings, low-power vs.
  high-rate sampling, CC2420 / CC1100 / TR1001 radios, bursty vs. periodic
  traffic), each with suggested application requirements.
* :mod:`repro.scenarios.suite` — :class:`ScenarioSuite`, which sweeps the
  bargaining game over every (scenario × protocol) pair through the
  :mod:`repro.runtime` batch layer (solve cache + optional process pool).
* :mod:`repro.scenarios.docs` — renders the registry into
  ``docs/scenarios.md`` so the documentation can never drift from the code.
"""

from repro.scenarios.presets import (
    ScenarioPreset,
    available_scenarios,
    register_scenario_preset,
    scenario_by_name,
    scenario_preset,
    scenario_presets,
    unregister_scenario_preset,
)
from repro.scenarios.suite import (
    ScenarioSuite,
    SuiteCell,
    SuiteResult,
    run_scenario_suite,
)

__all__ = [
    "ScenarioPreset",
    "ScenarioSuite",
    "SuiteCell",
    "SuiteResult",
    "available_scenarios",
    "register_scenario_preset",
    "run_scenario_suite",
    "scenario_by_name",
    "scenario_preset",
    "scenario_presets",
    "unregister_scenario_preset",
]
