"""The scenario suite: every (scenario × protocol) game in one batch.

:class:`ScenarioSuite` expands a set of scenario presets and protocol names
into one solve grid and pushes it through the shared
:func:`repro.api.engine.solve_grid` primitive — so a suite run gets the
solve cache, in-batch deduplication and process-pool fan-out (bit-identical
to a serial run) for free, and a suite described declaratively (an
:class:`~repro.api.spec.ExperimentSpec` of kind ``"suite"``) produces the
exact same cells.  It is the "run everything everywhere" entry point the
ROADMAP's scenario axis asks for.

Infeasibility is data, not failure: a (scenario, protocol) pair whose game
has no feasible point — or whose protocol model cannot even be constructed
in that environment — is recorded as an infeasible :class:`SuiteCell`
without poisoning the rest of the batch.  Any other solver error is a real
bug and is re-raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.results import GameSolution
from repro.exceptions import ConfigurationError
from repro.protocols.registry import available_protocols, canonical_name
from repro.runtime import BatchRunner, default_runner
from repro.scenarios.presets import ScenarioPreset, scenario_preset

#: A scenario argument: a registered preset name or an explicit preset.
ScenarioLike = Union[str, ScenarioPreset]


@dataclass(frozen=True)
class SuiteCell:
    """Outcome of one (scenario, protocol) game of a suite run.

    Attributes:
        scenario: Preset name.
        protocol: Canonical protocol name.
        solution: The game solution, or ``None`` when the cell is infeasible.
        error: Human-readable reason when ``solution`` is ``None``.
        from_cache: Whether the solve was answered by the solve cache.
        solve_seconds: Wall-clock seconds of the solve (0 for cache hits).
    """

    scenario: str
    protocol: str
    solution: Optional[GameSolution]
    error: Optional[str] = None
    from_cache: bool = False
    solve_seconds: float = 0.0

    @property
    def feasible(self) -> bool:
        """Whether the game had a solution in this cell."""
        return self.solution is not None


@dataclass
class SuiteResult:
    """All cells of one suite run, in (scenario-major) submission order.

    Attributes:
        cells: One :class:`SuiteCell` per (scenario, protocol) pair.
        runner_description: Label of the runner that executed the batch
            (e.g. ``"process[4]+cache"``), for reports.
    """

    cells: List[SuiteCell] = field(default_factory=list)
    runner_description: str = ""

    @property
    def feasible_cells(self) -> List[SuiteCell]:
        """Cells whose game produced a solution."""
        return [cell for cell in self.cells if cell.feasible]

    @property
    def infeasible_cells(self) -> List[SuiteCell]:
        """Cells whose game had no feasible point (or no valid model)."""
        return [cell for cell in self.cells if not cell.feasible]

    def solution(self, scenario: str, protocol: str) -> Optional[GameSolution]:
        """The solution of one cell, or ``None`` if absent/infeasible."""
        protocol = canonical_name(protocol)
        for cell in self.cells:
            if cell.scenario == scenario and cell.protocol == protocol:
                return cell.solution
        return None

    def by_scenario(self) -> Dict[str, List[SuiteCell]]:
        """Cells grouped by scenario name, preserving submission order."""
        grouped: Dict[str, List[SuiteCell]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.scenario, []).append(cell)
        return grouped

    def rows(self) -> List[Dict[str, object]]:
        """One flat row per cell, for tables and CSV export.

        Every row carries the same columns (``format_table`` and CSV export
        require it): infeasible cells leave the solution columns blank and
        fill ``error``; feasible cells leave ``error`` blank.
        """
        rows: List[Dict[str, object]] = []
        for cell in self.cells:
            solution = cell.solution
            rows.append(
                {
                    "scenario": cell.scenario,
                    "protocol": cell.protocol,
                    "feasible": cell.feasible,
                    "E_star": solution.energy_star if solution else "",
                    "L_star": solution.delay_star if solution else "",
                    "E_best": solution.energy_best if solution else "",
                    "L_best": solution.delay_best if solution else "",
                    "fairness_residual": (
                        solution.bargaining.fairness_residual if solution else ""
                    ),
                    "error": "" if solution else (cell.error or "")[:80],
                }
            )
        return rows


def suite_cells_from_outcomes(outcomes: Sequence[object]) -> List[SuiteCell]:
    """Fold grid outcomes (:class:`repro.api.engine.GridOutcome`) into cells.

    Build failures and infeasible games become infeasible cells; the grid
    layer has already re-raised anything else.  Shared by
    :meth:`ScenarioSuite.run` and the declarative ``suite`` executor, which
    is what keeps the two entry points cell-for-cell identical.
    """
    cells: List[SuiteCell] = []
    for outcome in outcomes:
        grid_cell = outcome.cell  # type: ignore[attr-defined]
        if outcome.ok:  # type: ignore[attr-defined]
            cells.append(
                SuiteCell(
                    scenario=grid_cell.scenario,
                    protocol=grid_cell.protocol,
                    solution=outcome.solution,  # type: ignore[attr-defined]
                    from_cache=outcome.from_cache,  # type: ignore[attr-defined]
                    solve_seconds=outcome.solve_seconds,  # type: ignore[attr-defined]
                )
            )
        else:
            cells.append(
                SuiteCell(
                    scenario=grid_cell.scenario,
                    protocol=grid_cell.protocol,
                    solution=None,
                    error=outcome.error_message,  # type: ignore[attr-defined]
                    solve_seconds=outcome.solve_seconds,  # type: ignore[attr-defined]
                )
            )
    return cells


class ScenarioSuite:
    """Sweep the bargaining game across scenarios and protocols.

    Args:
        scenarios: Preset names and/or :class:`ScenarioPreset` instances;
            defaults to every registered preset.
        protocols: Protocol names; defaults to every registered protocol.
        runner: Batch runner the (scenario × protocol) grid is pushed
            through; defaults to the serial cached runner.  Pass
            ``build_runner(workers=4)`` to fan the solves out over a
            process pool — results stay bit-identical.
        grid_points_per_dimension: Grid resolution of the hybrid solver.
        energy_budget: Override the per-preset suggested energy budget.
        max_delay: Override the per-preset suggested delay bound.

    Example:
        >>> from repro.scenarios import ScenarioSuite
        >>> suite = ScenarioSuite(scenarios=("paper-default",), protocols=("xmac",))
        >>> result = suite.run()
        >>> result.cells[0].feasible
        True
    """

    def __init__(
        self,
        scenarios: Optional[Iterable[ScenarioLike]] = None,
        protocols: Optional[Sequence[str]] = None,
        runner: Optional[BatchRunner] = None,
        grid_points_per_dimension: int = 60,
        energy_budget: Optional[float] = None,
        max_delay: Optional[float] = None,
        **solver_options: object,
    ) -> None:
        if scenarios is None:
            from repro.scenarios.presets import scenario_presets

            resolved: List[ScenarioPreset] = scenario_presets()
        else:
            resolved = [self._resolve(scenario) for scenario in scenarios]
        if not resolved:
            raise ConfigurationError("the scenario suite needs at least one scenario")
        names = [preset.name for preset in resolved]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate scenarios in suite: {names}")
        self._presets = resolved
        self._protocols = [
            canonical_name(name) for name in (protocols or available_protocols())
        ]
        if not self._protocols:
            raise ConfigurationError("the scenario suite needs at least one protocol")
        self._runner = runner if runner is not None else default_runner()
        self._solver_options: Dict[str, object] = dict(solver_options)
        self._solver_options.setdefault(
            "grid_points_per_dimension", grid_points_per_dimension
        )
        self._energy_budget = energy_budget
        self._max_delay = max_delay

    @staticmethod
    def _resolve(scenario: ScenarioLike) -> ScenarioPreset:
        if isinstance(scenario, ScenarioPreset):
            return scenario
        if isinstance(scenario, str):
            return scenario_preset(scenario)
        raise ConfigurationError(
            f"scenario must be a preset name or a ScenarioPreset, "
            f"got {type(scenario).__name__}"
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def presets(self) -> List[ScenarioPreset]:
        """The resolved scenario presets, in suite order."""
        return list(self._presets)

    @property
    def protocols(self) -> List[str]:
        """The canonical protocol names, in suite order."""
        return list(self._protocols)

    @property
    def pair_count(self) -> int:
        """Number of (scenario, protocol) cells the suite will run."""
        return len(self._presets) * len(self._protocols)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _requirements_for(self, preset: ScenarioPreset):
        requirements = preset.requirements()
        if self._energy_budget is not None:
            requirements = requirements.with_energy_budget(self._energy_budget)
        if self._max_delay is not None:
            requirements = requirements.with_max_delay(self._max_delay)
        return requirements

    def run(self) -> SuiteResult:
        """Solve every (scenario × protocol) game and collect the cells.

        Returns:
            A :class:`SuiteResult` with one cell per pair, in scenario-major
            order.  Infeasible games and un-constructible models become
            infeasible cells; any other error is re-raised.
        """
        # Imported here, not at module top: the api engine imports this
        # module for the shared cell folding.
        from repro.api.engine import build_grid_cell, solve_grid

        cells = [
            build_grid_cell(
                scenario_label=preset.name,
                protocol=protocol,
                scenario=preset.scenario,
                requirements=self._requirements_for(preset),
                solver_options=self._solver_options,
            )
            for preset in self._presets
            for protocol in self._protocols
        ]
        outcomes = solve_grid(cells, self._runner)
        return SuiteResult(
            cells=suite_cells_from_outcomes(outcomes),
            runner_description=self._runner.describe(),
        )


def run_scenario_suite(
    scenarios: Optional[Iterable[ScenarioLike]] = None,
    protocols: Optional[Sequence[str]] = None,
    runner: Optional[BatchRunner] = None,
    **options: object,
) -> SuiteResult:
    """One-call convenience wrapper: build a :class:`ScenarioSuite` and run it.

    Args:
        scenarios: Preset names/instances (default: all registered).
        protocols: Protocol names (default: all registered).
        runner: Batch runner (default: serial + cache).
        options: Forwarded to :class:`ScenarioSuite` (e.g.
            ``grid_points_per_dimension=30``, ``max_delay=10.0``).

    Returns:
        The :class:`SuiteResult` of the run.
    """
    return ScenarioSuite(
        scenarios=scenarios, protocols=protocols, runner=runner, **options
    ).run()
