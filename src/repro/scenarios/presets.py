"""Named, documented scenario presets.

The paper evaluates its bargaining framework in one canonical environment —
a five-ring topology with eight neighbours per node, one sample per node per
hour, and a CC2420-class radio — but nothing in the framework is tied to
those numbers: any :class:`~repro.scenario.Scenario` that yields ``E(X)`` /
``L(X)`` cost surfaces defines a valid game.  This module curates a registry
of named presets spanning the axes that matter in deployments:

* **topology** — dense vs. sparse neighbourhoods, shallow vs. deep rings;
* **workload** — low-power monitoring vs. high-rate sensing, strictly
  periodic vs. bursty arrivals;
* **hardware** — the paper's CC2420 alongside sub-GHz (CC1100) and legacy
  bit radios (TR1001).

Each preset bundles a frozen scenario with *suggested application
requirements* ``(Ebudget, Lmax)`` chosen so the game is feasible for the
protocols the preset targets, a one-line title and a multi-paragraph
description.  The descriptions are the single source of the generated
``docs/scenarios.md`` (see :mod:`repro.scenarios.docs`), so a preset is
documented by construction.

Example:
    >>> from repro.scenarios import scenario_preset
    >>> preset = scenario_preset("paper-default")
    >>> preset.scenario.depth
    5
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.requirements import ApplicationRequirements
from repro.exceptions import ConfigurationError
from repro.experiments.config import figure_scenario
from repro.network.radio import cc1100, cc2420, tr1001
from repro.network.topology import RingTopology
from repro.scenario import Scenario

#: Preset names must be kebab-case identifiers (they appear on the CLI).
_NAME_PATTERN = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")


@dataclass(frozen=True)
class ScenarioPreset:
    """One named, documented evaluation environment.

    Attributes:
        name: Kebab-case registry key (e.g. ``"dense-ring"``).
        title: One-line human-readable summary.
        description: Multi-line markdown description; rendered verbatim into
            ``docs/scenarios.md``.
        scenario: The frozen evaluation environment.
        energy_budget: Suggested ``Ebudget`` (J/s) for suite runs.
        max_delay: Suggested ``Lmax`` (seconds) for suite runs.
        tags: Free-form labels for filtering/reporting.
    """

    name: str
    title: str
    description: str
    scenario: Scenario
    energy_budget: float
    max_delay: float
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_PATTERN.match(self.name):
            raise ConfigurationError(
                f"preset name must be kebab-case, got {self.name!r}"
            )
        if not self.title.strip() or not self.description.strip():
            raise ConfigurationError(
                f"preset {self.name!r} needs a non-empty title and description"
            )
        if not isinstance(self.scenario, Scenario):
            raise ConfigurationError(
                f"preset {self.name!r}: scenario must be a Scenario, "
                f"got {type(self.scenario).__name__}"
            )
        if self.energy_budget <= 0 or self.max_delay <= 0:
            raise ConfigurationError(
                f"preset {self.name!r}: suggested requirements must be positive"
            )

    def requirements(self) -> ApplicationRequirements:
        """The preset's suggested application requirements."""
        return ApplicationRequirements(
            energy_budget=self.energy_budget,
            max_delay=self.max_delay,
            sampling_rate=self.scenario.sampling_rate,
        )

    def describe(self) -> Mapping[str, object]:
        """Flat summary row used by the CLI listing and the docs table."""
        scenario = self.scenario
        return {
            "name": self.name,
            "title": self.title,
            "depth": scenario.depth,
            "density": scenario.density,
            "sampling_period_s": scenario.sampling_period,
            "burstiness": scenario.burstiness,
            "radio": scenario.radio.name,
            "energy_budget": self.energy_budget,
            "max_delay": self.max_delay,
            "tags": ",".join(self.tags),
        }


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #

_REGISTRY: Dict[str, ScenarioPreset] = {}
_BUILTIN_NAMES: Tuple[str, ...] = ()


def register_scenario_preset(preset: ScenarioPreset) -> None:
    """Register a user-defined preset under its name.

    This is the extension point for adding deployment-specific environments
    without touching the library; see ``examples/scenario_suite.py``.

    Raises:
        ConfigurationError: if the name is already taken or the argument is
            not a :class:`ScenarioPreset`.
    """
    if not isinstance(preset, ScenarioPreset):
        raise ConfigurationError(
            f"expected a ScenarioPreset, got {type(preset).__name__}"
        )
    if preset.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario preset {preset.name!r} is already registered"
        )
    _REGISTRY[preset.name] = preset


def unregister_scenario_preset(name: str) -> None:
    """Remove a previously registered user-defined preset (test helper).

    Raises:
        ConfigurationError: when asked to remove a built-in preset.
    """
    if name in _BUILTIN_NAMES:
        raise ConfigurationError(f"built-in preset {name!r} cannot be unregistered")
    _REGISTRY.pop(name, None)


def scenario_preset(name: str) -> ScenarioPreset:
    """Look up a preset by name.

    Raises:
        ConfigurationError: if the name does not match a registered preset
            (the message lists the known names).
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown scenario {name!r}; known presets: {known}")
    return _REGISTRY[key]


def scenario_by_name(name: str) -> Scenario:
    """Return the :class:`~repro.scenario.Scenario` of the preset ``name``."""
    return scenario_preset(name).scenario


def available_scenarios() -> List[str]:
    """Names of every registered preset, in registration order."""
    return list(_REGISTRY)


def scenario_presets() -> List[ScenarioPreset]:
    """Every registered preset, in registration order."""
    return list(_REGISTRY.values())


# ---------------------------------------------------------------------- #
# Built-in presets
# ---------------------------------------------------------------------- #

_BUILTINS = (
    ScenarioPreset(
        name="paper-default",
        title="The paper's canonical environment (Figures 1–2)",
        description=(
            "Five rings with eight neighbours per node, one sample per node "
            "per hour on a CC2420-class IEEE 802.15.4 radio with 32-byte "
            "payloads — the environment behind the paper's two figures and "
            "the reference point every other preset perturbs.  Strictly "
            "periodic traffic; the suggested requirements are the paper's "
            "``Ebudget = 0.06 J/s`` and the loosest figure bound "
            "``Lmax = 6 s``."
        ),
        scenario=figure_scenario(),
        energy_budget=0.06,
        max_delay=6.0,
        tags=("paper", "periodic", "cc2420"),
    ),
    ScenarioPreset(
        name="dense-ring",
        title="Dense urban deployment (C = 16 neighbours)",
        description=(
            "Doubles the neighbourhood size to sixteen nodes while keeping "
            "the paper's depth and workload.  Dense deployments stress the "
            "overhearing terms of the energy models (every background "
            "transmission wakes more radios) and force LMAC into longer "
            "frames (the two-hop slot-assignment bound grows to "
            "``2C + 1 = 33`` slots), so the energy/delay frontier shifts "
            "up and to the right relative to ``paper-default``."
        ),
        scenario=figure_scenario().with_topology(density=16),
        energy_budget=0.06,
        max_delay=8.0,
        tags=("topology", "dense", "cc2420"),
    ),
    ScenarioPreset(
        name="sparse-ring",
        title="Sparse long-haul network (D = 8, C = 4)",
        description=(
            "A deep, thin network: eight rings with only four neighbours "
            "each, the shape of a pipeline or river monitoring deployment.  "
            "End-to-end delay sums three more hops than the paper's "
            "topology, so the delay player needs a looser ``Lmax`` "
            "(12 s suggested) before the game is feasible at all; the "
            "bottleneck ring still relays the whole network's traffic."
        ),
        scenario=figure_scenario().with_topology(depth=8, density=4),
        energy_budget=0.06,
        max_delay=12.0,
        tags=("topology", "sparse", "deep", "cc2420"),
    ),
    ScenarioPreset(
        name="low-power",
        title="Ultra-low-power monitoring (one sample per 4 h)",
        description=(
            "The paper's topology sampled once every four hours with a "
            "four-times-tighter energy budget (``0.015 J/s``): the regime "
            "of multi-year battery deployments.  Idle costs dominate — the "
            "optimum pushes wake-up intervals and frames toward their upper "
            "bounds, and the capacity constraint is essentially slack "
            "everywhere."
        ),
        scenario=figure_scenario().with_sampling_rate(1.0 / 14400.0),
        energy_budget=0.015,
        max_delay=20.0,
        tags=("workload", "low-power", "cc2420"),
    ),
    ScenarioPreset(
        name="high-rate",
        title="High-rate sensing (one sample per minute)",
        description=(
            "Sixty times the paper's sampling rate: one reading per node "
            "per minute, the regime of structural-health or industrial "
            "monitoring.  Per-packet costs dominate the energy balance and "
            "the capacity constraint starts to bite at the bottleneck ring, "
            "so the suggested budget is looser (``0.1 J/s``) and the delay "
            "bound tighter (3 s) than the paper's."
        ),
        scenario=figure_scenario().with_sampling_rate(1.0 / 60.0),
        energy_budget=0.1,
        max_delay=3.0,
        tags=("workload", "high-rate", "cc2420"),
    ),
    ScenarioPreset(
        name="sub-ghz",
        title="Sub-GHz radio (CC1100 at 76.8 kbps)",
        description=(
            "The paper's topology and workload on a CC1100-class sub-GHz "
            "transceiver: three times slower on air (76.8 kbps vs. "
            "250 kbps), so every frame exchange costs more energy and "
            "latency, but wake-ups are faster and carrier sensing cheaper.  "
            "Exercises the radio abstraction end to end — no protocol model "
            "hard-codes CC2420 constants."
        ),
        scenario=figure_scenario().with_radio(cc1100()),
        energy_budget=0.06,
        max_delay=6.0,
        tags=("hardware", "sub-ghz", "cc1100"),
    ),
    ScenarioPreset(
        name="legacy-bitradio",
        title="Legacy TR1001 bit radio (EYES nodes)",
        description=(
            "The TR1001 bit radio of the original LMAC work: very cheap "
            "reception (3.8 mA) but expensive transmission (12 mA) at "
            "115.2 kbps.  The asymmetric power draw flips which energy "
            "terms dominate — overhearing is nearly free, transmissions are "
            "not — which reorders the protocols relative to the CC2420 "
            "presets."
        ),
        scenario=figure_scenario().with_radio(tr1001()),
        energy_budget=0.04,
        max_delay=6.0,
        tags=("hardware", "legacy", "tr1001"),
    ),
    ScenarioPreset(
        name="bursty",
        title="Bursty arrivals (8-packet bursts every 80 min)",
        description=(
            "Event-driven traffic on the paper's topology: the same mean "
            "rate as one sample per node per 10 minutes, but emitted in "
            "bursts of eight back-to-back packets.  Mean rates — and hence "
            "energy — match a periodic workload; the *peak* rates the "
            "capacity constraints must provision for are eight times "
            "higher, which shrinks the admissible parameter region "
            "(wake-up intervals and frames must stay short enough to drain "
            "a burst)."
        ),
        scenario=figure_scenario().with_sampling_rate(1.0 / 600.0).with_burstiness(8.0),
        energy_budget=0.06,
        max_delay=6.0,
        tags=("workload", "bursty", "cc2420"),
    ),
)

for _preset in _BUILTINS:
    register_scenario_preset(_preset)
_BUILTIN_NAMES = tuple(preset.name for preset in _BUILTINS)
