"""The batched replication driver: flat arrays, tuple events, one tight loop.

One replication of the scalar driver is a web of Python objects —
``SensorNode`` + ``EnergyAccount`` + ``DataPacket`` per hop, a closure per
scheduled event, one RNG round-trip per draw.  This driver keeps the exact
same discrete-event semantics but stores the whole replication as flat,
integer-indexed state:

* node state as parallel lists (``rx``/``tx`` second accumulators, queue
  deques of ``(created_at, source)`` tuples, busy flags, per-node
  ``busy_until`` standing in for the scalar ``Channel``),
* the event queue as a heap of ``(time, seq, sender, receiver)`` tuples,
  with ``receiver == -1`` marking packet generation — sequence numbers are
  allocated in the same order as the scalar ``Simulator`` so ties break
  identically,
* RNG draws vectorized: phases and traffic offsets as one array draw each,
  in-loop contention backoffs from a block-refilled buffer (identical
  values, identical stream position).

Metrics are reduced with the same float expressions (and the same
association) as ``EnergyAccount``/``SimulationResult``, so a batched
replication is bit-for-bit identical to the scalar replication at the same
seed — the property ``tests/simulation/test_batched_differential.py``
enforces.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Dict, List, Sequence, Tuple, Type

import numpy as np

from repro.exceptions import SimulationError
from repro.network.deployment import ring_deployment
from repro.network.radio import RadioMode
from repro.protocols.base import DutyCycledMACModel, ParameterVector
from repro.simulation.batched.kernels import BatchKernel, batch_kernel_for
from repro.simulation.runner import (
    SimulationConfig,
    SimulationResult,
    _SimulationRun,
)


class ReplicationState:
    """Flat per-replication state the hop planners operate on.

    Attributes:
        rng: The replication's generator (same seed as the scalar run).
        phases: Per-node phase offsets, indexed by node position.
        rings: Per-node ring index (hop distance from the sink).
        busy_until: Per-node medium reservation end (the scalar Channel).
        rx: Per-node accumulated RX seconds.
        tx: Per-node accumulated TX seconds.
        interference: Per-node tuple of node indices the medium reservation
            covers (the node itself plus its unit-disk neighbours).
        overhearers: Per-node tuple of neighbour indices charged for
            overhearing (neighbours minus the parent and the sink).
        transmissions: Medium reservations made so far.
        deferrals: Carrier-sense deferrals so far.
    """

    __slots__ = (
        "rng",
        "phases",
        "rings",
        "busy_until",
        "rx",
        "tx",
        "interference",
        "overhearers",
        "transmissions",
        "deferrals",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        phases: List[float],
        rings: List[int],
        interference: List[Tuple[int, ...]],
        overhearers: List[Tuple[int, ...]],
    ) -> None:
        count = len(phases)
        self.rng = rng
        self.phases = phases
        self.rings = rings
        self.busy_until = [0.0] * count
        self.rx = [0.0] * count
        self.tx = [0.0] * count
        self.interference = interference
        self.overhearers = overhearers
        self.transmissions = 0
        self.deferrals = 0


def _run_replication(
    model: DutyCycledMACModel,
    params: ParameterVector,
    config: SimulationConfig,
    kernel_class: Type[BatchKernel],
) -> SimulationResult:
    """Run one replication on the flat engine; mirrors ``_SimulationRun``."""
    if config.max_events <= 0:
        raise SimulationError("max_events must be positive")
    rng = np.random.default_rng(config.seed)
    deployment = config.deployment or ring_deployment(
        depth=model.scenario.depth,
        density=model.scenario.density,
        seed=config.seed,
    )
    kernel = kernel_class(model, params)

    node_ids = list(deployment.node_ids)
    count = len(node_ids)
    index_of = {node_id: index for index, node_id in enumerate(node_ids)}
    rings = [deployment.ring_of[node_id] for node_id in node_ids]
    raw_parents = [deployment.parent_of(node_id) for node_id in node_ids]
    is_sink = [
        parent is None and ring == 0 for parent, ring in zip(raw_parents, rings)
    ]
    # Scalar draw order: behaviour-construction draws first (SCP-MAC's
    # network phase), then every node's phase (sink included), then one
    # traffic offset per non-sink node — all as single vectorized draws.
    phases = kernel.assign_phases(rng, count, rings, is_sink)

    parent_ix: List[int] = []
    interference: List[Tuple[int, ...]] = []
    overhearers: List[Tuple[int, ...]] = []
    for index, node_id in enumerate(node_ids):
        neighbours = deployment.neighbours_of(node_id)
        interference.append(
            (index,) + tuple(index_of[neighbour] for neighbour in neighbours)
        )
        if is_sink[index]:
            parent_ix.append(-1)
            overhearers.append(())
            continue
        parent = raw_parents[index]
        if parent is None:
            raise SimulationError(f"node {node_id} has no route to the sink")
        parent_ix.append(index_of[parent])
        overhearers.append(
            tuple(
                index_of[neighbour]
                for neighbour in neighbours
                if neighbour not in (parent, 0)
            )
        )

    period = model.scenario.sampling_period
    cutoff = config.horizon * config.generation_cutoff
    sources = [index for index in range(count) if not is_sink[index]]
    offsets = rng.uniform(0.0, period, size=len(sources))
    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    for position, source in enumerate(sources):
        time = float(offsets[position])
        while time < cutoff:
            heap.append((time, seq, source, -1))
            seq += 1
            time += period
    heapify(heap)

    state = ReplicationState(rng, phases, rings, interference, overhearers)
    plan = kernel.make_hop_planner(state)
    queues: List[deque] = [deque() for _ in range(count)]
    busy = [False] * count
    dropped = [0] * count
    capacity = config.queue_capacity
    horizon = config.horizon
    max_events = config.max_events
    generated = 0
    deliveries: List[Tuple[int, float]] = []

    processed = 0
    while heap and heap[0][0] <= horizon:
        now, _, sender, receiver = heappop(heap)
        processed += 1
        if processed > max_events:
            raise SimulationError(
                f"event budget exceeded ({max_events}); "
                f"the simulation is likely runaway"
            )
        if receiver < 0:
            # Packet generation at `sender`.
            generated += 1
            queue = queues[sender]
            if len(queue) >= capacity:
                dropped[sender] += 1
            elif not busy[sender]:
                queue.append((now, sender))
                busy[sender] = True
                completion = plan(sender, parent_ix[sender], now)
                if completion < now:
                    completion = now
                heappush(heap, (completion, seq, sender, parent_ix[sender]))
                seq += 1
            else:
                queue.append((now, sender))
            continue
        # Hop completion: `sender` hands its head-of-queue packet to
        # `receiver` (the scalar completion action, inlined).
        created_at, source = queues[sender].popleft()
        busy[sender] = False
        if is_sink[receiver]:
            deliveries.append((rings[source], now - created_at))
        else:
            queue = queues[receiver]
            if len(queue) >= capacity:
                dropped[receiver] += 1
            else:
                queue.append((created_at, source))
                if not busy[receiver]:
                    busy[receiver] = True
                    completion = plan(receiver, parent_ix[receiver], now)
                    if completion < now:
                        completion = now
                    heappush(heap, (completion, seq, receiver, parent_ix[receiver]))
                    seq += 1
        if queues[sender] and not busy[sender]:
            busy[sender] = True
            completion = plan(sender, parent_ix[sender], now)
            if completion < now:
                completion = now
            heappush(heap, (completion, seq, sender, parent_ix[sender]))
            seq += 1

    # Closed-form periodic costs, then the EnergyAccount reductions — same
    # expressions, same association, commutative-safe term order.
    periodic_rows = kernel.periodic_seconds(horizon)
    radio = model.scenario.radio
    power_rx = radio.power(RadioMode.RX)
    power_tx = radio.power(RadioMode.TX)
    power_sleep = radio.power_sleep
    rx = state.rx
    tx = state.tx
    node_power: Dict[int, float] = {}
    ring_members: Dict[int, List[float]] = {}
    dropped_total = 0
    for index in range(count):
        if is_sink[index]:
            continue
        node_rx = rx[index]
        node_tx = tx[index]
        for is_tx, seconds in periodic_rows:
            if is_tx:
                node_tx += seconds
            else:
                node_rx += seconds
        active_energy = power_rx * node_rx + power_tx * node_tx
        recorded_time = node_rx + node_tx
        residual_sleep = horizon - recorded_time
        if residual_sleep < 0.0:
            residual_sleep = 0.0
        power = (active_energy + residual_sleep * power_sleep) / horizon
        node_power[node_ids[index]] = power
        ring_members.setdefault(rings[index], []).append(power)
        dropped_total += dropped[index]
    ring_power = {
        ring: float(np.mean(values)) for ring, values in ring_members.items()
    }

    delays_by_ring: Dict[int, List[float]] = {}
    for source_ring, delay in deliveries:
        delays_by_ring.setdefault(source_ring, []).append(delay)

    return SimulationResult(
        protocol=kernel.name,
        parameters=kernel.params,
        horizon=horizon,
        node_power=node_power,
        ring_power=ring_power,
        delays_by_ring=delays_by_ring,
        generated_packets=generated,
        delivered_packets=len(deliveries),
        dropped_packets=dropped_total,
        channel_transmissions=state.transmissions,
        channel_deferrals=state.deferrals,
        processed_events=processed,
        engine="batched",
    )


def simulate_protocol_batched(
    model: DutyCycledMACModel,
    params: ParameterVector,
    configs: Sequence[SimulationConfig],
) -> List[SimulationResult]:
    """Simulate R independently seeded replications of one configuration.

    Behaviours with a registered batch kernel run on the flat array engine;
    everything else falls back to the scalar driver per replication — unless
    a config sets ``strict=True``, in which case the fallback raises so
    callers can assert a protocol really ran batched.  Either way each
    result is bit-identical to ``simulate_protocol(model, params, config)``
    at the same config.

    Args:
        model: Analytical protocol model (defines scenario and timing).
        params: Parameter vector to simulate (mapping or array).
        configs: One :class:`SimulationConfig` per replication (typically
            differing only in ``seed``).

    Returns:
        One :class:`SimulationResult` per config, in input order.

    Raises:
        SimulationError: if ``configs`` is empty, if a strict config would
            fall back to the scalar driver, or on the scalar driver's error
            conditions (no registered behaviour, runaway event budget,
            unroutable node).
    """
    configs = list(configs)
    if not configs:
        raise SimulationError(
            "simulate_protocol_batched needs at least one replication config"
        )
    kernel_class = batch_kernel_for(model)
    if kernel_class is None:
        if any(config.strict for config in configs):
            raise SimulationError(
                f"strict batched run requested but no batch kernel is "
                f"registered for {type(model).__name__}; register one via "
                f"register_batch_kernel or drop strict=True to allow the "
                f"scalar fallback"
            )
        return [_SimulationRun(model, params, config).run() for config in configs]
    return [
        _run_replication(model, params, config, kernel_class) for config in configs
    ]


__all__ = ["ReplicationState", "simulate_protocol_batched"]
