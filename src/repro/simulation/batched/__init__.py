"""Array-batched replication engine for the duty-cycle simulator.

The scalar driver (:mod:`repro.simulation.runner`) pays Python object
dispatch for every event of every replication: behaviour method calls,
``EnergyAccount`` dict updates, ``DataPacket`` instances, per-draw RNG
round-trips.  This package re-implements the same simulation as a lean
per-replication event loop over flat arrays — list-indexed node state,
tuple events, closure hop planners and block-vectorized RNG draws — and is
proven **bit-identical** to the scalar engine by a differential test
harness (``tests/simulation/test_batched_differential.py``).

Entry point: :func:`simulate_protocol_batched` runs R independently seeded
replications of one protocol configuration.  All four built-in behaviours
(X-MAC, LMAC, DMAC, SCP-MAC) have registered batch kernels and run on the
fast path; user-registered behaviours without a kernel transparently fall
back to the scalar driver per replication — or raise, when the config sets
``strict=True`` — and can opt in via :func:`register_batch_kernel`.
"""

from repro.simulation.batched.engine import simulate_protocol_batched
from repro.simulation.batched.kernels import (
    BatchKernel,
    DMACBatchKernel,
    LMACBatchKernel,
    SCPMACBatchKernel,
    XMACBatchKernel,
    batch_kernel_for,
    register_batch_kernel,
)

__all__ = [
    "BatchKernel",
    "DMACBatchKernel",
    "LMACBatchKernel",
    "SCPMACBatchKernel",
    "XMACBatchKernel",
    "batch_kernel_for",
    "register_batch_kernel",
    "simulate_protocol_batched",
]
