"""Array-batched replication engine for the duty-cycle simulator.

The scalar driver (:mod:`repro.simulation.runner`) pays Python object
dispatch for every event of every replication: behaviour method calls,
``EnergyAccount`` dict updates, ``DataPacket`` instances, per-draw RNG
round-trips.  This package re-implements the same simulation as a lean
per-replication event loop over flat arrays — list-indexed node state,
tuple events, closure hop planners and block-vectorized RNG draws — and is
proven **bit-identical** to the scalar engine by a differential test
harness (``tests/simulation/test_batched_differential.py``).

Entry point: :func:`simulate_protocol_batched` runs R independently seeded
replications of one protocol configuration.  Behaviours that declare
``supports_batch`` and have a registered batch kernel (X-MAC and LMAC) run
on the fast path; everything else transparently falls back to the scalar
driver per replication, so all four protocols work with
``engine='batched'`` from day one.
"""

from repro.simulation.batched.engine import simulate_protocol_batched
from repro.simulation.batched.kernels import (
    BatchKernel,
    LMACBatchKernel,
    XMACBatchKernel,
    batch_kernel_for,
)

__all__ = [
    "BatchKernel",
    "LMACBatchKernel",
    "XMACBatchKernel",
    "batch_kernel_for",
    "simulate_protocol_batched",
]
