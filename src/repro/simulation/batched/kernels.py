"""Per-protocol batch kernels: the scalar behaviours' arithmetic, flattened.

A batch kernel is the array-engine counterpart of one
:class:`~repro.simulation.mac.base.DutyCycleKernel` subclass.  It exposes

* :meth:`BatchKernel.assign_phases` — the behaviour's per-node phase draws
  as one vectorized RNG call (element ``i`` is bit-identical to the ``i``-th
  scalar draw, and the generator ends in the same stream position);
* :meth:`BatchKernel.periodic_seconds` — the closed-form periodic cost
  table collapsed to ``(is_tx, seconds)`` rows, one value shared by every
  node;
* :meth:`BatchKernel.make_hop_planner` — a closure that replays the
  behaviour's ``plan_hop`` (acquire → exchange → overhear) against the flat
  :class:`~repro.simulation.batched.engine.ReplicationState` arrays.

Every float expression is copied from the scalar behaviour **verbatim**
(same association, same constant folding, same ``max``/branch structure),
because the differential harness asserts bit-for-bit equality of the
resulting traces.  Constants that the scalar code recomputes per hop from
other constants (e.g. X-MAC's strobe TX fraction) are hoisted out of the
loop — folding is only legal when the folded value is bit-identical on
every call.

Kernels are registered per *exact* behaviour class: a user-registered
subclass of :class:`XMACSimBehaviour` inherits ``supports_batch`` but may
override ``plan_hop``, so it falls back to the scalar driver instead of
silently batching with the parent's arithmetic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.exceptions import SimulationError
from repro.protocols.base import DutyCycledMACModel, ParameterVector
from repro.protocols.dmac import DMACModel
from repro.protocols.lmac import LMACModel
from repro.protocols.scpmac import SCPMACModel
from repro.protocols.xmac import XMACModel
from repro.simulation.mac.base import DutyCycleKernel
from repro.simulation.mac.dmac import DMACSimBehaviour
from repro.simulation.mac.factory import behaviour_class_for
from repro.simulation.mac.lmac import LMACSimBehaviour
from repro.simulation.mac.scpmac import CONTENTION_SLOTS, SCPMACSimBehaviour
from repro.simulation.mac.xmac import XMACSimBehaviour

#: Block size of buffered backoff draws.  Drawing ``uniform(0, s, size=k)``
#: consumes the PCG64 stream exactly like ``k`` scalar draws, so refilling
#: in blocks keeps values and stream position bit-identical; leftover buffer
#: entries are simply never compared (the generator dies with the run).
BACKOFF_BLOCK = 64


class BatchKernel:
    """Base class of the batch kernels; mirrors the scalar constant setup.

    Args:
        model: The analytical protocol model (same object the scalar
            behaviour is built from).
        params: Concrete parameter vector to simulate.
    """

    #: Must equal the scalar behaviour's ``name`` so results are
    #: indistinguishable across engines.
    name: str = "abstract"

    def __init__(self, model: DutyCycledMACModel, params: ParameterVector) -> None:
        self._model = model
        self._params = model.coerce(params)
        self._scenario = model.scenario
        self._radio = model.scenario.radio
        self._packets = model.scenario.packets
        radio = self._radio
        packets = self._packets
        # Same shared airtimes DutyCycleKernel.__init__ computes.
        self._data = packets.data_airtime(radio)
        self._ack = packets.ack_airtime(radio)
        self._exchange = self._data + radio.turnaround_time + self._ack
        self._poll_cost = radio.wakeup_time + radio.carrier_sense_time

    @property
    def params(self) -> Dict[str, float]:
        """The simulated parameter vector (same as the scalar behaviour's)."""
        return dict(self._params)

    # ------------------------------------------------------------------ #
    # Protocol-specific pieces
    # ------------------------------------------------------------------ #

    def assign_phases(
        self,
        rng: np.random.Generator,
        count: int,
        rings: Sequence[int],
        is_sink: Sequence[bool],
    ) -> List[float]:
        """Phase offsets for ``count`` nodes, consuming the scalar draws.

        ``rings`` and ``is_sink`` carry the deployment structure for
        behaviours whose schedule is deterministic per ring (DMAC's
        staggered ladder draws nothing); random-phase behaviours ignore
        them and reproduce the scalar RNG consumption exactly (element
        ``i`` bit-identical to the ``i``-th scalar draw, generator left in
        the same stream position).
        """
        raise NotImplementedError

    def periodic_table(self) -> Tuple[Tuple[bool, float, float, int], ...]:
        """Periodic cost rows as ``(is_tx, interval, duration, multiplier)``."""
        raise NotImplementedError

    def make_hop_planner(self, state):
        """Build ``plan(sender, receiver, now) -> completion`` over ``state``.

        The planner mutates the replication's flat arrays exactly like the
        scalar ``plan_hop`` mutates nodes/channel: reserves the medium
        around the sender, accumulates RX/TX seconds on every charged node
        and bumps the transmission/deferral counters.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared closed forms
    # ------------------------------------------------------------------ #

    def periodic_seconds(self, horizon: float) -> List[Tuple[bool, float]]:
        """Per-node periodic RX/TX seconds over the horizon, row by row.

        Every non-sink node pays the same rows, in table order — the engine
        adds them to each node's accumulated event seconds sequentially, so
        the float association matches the scalar per-row ``charge`` calls.
        """
        rows: List[Tuple[bool, float]] = []
        for is_tx, interval, duration, multiplier in self.periodic_table():
            events = int(horizon / interval)
            rows.append((is_tx, events * multiplier * duration))
        return rows


class XMACBatchKernel(BatchKernel):
    """Array-engine twin of :class:`XMACSimBehaviour`."""

    name = "X-MAC"

    def __init__(self, model: DutyCycledMACModel, params: ParameterVector) -> None:
        super().__init__(model, params)
        self._wakeup = self._params[XMACModel.WAKEUP_INTERVAL]
        radio = self._radio
        packets = self._packets
        self._strobe = packets.strobe_airtime(radio)
        self._gap = self._ack + 2.0 * radio.turnaround_time
        self._strobe_period = self._strobe + self._gap
        if self._wakeup <= 0:
            raise SimulationError(f"period must be positive, got {self._wakeup!r}")

    def assign_phases(
        self,
        rng: np.random.Generator,
        count: int,
        rings: Sequence[int],
        is_sink: Sequence[bool],
    ) -> List[float]:
        del rings, is_sink  # each node polls on its own random schedule
        draws = rng.uniform(0.0, self._wakeup, size=count)
        return [float(value) for value in draws]

    def periodic_table(self) -> Tuple[Tuple[bool, float, float, int], ...]:
        return ((False, self._wakeup, self._poll_cost, 1),)

    def make_hop_planner(self, state):
        wakeup = self._wakeup
        strobe_period = self._strobe_period
        exchange = self._exchange
        data = self._data
        ack = self._ack
        # Recomputed per hop in the scalar code but constant per run, so the
        # folded values are bit-identical on every call.
        fraction = self._strobe / self._strobe_period
        listen_fraction = 1.0 - fraction
        receiver_preamble = 0.5 * self._strobe_period + self._strobe
        overhear_cost = 1.5 * self._strobe_period
        draw_backoff = strobe_period > 0
        phases = state.phases
        busy_until = state.busy_until
        rx = state.rx
        tx = state.tx
        interference = state.interference
        overhearers = state.overhearers
        rng = state.rng
        ceil = math.ceil
        buffer: List[float] = []
        cursor = 0

        def plan(sender: int, receiver: int, now: float) -> float:
            nonlocal buffer, cursor
            # acquire_medium(deferral_backoff=strobe_period)
            free = busy_until[sender]
            if free > now:
                state.deferrals += 1
                start = free
                if draw_backoff:
                    if cursor >= len(buffer):
                        buffer = rng.uniform(
                            0.0, strobe_period, size=BACKOFF_BLOCK
                        ).tolist()
                        cursor = 0
                    start += buffer[cursor]
                    cursor += 1
            else:
                start = now
            # next_occurrence(start, wakeup, receiver.phase)
            phase = phases[receiver]
            if start <= phase:
                receiver_poll = phase
            else:
                receiver_poll = phase + ceil((start - phase) / wakeup - 1e-12) * wakeup
            gap = receiver_poll - start
            if gap < 0.0:
                gap = 0.0
            strobe_duration = gap + strobe_period
            transmission_end = start + strobe_duration + exchange
            airtime = strobe_duration + exchange
            # channel.reserve(sender, start, airtime)
            state.transmissions += 1
            end = start + airtime
            for member in interference[sender]:
                if end > busy_until[member]:
                    busy_until[member] = end
            # Sender: strobes, ack-listen gaps, data, ack.
            tx[sender] += strobe_duration * fraction
            rx[sender] += strobe_duration * listen_fraction
            tx[sender] += data
            rx[sender] += ack
            # Receiver: residual strobe, early ack, data, ack.
            rx[receiver] += receiver_preamble
            tx[receiver] += ack
            rx[receiver] += data
            tx[receiver] += ack
            # Overhearers whose poll falls inside the strobe train.
            window_end = start + strobe_duration
            for neighbour in overhearers[sender]:
                phase = phases[neighbour]
                if start <= phase:
                    poll_time = phase
                else:
                    poll_time = phase + ceil((start - phase) / wakeup - 1e-12) * wakeup
                if poll_time <= window_end:
                    rx[neighbour] += overhear_cost
            return transmission_end

        return plan


class LMACBatchKernel(BatchKernel):
    """Array-engine twin of :class:`LMACSimBehaviour`."""

    name = "LMAC"

    def __init__(self, model: DutyCycledMACModel, params: ParameterVector) -> None:
        super().__init__(model, params)
        if not isinstance(model, LMACModel):
            raise TypeError("LMACBatchKernel requires an LMACModel")
        self._slot_length = self._params[LMACModel.SLOT_LENGTH]
        self._slot_count = int(round(self._params[LMACModel.SLOT_COUNT]))
        self._frame = self._slot_length * self._slot_count
        self._control = self._packets.control_airtime(self._radio)
        self._guard = model._guard_time  # noqa: SLF001 - same package family
        self._wakeup = self._radio.wakeup_time
        if self._frame <= 0:
            raise SimulationError(f"period must be positive, got {self._frame!r}")

    def assign_phases(
        self,
        rng: np.random.Generator,
        count: int,
        rings: Sequence[int],
        is_sink: Sequence[bool],
    ) -> List[float]:
        del rings, is_sink  # each node owns a uniformly random slot
        draws = rng.integers(0, self._slot_count, size=count)
        return [int(value) * self._slot_length for value in draws]

    def periodic_table(self) -> Tuple[Tuple[bool, float, float, int], ...]:
        return (
            (
                False,
                self._frame,
                self._control + self._guard + self._wakeup,
                self._slot_count - 1,
            ),
            (True, self._frame, self._control + self._wakeup, 1),
        )

    def make_hop_planner(self, state):
        frame = self._frame
        guard = self._guard
        control = self._control
        data = self._data
        airtime = self._guard + self._control + self._data
        phases = state.phases
        busy_until = state.busy_until
        rx = state.rx
        tx = state.tx
        interference = state.interference
        ceil = math.ceil

        def plan(sender: int, receiver: int, now: float) -> float:
            # next_occurrence(now, frame, sender.phase)
            phase = phases[sender]
            if now <= phase:
                slot_start = phase
            else:
                slot_start = phase + ceil((now - phase) / frame - 1e-12) * frame
            # channel.free_at counts a deferral when the medium is busy at
            # the slot start; the retry waits for the next owned slot.
            free = busy_until[sender]
            if free > slot_start:
                state.deferrals += 1
                if free <= phase:
                    start = phase
                else:
                    start = phase + ceil((free - phase) / frame - 1e-12) * frame
            else:
                start = slot_start
            data_start = start + guard + control
            completion = data_start + data
            # channel.reserve(sender, start, airtime)
            state.transmissions += 1
            end = start + airtime
            for member in interference[sender]:
                if end > busy_until[member]:
                    busy_until[member] = end
            # Data unit only: control traffic is periodic, no acks in LMAC.
            tx[sender] += data
            rx[receiver] += data
            return completion

        return plan


class DMACBatchKernel(BatchKernel):
    """Array-engine twin of :class:`DMACSimBehaviour`."""

    name = "DMAC"

    def __init__(self, model: DutyCycledMACModel, params: ParameterVector) -> None:
        super().__init__(model, params)
        if not isinstance(model, DMACModel):
            raise TypeError("DMACBatchKernel requires a DMACModel")
        self._frame = self._params[DMACModel.FRAME_LENGTH]
        self._slot = model.slot_time
        self._contention = model._contention_window  # noqa: SLF001 - same package family
        self._depth = self._scenario.depth
        if self._frame <= 0:
            raise SimulationError(f"period must be positive, got {self._frame!r}")

    def assign_phases(
        self,
        rng: np.random.Generator,
        count: int,
        rings: Sequence[int],
        is_sink: Sequence[bool],
    ) -> List[float]:
        del rng, count  # the staggered schedule is deterministic: no draws
        return [
            0.0 if sink else (self._depth - ring) * self._slot
            for ring, sink in zip(rings, is_sink)
        ]

    def periodic_table(self) -> Tuple[Tuple[bool, float, float, int], ...]:
        return ((False, self._frame, self._slot, 2),)

    def make_hop_planner(self, state):
        frame = self._frame
        slot = self._slot
        exchange = self._exchange
        data = self._data
        ack = self._ack
        # contention_delay(window) = 0.5 * window + backoff(0.5 * window);
        # backoff draws only when its scale is positive.
        half_window = 0.5 * self._contention
        draw_backoff = half_window > 0
        phases = state.phases
        rings = state.rings
        busy_until = state.busy_until
        rx = state.rx
        tx = state.tx
        interference = state.interference
        overhearers = state.overhearers
        rng = state.rng
        ceil = math.ceil
        buffer: List[float] = []
        cursor = 0

        def plan(sender: int, receiver: int, now: float) -> float:
            nonlocal buffer, cursor
            # next_occurrence(now, frame, sender.phase)
            phase = phases[sender]
            if now <= phase:
                slot_start = phase
            else:
                slot_start = phase + ceil((now - phase) / frame - 1e-12) * frame
            # The contention draw happens before the channel check, exactly
            # like the scalar acquire_grant.
            if draw_backoff:
                if cursor >= len(buffer):
                    buffer = rng.uniform(
                        0.0, half_window, size=BACKOFF_BLOCK
                    ).tolist()
                    cursor = 0
                contention = half_window + buffer[cursor]
                cursor += 1
            else:
                contention = half_window
            airtime = exchange
            # channel.free_at(sender, slot_start)
            free = busy_until[sender]
            if free > slot_start:
                state.deferrals += 1
                start = free
            else:
                start = slot_start
            if start + contention + airtime > slot_start + slot:
                # Slot overflow: retry in the next frame's transmit slot (a
                # second free_at, so possibly a second deferral).
                shifted = slot_start + slot
                if shifted <= phase:
                    slot_start = phase
                else:
                    slot_start = phase + ceil((shifted - phase) / frame - 1e-12) * frame
                free = busy_until[sender]
                if free > slot_start:
                    state.deferrals += 1
                else:
                    free = slot_start
                start = max(slot_start, free)
            transmission_start = start + contention
            completion = transmission_start + airtime
            # channel.reserve(sender, transmission_start, airtime)
            state.transmissions += 1
            end = transmission_start + airtime
            for member in interference[sender]:
                if end > busy_until[member]:
                    busy_until[member] = end
            # Sender: contention listen, data, ack.
            rx[sender] += contention
            tx[sender] += data
            rx[sender] += ack
            # Receiver is awake in its slot anyway: only the ack is extra.
            tx[receiver] += ack
            # Same-ring neighbours awake in the overlapping slot overhear.
            sender_ring = rings[sender]
            for neighbour in overhearers[sender]:
                if rings[neighbour] == sender_ring:
                    rx[neighbour] += data
            return completion

        return plan


class SCPMACBatchKernel(BatchKernel):
    """Array-engine twin of :class:`SCPMACSimBehaviour`."""

    name = "SCP-MAC"

    def __init__(self, model: DutyCycledMACModel, params: ParameterVector) -> None:
        super().__init__(model, params)
        if not isinstance(model, SCPMACModel):
            raise TypeError("SCPMACBatchKernel requires an SCPMACModel")
        self._poll = self._params[SCPMACModel.POLL_INTERVAL]
        self._tone = 2.0 * model.sync_error
        self._sync_period = model.sync_period
        self._sync = self._packets.sync_airtime(self._radio)
        self._cw = CONTENTION_SLOTS * self._radio.carrier_sense_time
        self._phase = 0.0
        if self._poll <= 0:
            raise SimulationError(f"period must be positive, got {self._poll!r}")

    def assign_phases(
        self,
        rng: np.random.Generator,
        count: int,
        rings: Sequence[int],
        is_sink: Sequence[bool],
    ) -> List[float]:
        del rings, is_sink
        # One network-wide phase: a single scalar draw at the same stream
        # position as the scalar behaviour's __init__ draw (nothing else
        # touches the generator in between).
        self._phase = float(rng.uniform(0.0, self._poll))
        return [self._phase] * count

    def periodic_table(self) -> Tuple[Tuple[bool, float, float, int], ...]:
        return (
            (False, self._poll, self._poll_cost, 1),
            (True, self._sync_period, self._sync, 1),
            (False, self._sync_period, self._sync, self._scenario.density),
        )

    def make_hop_planner(self, state):
        poll = self._poll
        phase = self._phase
        tone = self._tone
        cw = self._cw
        exchange = self._exchange
        data = self._data
        ack = self._ack
        half_tone = 0.5 * tone
        draw_backoff = cw > 0
        busy_until = state.busy_until
        rx = state.rx
        tx = state.tx
        interference = state.interference
        overhearers = state.overhearers
        rng = state.rng
        ceil = math.ceil
        buffer: List[float] = []
        cursor = 0

        def plan(sender: int, receiver: int, now: float) -> float:
            nonlocal buffer, cursor
            # next_occurrence(now, poll, phase)
            if now <= phase:
                epoch = phase
            else:
                epoch = phase + ceil((now - phase) / poll - 1e-12) * poll
            # channel.free_at at each probed epoch: a deferral per busy probe.
            busy = busy_until[sender]
            if busy > epoch:
                state.deferrals += 1
                free = busy
            else:
                free = epoch
            while free > epoch:
                # Lost this epoch's contention: walk to the first epoch
                # after the medium clears (the RETRY transition).
                if free <= phase:
                    epoch = phase
                else:
                    epoch = phase + ceil((free - phase) / poll - 1e-12) * poll
                busy = busy_until[sender]
                if busy > epoch:
                    state.deferrals += 1
                    free = busy
                else:
                    free = epoch
            # Second contention phase: backoff between tone and data.
            if draw_backoff:
                if cursor >= len(buffer):
                    buffer = rng.uniform(0.0, cw, size=BACKOFF_BLOCK).tolist()
                    cursor = 0
                data_backoff = buffer[cursor]
                cursor += 1
            else:
                data_backoff = 0.0
            tone_start = epoch
            data_start = epoch + tone + data_backoff
            completion = data_start + exchange
            airtime = completion - tone_start
            # channel.reserve(sender, tone_start, airtime)
            state.transmissions += 1
            end = tone_start + airtime
            for member in interference[sender]:
                if end > busy_until[member]:
                    busy_until[member] = end
            # Sender: both contention windows, the tone, data, ack.
            rx[sender] += cw + data_backoff
            tx[sender] += tone
            tx[sender] += data
            rx[sender] += ack
            # Receiver: half the tone on average plus the second contention
            # window, then the data/ack exchange.
            rx[receiver] += half_tone + data_backoff
            rx[receiver] += data
            tx[receiver] += ack
            # Every synchronized neighbour samples half the tone.
            for neighbour in overhearers[sender]:
                rx[neighbour] += half_tone
            return completion

        return plan


#: Exact behaviour class → batch kernel.  Intentionally not keyed by
#: ``isinstance``: see the module docstring on subclass fallback.
_KERNELS: Dict[Type[DutyCycleKernel], Type[BatchKernel]] = {
    XMACSimBehaviour: XMACBatchKernel,
    LMACSimBehaviour: LMACBatchKernel,
    DMACSimBehaviour: DMACBatchKernel,
    SCPMACSimBehaviour: SCPMACBatchKernel,
}


def batch_kernel_for(model: DutyCycledMACModel) -> Optional[Type[BatchKernel]]:
    """Resolve the batch kernel class for a model, or None to fall back.

    Returns None (scalar fallback) when the model's behaviour does not
    declare ``supports_batch``, has no registered kernel for its *exact*
    class, or has no behaviour at all — in the last case the scalar driver
    raises the canonical "no simulated behaviour" error.

    Args:
        model: The analytical protocol model.
    """
    try:
        behaviour_class = behaviour_class_for(model)
    except SimulationError:
        return None
    if not getattr(behaviour_class, "supports_batch", False):
        return None
    return _KERNELS.get(behaviour_class)


def register_batch_kernel(
    behaviour_class: Type[DutyCycleKernel], kernel_class: Type[BatchKernel]
) -> None:
    """Register a batch kernel for a behaviour class.

    Args:
        behaviour_class: The scalar behaviour the kernel replicates
            (matched by exact class in :func:`batch_kernel_for`).
        kernel_class: The kernel implementation.

    Raises:
        SimulationError: if either argument has the wrong base class.
    """
    if not (isinstance(behaviour_class, type) and issubclass(behaviour_class, DutyCycleKernel)):
        raise SimulationError("behaviour_class must derive from DutyCycleKernel")
    if not (isinstance(kernel_class, type) and issubclass(kernel_class, BatchKernel)):
        raise SimulationError("kernel_class must derive from BatchKernel")
    _KERNELS[behaviour_class] = kernel_class
