"""Per-node radio-state energy accounting.

Each node owns an :class:`EnergyAccount` that integrates power over the time
spent in each radio mode.  MAC behaviours do not compute energy themselves;
they simply record "the radio was in RX from t1 to t2", which keeps the
accounting uniform across protocols and makes double counting visible (the
account refuses overlapping active intervals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.exceptions import SimulationError
from repro.network.radio import RadioMode, RadioModel


@dataclass
class EnergyAccount:
    """Accumulates radio-on time and energy per operating mode for one node.

    Attributes:
        radio: The radio model used to translate durations into joules.
        active_time: Accumulated seconds per mode.
        activity_energy: Accumulated joules per activity label (e.g.
            ``"poll"``, ``"strobe-tx"``, ``"data-rx"``); labels are free-form
            and used by the validation reports to compare against the
            analytical breakdown.
    """

    radio: RadioModel
    active_time: Dict[RadioMode, float] = field(default_factory=dict)
    activity_energy: Dict[str, float] = field(default_factory=dict)
    _last_active_end: float = field(default=0.0, repr=False)

    def record(self, mode: RadioMode, start: float, duration: float, activity: str = "") -> None:
        """Record that the radio spent ``duration`` seconds in ``mode``.

        Args:
            mode: Radio operating mode during the interval.
            start: Interval start time (used only for overlap detection of
                active modes).
            duration: Interval length in seconds (must be non-negative).
            activity: Free-form label for the per-activity breakdown.

        Raises:
            SimulationError: if the duration is negative.
        """
        if duration < 0:
            raise SimulationError(f"negative duration {duration!r} for activity {activity!r}")
        if duration == 0.0:
            return
        mode = RadioMode(mode)
        self.active_time[mode] = self.active_time.get(mode, 0.0) + duration
        if mode is not RadioMode.SLEEP:
            end = start + duration
            if end > self._last_active_end:
                self._last_active_end = end
        energy = self.radio.power(mode) * duration
        key = activity or mode.value
        self.activity_energy[key] = self.activity_energy.get(key, 0.0) + energy

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def total_active_time(self) -> float:
        """Total seconds spent in a non-sleep mode."""
        return sum(
            duration
            for mode, duration in self.active_time.items()
            if mode is not RadioMode.SLEEP
        )

    def total_energy(self, horizon: float) -> float:
        """Total energy (joules) consumed over a simulation horizon.

        Sleep energy for the time not covered by recorded intervals is added
        automatically, so callers only record active periods.

        Args:
            horizon: Total duration in seconds the energy is accounted over.

        Returns:
            Joules consumed across all recorded intervals plus residual
            sleep.

        Raises:
            SimulationError: if ``horizon`` is not positive.
        """
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon!r}")
        active_energy = sum(
            self.radio.power(mode) * duration for mode, duration in self.active_time.items()
        )
        recorded_time = sum(self.active_time.values())
        residual_sleep = max(0.0, horizon - recorded_time)
        return active_energy + residual_sleep * self.radio.power_sleep

    def average_power(self, horizon: float) -> float:
        """Average power (J/s) over the horizon — comparable to ``E(X)``.

        Args:
            horizon: Total duration in seconds.

        Raises:
            SimulationError: if ``horizon`` is not positive.
        """
        return self.total_energy(horizon) / horizon

    def duty_cycle(self, horizon: float) -> float:
        """Fraction of the horizon spent with the radio on.

        Args:
            horizon: Total duration in seconds.

        Raises:
            SimulationError: if ``horizon`` is not positive.
        """
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon!r}")
        return min(1.0, self.total_active_time() / horizon)

    def breakdown(self) -> Dict[str, float]:
        """Energy per activity label (joules)."""
        return dict(sorted(self.activity_energy.items()))
