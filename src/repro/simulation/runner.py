"""Simulation driver.

``simulate_protocol`` runs one protocol configuration on a concrete
deployment and returns a :class:`SimulationResult` with the same quantities
the analytical model predicts (per-node average power, end-to-end delays per
source ring), so the two can be compared directly by
:mod:`repro.analysis.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.network.deployment import ring_deployment
from repro.network.topology import UnitDiskDeployment
from repro.protocols.base import DutyCycledMACModel, ParameterVector
from repro.simulation.channel import Channel
from repro.simulation.energy import EnergyAccount
from repro.simulation.engine import Simulator
from repro.simulation.mac.factory import behaviour_for_model
from repro.simulation.node import SensorNode
from repro.simulation.packets import DataPacket, DeliveryRecord, PacketLog


#: Valid values of :attr:`SimulationConfig.engine`.
SIM_ENGINES = ("scalar", "batched")


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    Attributes:
        horizon: Simulated duration in seconds.
        seed: Random seed (phases, traffic offsets, backoffs).
        deployment: Optional concrete deployment; when omitted, one is
            generated to match the model's scenario (same depth and density).
        generation_cutoff: Fraction of the horizon after which no new packets
            are generated, so late packets do not bias the delay statistics
            by never getting a chance to be delivered.
        queue_capacity: Per-node forwarding-queue capacity.
        max_events: Safety budget for the event loop.
        engine: ``"scalar"`` (the per-event object driver) or ``"batched"``
            (the array engine of :mod:`repro.simulation.batched`).  The two
            produce bit-identical results; the knob only trades Python
            dispatch for array bookkeeping.
        strict: Only meaningful with ``engine="batched"``: raise instead of
            silently falling back to the scalar driver when the behaviour
            has no registered batch kernel, so callers can assert a
            protocol really ran batched.
    """

    horizon: float = 2000.0
    seed: int = 1
    deployment: Optional[UnitDiskDeployment] = None
    generation_cutoff: float = 0.9
    queue_capacity: int = 64
    max_events: int = 2_000_000
    engine: str = "scalar"
    strict: bool = False

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {self.horizon!r}")
        if not (0.0 < self.generation_cutoff <= 1.0):
            raise SimulationError("generation_cutoff must lie in (0, 1]")
        if self.queue_capacity < 1:
            raise SimulationError("queue_capacity must be >= 1")
        if self.engine not in SIM_ENGINES:
            raise SimulationError(
                f"unknown simulation engine {self.engine!r}; "
                f"choose from {', '.join(SIM_ENGINES)}"
            )
        if self.strict and self.engine != "batched":
            raise SimulationError(
                'strict=True requires engine="batched"; the scalar driver '
                "has nothing to fall back from"
            )


@dataclass
class SimulationResult:
    """Measured quantities of one simulation run.

    Attributes:
        protocol: Protocol name.
        parameters: Simulated parameter vector.
        horizon: Simulated duration in seconds.
        node_power: Average radio power (J/s) per node id.
        ring_power: Mean of the node powers per ring.
        delays_by_ring: Delivered end-to-end delays per source ring.
        generated_packets: Number of packets generated.
        delivered_packets: Number of packets delivered to the sink.
        dropped_packets: Packets dropped at full queues.
        channel_transmissions: Number of medium reservations.
        channel_deferrals: Number of carrier-sense deferrals.
        processed_events: Number of discrete events the engine processed
            (used by ``benchmarks/bench_simulator.py`` for events/second).
        engine: Provenance: which driver actually produced this result
            (``"scalar"`` or ``"batched"``).  Excluded from :meth:`as_dict`
            on purpose — the two engines are bit-identical, so reports and
            artifacts must not differ by engine.
    """

    protocol: str
    parameters: Mapping[str, float]
    horizon: float
    node_power: Dict[int, float] = field(default_factory=dict)
    ring_power: Dict[int, float] = field(default_factory=dict)
    delays_by_ring: Dict[int, List[float]] = field(default_factory=dict)
    generated_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0
    channel_transmissions: int = 0
    channel_deferrals: int = 0
    processed_events: int = 0
    engine: str = "scalar"

    # ------------------------------------------------------------------ #
    # Aggregates mirrored on the analytical model
    # ------------------------------------------------------------------ #

    @property
    def system_energy(self) -> float:
        """Maximum per-node average power (J/s) — the simulated ``E``."""
        if not self.node_power:
            raise SimulationError("the simulation produced no energy accounts")
        return max(self.node_power.values())

    @property
    def bottleneck_ring_energy(self) -> float:
        """Mean power of ring-1 nodes (J/s)."""
        if 1 not in self.ring_power:
            raise SimulationError("no ring-1 node in the simulated deployment")
        return self.ring_power[1]

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated packets delivered to the sink."""
        if self.generated_packets == 0:
            return 0.0
        return self.delivered_packets / self.generated_packets

    def mean_delay(self, ring: Optional[int] = None) -> float:
        """Mean end-to-end delay (seconds) for one source ring (or overall)."""
        delays: List[float] = []
        for source_ring, values in self.delays_by_ring.items():
            if ring is None or source_ring == ring:
                delays.extend(values)
        if not delays:
            raise SimulationError(
                f"no delivered packet from ring {ring!r} to compute a delay from"
            )
        return float(np.mean(delays))

    def max_ring_delay(self) -> float:
        """Mean delay of the farthest ring that delivered packets — the simulated ``L``."""
        rings_with_data = [ring for ring, values in self.delays_by_ring.items() if values]
        if not rings_with_data:
            raise SimulationError("no packet was delivered during the simulation")
        return self.mean_delay(max(rings_with_data))

    def as_dict(self) -> Dict[str, object]:
        """Flat summary used by reports."""
        return {
            "protocol": self.protocol,
            "parameters": dict(self.parameters),
            "horizon_s": self.horizon,
            "system_energy_j_per_s": self.system_energy,
            "max_ring_delay_s": self.max_ring_delay(),
            "delivery_ratio": self.delivery_ratio,
            "generated": self.generated_packets,
            "delivered": self.delivered_packets,
            "dropped": self.dropped_packets,
            "transmissions": self.channel_transmissions,
            "deferrals": self.channel_deferrals,
            "events": self.processed_events,
        }


class _SimulationRun:
    """Internal driver object wiring nodes, channel, behaviour and engine."""

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: ParameterVector,
        config: SimulationConfig,
    ) -> None:
        self._model = model
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        self._deployment = config.deployment or ring_deployment(
            depth=model.scenario.depth,
            density=model.scenario.density,
            seed=config.seed,
        )
        self._behaviour = behaviour_for_model(model, params, self._rng)
        self._simulator = Simulator(max_events=config.max_events)
        self._channel = Channel(self._deployment)
        self._log = PacketLog()
        self._packet_counter = 0
        self._nodes: Dict[int, SensorNode] = {}
        for node_id in self._deployment.node_ids:
            ring = self._deployment.ring_of[node_id]
            parent = self._deployment.parent_of(node_id)
            node = SensorNode(
                node_id=node_id,
                ring=ring,
                parent=parent,
                energy=EnergyAccount(radio=model.scenario.radio),
                queue_capacity=config.queue_capacity,
            )
            node.phase = self._behaviour.assign_phase(node)
            self._nodes[node_id] = node

    # ------------------------------------------------------------------ #
    # Traffic generation
    # ------------------------------------------------------------------ #

    def _schedule_traffic(self) -> None:
        period = self._model.scenario.sampling_period
        cutoff = self._config.horizon * self._config.generation_cutoff
        for node in self._nodes.values():
            if node.is_sink:
                continue
            offset = float(self._rng.uniform(0.0, period))
            time = offset
            while time < cutoff:
                self._simulator.schedule_at(
                    time,
                    self._make_generation_action(node),
                    label=f"generate@{node.node_id}",
                )
                time += period

    def _make_generation_action(self, node: SensorNode):
        def action() -> None:
            self._packet_counter += 1
            packet = DataPacket(
                packet_id=self._packet_counter,
                source=node.node_id,
                created_at=self._simulator.now,
            )
            self._log.record_generated()
            if node.enqueue(packet):
                self._try_forward(node)

        return action

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #

    def _try_forward(self, node: SensorNode) -> None:
        if node.is_sink or node.busy or not node.queue:
            return
        if node.parent is None:
            raise SimulationError(f"node {node.node_id} has no route to the sink")
        receiver = self._nodes[node.parent]
        overhearers = [
            self._nodes[neighbour]
            for neighbour in self._deployment.neighbours_of(node.node_id)
            if neighbour not in (node.parent, 0)
        ]
        node.busy = True
        outcome = self._behaviour.plan_hop(
            node, receiver, self._simulator.now, self._channel, overhearers
        )
        self._simulator.schedule_at(
            outcome.completion,
            self._make_completion_action(node, receiver),
            label=f"complete@{node.node_id}",
        )

    def _make_completion_action(self, sender: SensorNode, receiver: SensorNode):
        def action() -> None:
            packet = sender.pop_head()
            packet.record_hop(receiver.node_id)
            sender.busy = False
            if receiver.is_sink:
                self._log.record_delivery(
                    DeliveryRecord(
                        packet_id=packet.packet_id,
                        source=packet.source,
                        source_ring=self._deployment.ring_of[packet.source],
                        created_at=packet.created_at,
                        delivered_at=self._simulator.now,
                        hops=packet.hops,
                    )
                )
            else:
                if receiver.enqueue(packet):
                    self._try_forward(receiver)
            self._try_forward(sender)

        return action

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        self._schedule_traffic()
        self._simulator.run_until(self._config.horizon)

        horizon = self._config.horizon
        for node in self._nodes.values():
            if node.is_sink:
                continue
            self._behaviour.charge_periodic_energy(node, horizon)

        node_power: Dict[int, float] = {}
        ring_members: Dict[int, List[float]] = {}
        dropped = 0
        for node in self._nodes.values():
            if node.is_sink:
                continue
            power = node.energy.average_power(horizon)
            node_power[node.node_id] = power
            ring_members.setdefault(node.ring, []).append(power)
            dropped += node.dropped
        ring_power = {ring: float(np.mean(values)) for ring, values in ring_members.items()}

        delays_by_ring: Dict[int, List[float]] = {}
        for record in self._log.delivered:
            delays_by_ring.setdefault(record.source_ring, []).append(record.delay)

        return SimulationResult(
            protocol=self._behaviour.name,
            parameters=self._behaviour.params,
            horizon=horizon,
            node_power=node_power,
            ring_power=ring_power,
            delays_by_ring=delays_by_ring,
            generated_packets=self._log.generated,
            delivered_packets=len(self._log.delivered),
            dropped_packets=dropped,
            channel_transmissions=self._channel.transmissions,
            channel_deferrals=self._channel.deferrals,
            processed_events=self._simulator.processed_events,
        )


def simulate_protocol(
    model: DutyCycledMACModel,
    params: ParameterVector,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Simulate one protocol configuration and return the measured metrics.

    Args:
        model: Analytical protocol model (defines scenario and timing).
        params: Parameter vector to simulate (mapping or array).
        config: Simulation configuration; defaults to a 2000-second run on a
            freshly generated deployment matching the model's scenario.

    Returns:
        A :class:`SimulationResult` with the measured per-node powers,
        per-ring delays and delivery/channel counters — the same quantities
        the analytical model predicts, for direct comparison by
        :mod:`repro.analysis.validation`.

    Raises:
        SimulationError: if the model's protocol has no registered simulated
            behaviour (an analytical-only user-registered protocol) or the
            configuration is inconsistent.
    """
    config = config or SimulationConfig()
    if config.engine == "batched":
        # Imported lazily: the batched engine builds on this module.
        from repro.simulation.batched import simulate_protocol_batched

        return simulate_protocol_batched(model, params, [config])[0]
    return _SimulationRun(model, params, config).run()
