"""Sensor node model for the simulator.

A node generates application packets periodically (with a random phase so
the network's traffic is not synchronized), keeps a bounded FIFO queue of
packets waiting to be forwarded, and hands the head-of-line packet to the MAC
behaviour whenever it is not already busy with a transmission.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.exceptions import SimulationError
from repro.simulation.energy import EnergyAccount
from repro.simulation.packets import DataPacket


@dataclass
class SensorNode:
    """State of one sensor node during a simulation run.

    Attributes:
        node_id: Identifier of the node in the deployment.
        ring: Hop distance to the sink.
        parent: Tree parent toward the sink (``None`` for the sink itself).
        energy: The node's radio energy account.
        queue_capacity: Maximum number of packets the forwarding queue holds;
            packets arriving at a full queue are dropped (and show up as a
            reduced delivery ratio).
        phase: Random phase offset (seconds) applied to this node's periodic
            MAC activities (wake-ups, slots).
    """

    node_id: int
    ring: int
    parent: Optional[int]
    energy: EnergyAccount
    queue_capacity: int = 64
    phase: float = 0.0
    queue: Deque[DataPacket] = field(default_factory=deque)
    busy: bool = False
    dropped: int = 0
    forwarded: int = 0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise SimulationError("queue_capacity must be >= 1")
        if self.phase < 0:
            raise SimulationError("phase must be non-negative")

    @property
    def is_sink(self) -> bool:
        """Whether this node is the data sink."""
        return self.parent is None and self.ring == 0

    # ------------------------------------------------------------------ #
    # Queue handling
    # ------------------------------------------------------------------ #

    def enqueue(self, packet: DataPacket) -> bool:
        """Add a packet to the forwarding queue.

        Args:
            packet: The packet to queue for forwarding.

        Returns:
            True if the packet was accepted, False if it was dropped because
            the queue is full (the drop is counted on the node).

        Raises:
            SimulationError: if called on the sink, which never forwards.
        """
        if self.is_sink:
            raise SimulationError("the sink does not queue packets for forwarding")
        if len(self.queue) >= self.queue_capacity:
            self.dropped += 1
            return False
        packet.current_holder = self.node_id
        self.queue.append(packet)
        return True

    def head(self) -> Optional[DataPacket]:
        """The packet at the head of the queue, or ``None``."""
        return self.queue[0] if self.queue else None

    def pop_head(self) -> DataPacket:
        """Remove and return the head-of-line packet.

        Returns:
            The packet that was at the head of the queue (counted as
            forwarded).

        Raises:
            SimulationError: if the queue is empty.
        """
        if not self.queue:
            raise SimulationError(f"node {self.node_id} has an empty queue")
        self.forwarded += 1
        return self.queue.popleft()

    @property
    def backlog(self) -> int:
        """Number of packets currently waiting in the queue."""
        return len(self.queue)
