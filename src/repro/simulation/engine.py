"""Discrete-event simulation engine.

A deliberately small, dependency-free engine: a priority queue of timestamped
events (callbacks), a clock, and a run loop with an end time and an event
budget.  Determinism matters more than speed here — ties are broken by a
monotonically increasing sequence number so repeated runs with the same seed
produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

#: An event action is a zero-argument callback executed at its firing time.
EventAction = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: (time, sequence) ordering, payload not compared."""

    time: float
    sequence: int
    action: EventAction = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the run loop."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._event.time


class EventQueue:
    """Priority queue of scheduled events."""

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: EventAction, label: str = "") -> EventHandle:
        """Schedule ``action`` at absolute ``time``.

        Args:
            time: Absolute firing time in seconds.
            action: Zero-argument callback executed at the firing time.
            label: Free-form label used in error messages and traces.

        Returns:
            An :class:`EventHandle` that can cancel the event.
        """
        event = _ScheduledEvent(time=float(time), sequence=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def pop(self) -> Optional[_ScheduledEvent]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Firing time of the next non-cancelled event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


class Simulator:
    """Simulation clock and run loop.

    Args:
        max_events: Safety budget on the number of processed events; reaching
            it raises :class:`SimulationError` (it always indicates a bug
            such as a zero-length timer loop).
    """

    def __init__(self, max_events: int = 5_000_000) -> None:
        if max_events <= 0:
            raise SimulationError("max_events must be positive")
        self._queue = EventQueue()
        self._now = 0.0
        self._max_events = int(max_events)
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # Clock and scheduling
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed

    def schedule_at(self, time: float, action: EventAction, label: str = "") -> EventHandle:
        """Schedule an event at an absolute time (must not be in the past).

        Args:
            time: Absolute firing time; clamped up to ``now`` within a
                1e-12 s tolerance.
            action: Zero-argument callback executed at the firing time.
            label: Free-form label used in error messages and traces.

        Returns:
            An :class:`EventHandle` that can cancel the event.

        Raises:
            SimulationError: if ``time`` lies in the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time:.9f} before now ({self._now:.9f})"
            )
        return self._queue.push(max(time, self._now), action, label)

    def schedule_in(self, delay: float, action: EventAction, label: str = "") -> EventHandle:
        """Schedule an event ``delay`` seconds from now.

        Args:
            delay: Non-negative delay in seconds.
            action: Zero-argument callback executed at the firing time.
            label: Free-form label used in error messages and traces.

        Returns:
            An :class:`EventHandle` that can cancel the event.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for event {label!r}")
        return self._queue.push(self._now + delay, action, label)

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def run_until(self, end_time: float) -> None:
        """Process events in timestamp order until ``end_time`` (inclusive).

        Events scheduled beyond ``end_time`` remain in the queue; the clock
        is left at ``end_time`` so post-run bookkeeping (e.g. closing energy
        accounts) sees the full horizon.

        Args:
            end_time: Absolute time (seconds) up to which events fire.

        Raises:
            SimulationError: if ``end_time`` is before the current time, the
                run loop is re-entered from an event action, or the event
                budget is exceeded (always a bug such as a zero-length timer
                loop).
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time!r} is before the current time {self._now!r}"
            )
        if self._running:
            raise SimulationError("run_until() is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._processed += 1
                if self._processed > self._max_events:
                    raise SimulationError(
                        f"event budget exceeded ({self._max_events}); "
                        f"last event {event.label!r} at t={event.time:.6f}"
                    )
                self._now = event.time
                event.action()
            self._now = end_time
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)
