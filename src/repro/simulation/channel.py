"""Shared-medium bookkeeping.

The simulator models contention through carrier-sense deferral: before
transmitting, a node asks the channel when its neighbourhood becomes free and
defers its transmission until then (plus a small random backoff supplied by
the caller).  A transmission reserves the medium around the *sender* for its
duration, which is the standard unit-disk interference approximation at the
fidelity level of this simulator (no capture, no hidden-terminal losses —
packets are delayed, not destroyed; delivery failures in duty-cycled WSN MAC
studies are dominated by queue overflows, which the node model does capture).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.exceptions import SimulationError
from repro.network.topology import UnitDiskDeployment


class Channel:
    """Tracks when the medium around each node is busy.

    Args:
        deployment: The concrete deployment whose unit-disk graph defines
            which nodes interfere with each other.
    """

    def __init__(self, deployment: UnitDiskDeployment) -> None:
        self._deployment = deployment
        self._busy_until: Dict[int, float] = {node: 0.0 for node in deployment.node_ids}
        self._transmissions = 0
        self._deferrals = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def free_at(self, node: int, now: float) -> float:
        """Earliest time at or after ``now`` when ``node`` sees an idle medium.

        A busy answer is counted as a carrier-sense deferral (the caller is
        expected to defer its transmission to the returned time).

        Args:
            node: The sensing node's id.
            now: Current simulation time.

        Returns:
            ``now`` when the medium is idle, otherwise the end of the
            current reservation.

        Raises:
            SimulationError: if ``node`` is not part of the deployment.
        """
        busy_until = self._busy_until.get(node)
        if busy_until is None:
            raise SimulationError(f"unknown node {node!r}")
        if busy_until > now:
            self._deferrals += 1
            return busy_until
        return now

    def is_busy(self, node: int, now: float) -> bool:
        """Whether the medium around ``node`` is busy at ``now``.

        Args:
            node: The sensing node's id.
            now: Current simulation time.

        Raises:
            SimulationError: if ``node`` is not part of the deployment.
        """
        busy_until = self._busy_until.get(node)
        if busy_until is None:
            raise SimulationError(f"unknown node {node!r}")
        return busy_until > now

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def reserve(self, sender: int, start: float, duration: float) -> None:
        """Mark the medium busy around ``sender`` for ``[start, start + duration]``.

        The reservation covers the sender and every unit-disk neighbour of
        the sender (the nodes that would sense its carrier).

        Args:
            sender: The transmitting node's id.
            start: Reservation start time.
            duration: Reservation length in seconds (non-negative).

        Raises:
            SimulationError: if ``duration`` is negative.
        """
        if duration < 0:
            raise SimulationError(f"negative reservation duration {duration!r}")
        end = start + duration
        self._transmissions += 1
        for node in self._interference_set(sender):
            if end > self._busy_until[node]:
                self._busy_until[node] = end

    def _interference_set(self, sender: int) -> List[int]:
        nodes = [sender]
        nodes.extend(self._deployment.neighbours_of(sender))
        return nodes

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def transmissions(self) -> int:
        """Number of medium reservations made so far."""
        return self._transmissions

    @property
    def deferrals(self) -> int:
        """Number of times a sender found its medium busy and had to wait."""
        return self._deferrals
