"""Data packets and delivery records used by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import SimulationError


@dataclass
class DataPacket:
    """One application data packet travelling toward the sink.

    Attributes:
        packet_id: Unique identifier.
        source: Node id that generated the packet.
        created_at: Simulation time of generation.
        hops: Number of hops traversed so far.
        current_holder: Node currently holding the packet.
    """

    packet_id: int
    source: int
    created_at: float
    hops: int = 0
    current_holder: Optional[int] = None

    def record_hop(self, node: int) -> None:
        """Note that the packet has been forwarded to ``node``."""
        self.hops += 1
        self.current_holder = node


@dataclass(frozen=True)
class DeliveryRecord:
    """Delivery information for one packet that reached the sink.

    Attributes:
        packet_id: Identifier of the delivered packet.
        source: Originating node.
        source_ring: Hop distance of the originating node from the sink.
        created_at: Generation time.
        delivered_at: Sink arrival time.
        hops: Number of hops traversed.
    """

    packet_id: int
    source: int
    source_ring: int
    created_at: float
    delivered_at: float
    hops: int

    def __post_init__(self) -> None:
        if self.delivered_at < self.created_at:
            raise SimulationError(
                f"packet {self.packet_id} delivered before it was created "
                f"({self.delivered_at} < {self.created_at})"
            )

    @property
    def delay(self) -> float:
        """End-to-end delay in seconds."""
        return self.delivered_at - self.created_at


@dataclass
class PacketLog:
    """Collects generated and delivered packets during a simulation run."""

    generated: int = 0
    delivered: List[DeliveryRecord] = field(default_factory=list)

    def record_generated(self) -> None:
        """Count one generated packet."""
        self.generated += 1

    def record_delivery(self, record: DeliveryRecord) -> None:
        """Store a delivery record."""
        self.delivered.append(record)

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated packets that reached the sink."""
        if self.generated == 0:
            return 0.0
        return len(self.delivered) / self.generated

    def delays(self, source_ring: Optional[int] = None) -> List[float]:
        """End-to-end delays of delivered packets (optionally for one ring)."""
        return [
            record.delay
            for record in self.delivered
            if source_ring is None or record.source_ring == source_ring
        ]
