"""Packet-level discrete-event simulator of duty-cycled MAC protocols.

The paper is purely analytical; this subpackage provides the evaluation
substrate it leans on: an operational, event-driven simulation of X-MAC,
DMAC, LMAC and SCP-MAC on a concrete gathering tree, with per-node
radio-state energy accounting and per-packet end-to-end delay measurement.
All four behaviours share the duty-cycle MAC kernel in
:mod:`repro.simulation.mac.base`.  It is used to validate the analytical
models (see :mod:`repro.analysis.validation` and
``benchmarks/bench_simulation_validation.py``).

Fidelity level: the simulator works at the granularity of *forwarding
operations* (channel polls, strobe trains, slots, data/ack exchanges), not
individual symbols; carrier-sense deferral models contention.  This is the
level the Langendoen & Meier analysis itself is written at, so analytical and
simulated quantities are directly comparable.

* :mod:`repro.simulation.engine` — event queue and simulation clock.
* :mod:`repro.simulation.energy` — radio-state energy accounting per node.
* :mod:`repro.simulation.packets` — data packets and delivery records.
* :mod:`repro.simulation.node` — sensor node: queue, traffic generation.
* :mod:`repro.simulation.channel` — shared-medium busy bookkeeping.
* :mod:`repro.simulation.mac` — per-protocol forwarding behaviours.
* :mod:`repro.simulation.runner` — experiment driver returning a
  :class:`~repro.simulation.runner.SimulationResult`.
* :mod:`repro.simulation.batched` — array-batched replication engine,
  bit-identical to the scalar driver (``engine="batched"``).
"""

from repro.simulation.batched import simulate_protocol_batched
from repro.simulation.engine import EventQueue, Simulator
from repro.simulation.energy import EnergyAccount
from repro.simulation.packets import DataPacket, DeliveryRecord
from repro.simulation.runner import (
    SIM_ENGINES,
    SimulationConfig,
    SimulationResult,
    simulate_protocol,
)

__all__ = [
    "EventQueue",
    "Simulator",
    "EnergyAccount",
    "DataPacket",
    "DeliveryRecord",
    "SIM_ENGINES",
    "SimulationConfig",
    "SimulationResult",
    "simulate_protocol",
    "simulate_protocol_batched",
]
