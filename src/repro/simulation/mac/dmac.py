"""Simulated DMAC behaviour.

All nodes share a global frame of length ``Tf``.  A node at ring ``d`` has
its receive slot at offset ``(D - d - 1) * mu`` and its transmit slot at
offset ``(D - d) * mu`` within the frame (``mu`` is the slot time), so a
packet picked up by the departure wave moves one hop per slot all the way to
the sink.  The per-frame receive/transmit slot listening is the periodic
cost; per-packet costs are the contention, data and acknowledgement
exchanges.

Only the staggered-schedule logic lives here; the contention window, the
data/ack accounting and the periodic-cost closed form come from the
:class:`~repro.simulation.mac.base.DutyCycleKernel`.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.protocols.base import DutyCycledMACModel
from repro.protocols.dmac import DMACModel
from repro.simulation.channel import Channel
from repro.simulation.mac.base import (
    DutyCycleKernel,
    HopOutcome,
    KernelState,
    MediumGrant,
    PeriodicCharge,
    next_occurrence,
)
from repro.simulation.node import SensorNode


class DMACSimBehaviour(DutyCycleKernel):
    """Operational simulation of DMAC for one parameter setting."""

    name = "DMAC"
    supports_batch = True

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        if not isinstance(model, DMACModel):
            raise TypeError("DMACSimBehaviour requires a DMACModel")
        self._frame = self._params[DMACModel.FRAME_LENGTH]
        self._slot = model.slot_time
        self._contention = model._contention_window  # noqa: SLF001 - same package family
        self._depth = self._scenario.depth

    # ------------------------------------------------------------------ #
    # Periodic behaviour
    # ------------------------------------------------------------------ #

    def _tx_offset(self, ring: int) -> float:
        """Offset of the ring's transmit slot within the frame."""
        return (self._depth - ring) * self._slot

    def assign_phase(self, node: SensorNode) -> float:
        """The staggered schedule is deterministic per ring (no random phase)."""
        if node.is_sink:
            return 0.0
        return self._tx_offset(node.ring)

    def periodic_charges(self) -> Tuple[PeriodicCharge, ...]:
        """Receive slot + transmit slot idle listening every frame."""
        return (
            PeriodicCharge(
                state=KernelState.RX_CONTROL,
                interval=self._frame,
                duration=self._slot,
                multiplier=2,
                activity="slot-listen",
            ),
        )

    # ------------------------------------------------------------------ #
    # Hop transitions
    # ------------------------------------------------------------------ #

    def acquire_grant(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
    ) -> MediumGrant:
        """Wait for the sender's transmit slot and contend briefly.

        Same-ring neighbours contend within the shared transmit slot: defer
        behind an ongoing transmission if the exchange still fits in the
        slot, otherwise retry in the next frame's transmit slot (the
        kernel's slot-overflow RETRY transition).
        """
        slot_start = next_occurrence(now, self._frame, sender.phase)
        contention = self.contention_delay(self._contention)
        airtime = self._exchange
        start = channel.free_at(sender.node_id, slot_start)
        if start + contention + airtime > slot_start + self._slot:
            slot_start = next_occurrence(slot_start + self._slot, self._frame, sender.phase)
            start = max(slot_start, channel.free_at(sender.node_id, slot_start))
        return MediumGrant(
            start=start,
            transmission_start=start + contention,
            info={"contention": contention},
        )

    def perform_exchange(
        self,
        grant: MediumGrant,
        sender: SensorNode,
        receiver: SensorNode,
        channel: Channel,
    ) -> HopOutcome:
        """Contention listen, then the data/ack exchange."""
        transmission_start = grant.transmission_start
        airtime = self._exchange
        completion = transmission_start + airtime
        channel.reserve(sender.node_id, transmission_start, airtime)

        self.charge(
            sender,
            KernelState.CONTEND,
            grant.start,
            grant.info["contention"],
            activity="contention",
        )
        self.charge_sender_data_ack(sender, transmission_start)
        # The receiver is awake in its receive slot anyway (periodic cost);
        # only the acknowledgement transmission is extra.
        self.charge_receiver_ack(receiver, completion)
        return HopOutcome(
            transmission_start=transmission_start,
            completion=completion,
            airtime=airtime,
        )

    def charge_overhearers(
        self,
        grant: MediumGrant,
        outcome: HopOutcome,
        sender: SensorNode,
        overhearers: Sequence[SensorNode],
    ) -> None:
        """Same-ring neighbours awake in the overlapping slot overhear the data."""
        for neighbour in overhearers:
            if neighbour.ring == sender.ring:
                self.charge(
                    neighbour,
                    KernelState.OVERHEAR,
                    outcome.transmission_start,
                    self._data,
                    activity="overhear",
                )
