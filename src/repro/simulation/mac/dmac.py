"""Simulated DMAC behaviour.

All nodes share a global frame of length ``Tf``.  A node at ring ``d`` has
its receive slot at offset ``(D - d - 1) * mu`` and its transmit slot at
offset ``(D - d) * mu`` within the frame (``mu`` is the slot time), so a
packet picked up by the departure wave moves one hop per slot all the way to
the sink.  The per-frame receive/transmit slot listening is the periodic
cost; per-packet costs are the contention, data and acknowledgement
exchanges.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.network.radio import RadioMode
from repro.protocols.base import DutyCycledMACModel
from repro.protocols.dmac import DMACModel
from repro.simulation.channel import Channel
from repro.simulation.mac.base import HopOutcome, MACSimBehaviour, next_occurrence
from repro.simulation.node import SensorNode


class DMACSimBehaviour(MACSimBehaviour):
    """Operational simulation of DMAC for one parameter setting."""

    name = "DMAC"

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        if not isinstance(model, DMACModel):
            raise TypeError("DMACSimBehaviour requires a DMACModel")
        self._frame = self._params[DMACModel.FRAME_LENGTH]
        self._slot = model.slot_time
        self._contention = model._contention_window  # noqa: SLF001 - same package family
        radio = self._radio
        packets = self._packets
        self._data = packets.data_airtime(radio)
        self._ack = packets.ack_airtime(radio)
        self._depth = self._scenario.depth

    # ------------------------------------------------------------------ #
    # Periodic behaviour
    # ------------------------------------------------------------------ #

    def _tx_offset(self, ring: int) -> float:
        """Offset of the ring's transmit slot within the frame."""
        return (self._depth - ring) * self._slot

    def assign_phase(self, node: SensorNode) -> float:
        """The staggered schedule is deterministic per ring (no random phase)."""
        if node.is_sink:
            return 0.0
        return self._tx_offset(node.ring)

    def charge_periodic_energy(self, node: SensorNode, horizon: float) -> None:
        """Receive slot + transmit slot idle listening every frame."""
        frames = int(horizon / self._frame)
        node.energy.record(
            RadioMode.RX, 0.0, frames * 2.0 * self._slot, activity="slot-listen"
        )

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #

    def plan_hop(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
        overhearers: Sequence[SensorNode],
    ) -> HopOutcome:
        """Wait for the sender's transmit slot, contend briefly, then exchange."""
        slot_start = next_occurrence(now, self._frame, sender.phase)
        contention = 0.5 * self._contention + self.backoff(0.5 * self._contention)
        airtime = self._data + self._radio.turnaround_time + self._ack
        # Same-ring neighbours contend within the shared transmit slot: defer
        # behind an ongoing transmission if the exchange still fits in the
        # slot, otherwise retry in the next frame's transmit slot.
        start = channel.free_at(sender.node_id, slot_start)
        if start + contention + airtime > slot_start + self._slot:
            slot_start = next_occurrence(slot_start + self._slot, self._frame, sender.phase)
            start = max(slot_start, channel.free_at(sender.node_id, slot_start))
        transmission_start = start + contention
        completion = transmission_start + airtime
        channel.reserve(sender.node_id, transmission_start, airtime)

        sender.energy.record(RadioMode.RX, start, contention, activity="contention")
        sender.energy.record(RadioMode.TX, transmission_start, self._data, activity="data-tx")
        sender.energy.record(RadioMode.RX, transmission_start, self._ack, activity="ack-rx")

        # The receiver is awake in its receive slot anyway (periodic cost);
        # only the acknowledgement transmission is extra.
        receiver.energy.record(RadioMode.TX, completion, self._ack, activity="ack-tx")

        # Same-ring neighbours awake in the overlapping slot overhear the data.
        for neighbour in overhearers:
            if neighbour.ring == sender.ring:
                neighbour.energy.record(
                    RadioMode.RX, transmission_start, self._data, activity="overhear"
                )
        return HopOutcome(
            transmission_start=transmission_start,
            completion=completion,
            airtime=airtime,
        )
