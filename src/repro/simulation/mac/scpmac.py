"""Simulated SCP-MAC behaviour.

SCP-MAC (Ye, Silva, Heidemann, SenSys 2006) synchronizes the channel-polling
times of the whole neighbourhood: every node polls at the *same* periodic
epochs (one network-wide random phase), so a sender only has to transmit a
short wakeup tone spanning twice the residual clock error instead of
strobing for half a wake-up interval like X-MAC.  Access is two-phase: a
first contention window before the tone, and a second one between the tone
and the data frame; a sender that finds the medium already taken at an epoch
has lost that epoch's contention and retries at the next synchronized poll
(the kernel's RETRY transition).  The price of the short tone is a periodic
SYNC exchange that keeps the clocks aligned.

Only the synchronized-polling logic lives here; contention draws, data/ack
accounting and the periodic-cost closed form come from the
:class:`~repro.simulation.mac.base.DutyCycleKernel`.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.protocols.base import DutyCycledMACModel
from repro.protocols.scpmac import SCPMACModel
from repro.simulation.channel import Channel
from repro.simulation.mac.base import (
    DutyCycleKernel,
    HopOutcome,
    KernelState,
    MediumGrant,
    PeriodicCharge,
    next_occurrence,
)
from repro.simulation.node import SensorNode

#: Contention-window length in units of one clear-channel assessment.  Both
#: contention phases use the same small window; it only has to spread the
#: handful of same-epoch contenders of one neighbourhood.
CONTENTION_SLOTS = 2.0


class SCPMACSimBehaviour(DutyCycleKernel):
    """Operational simulation of SCP-MAC for one parameter setting."""

    name = "SCP-MAC"
    supports_batch = True

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        if not isinstance(model, SCPMACModel):
            raise TypeError("SCPMACSimBehaviour requires an SCPMACModel")
        self._poll = self._params[SCPMACModel.POLL_INTERVAL]
        #: The wakeup tone spans twice the residual synchronization error,
        #: exactly like the analytical model's ``tone`` term.
        self._tone = 2.0 * model.sync_error
        self._sync_period = model.sync_period
        self._sync = self._packets.sync_airtime(self._radio)
        self._cw = CONTENTION_SLOTS * self._radio.carrier_sense_time
        #: One network-wide phase: *synchronized* channel polling means every
        #: node polls at the same epochs.
        self._phase = float(self._rng.uniform(0.0, self._poll))

    # ------------------------------------------------------------------ #
    # Periodic behaviour
    # ------------------------------------------------------------------ #

    def assign_phase(self, node: SensorNode) -> float:
        """All nodes share the network-wide synchronized polling phase."""
        return self._phase

    def periodic_charges(self) -> Tuple[PeriodicCharge, ...]:
        """Synchronized channel polls plus the periodic SYNC exchange.

        A node transmits one SYNC frame per synchronization period and
        receives its ``density`` neighbours' SYNC frames — the analytical
        model's ``sync_transmit``/``sync_receive`` terms.
        """
        return (
            PeriodicCharge(
                state=KernelState.POLL,
                interval=self._poll,
                duration=self._poll_cost,
                activity="poll",
            ),
            PeriodicCharge(
                state=KernelState.TX_CONTROL,
                interval=self._sync_period,
                duration=self._sync,
                activity="sync-tx",
            ),
            PeriodicCharge(
                state=KernelState.RX_CONTROL,
                interval=self._sync_period,
                duration=self._sync,
                multiplier=self._scenario.density,
                activity="sync-rx",
            ),
        )

    # ------------------------------------------------------------------ #
    # Hop transitions
    # ------------------------------------------------------------------ #

    def acquire_grant(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
    ) -> MediumGrant:
        """Wait for the next synchronized poll and run the two contentions.

        A sender whose neighbourhood is already reserved at the epoch (a
        same-epoch contender won the tone) has lost the contention and
        retries at the first epoch after the medium clears.
        """
        epoch = next_occurrence(now, self._poll, self._phase)
        free = channel.free_at(sender.node_id, epoch)
        while free > epoch:
            # Lost this epoch's contention: retry at the next synchronized
            # poll after the medium clears (the RETRY transition).  The tone
            # must start exactly on an epoch — receivers sleep between
            # polls — so walk epochs until one has an idle medium; each step
            # jumps past a finite reservation, so the walk terminates.
            epoch = next_occurrence(free, self._poll, self._phase)
            free = channel.free_at(sender.node_id, epoch)
        # First contention phase: a slotted carrier sense in the window
        # before the epoch (decided by the channel check above); second
        # phase: a random backoff between the tone and the data frame.
        data_backoff = self.backoff(self._cw)
        return MediumGrant(
            start=epoch,
            transmission_start=epoch + self._tone + data_backoff,
            info={"data_backoff": data_backoff},
        )

    def perform_exchange(
        self,
        grant: MediumGrant,
        sender: SensorNode,
        receiver: SensorNode,
        channel: Channel,
    ) -> HopOutcome:
        """Wakeup tone at the epoch, second contention, then data + ack."""
        tone_start = grant.start
        data_start = grant.transmission_start
        completion = data_start + self._exchange
        airtime = completion - tone_start
        channel.reserve(sender.node_id, tone_start, airtime)

        # Sender: carrier sense through both contention windows, the tone,
        # then the data/ack exchange.
        self.charge(
            sender,
            KernelState.CONTEND,
            tone_start,
            self._cw + grant.info["data_backoff"],
            activity="contention",
        )
        self.charge(
            sender, KernelState.TX_PREAMBLE, tone_start, self._tone, activity="tone-tx"
        )
        self.charge_sender_data_ack(sender, data_start)

        # Receiver: its synchronized poll falls inside the tone (that is the
        # point of SCP); it hears half the tone on average, waits out the
        # second contention window and receives the data frame.
        self.charge(
            receiver,
            KernelState.RX_PREAMBLE,
            tone_start,
            0.5 * self._tone + grant.info["data_backoff"],
            activity="tone-rx",
        )
        self.charge_receiver_data_ack(receiver, data_start)
        return HopOutcome(
            transmission_start=data_start,
            completion=completion,
            airtime=airtime,
        )

    def charge_overhearers(
        self,
        grant: MediumGrant,
        outcome: HopOutcome,
        sender: SensorNode,
        overhearers: Sequence[SensorNode],
    ) -> None:
        """Every neighbour polls at the same epoch and samples the tone.

        Synchronized polling means the whole neighbourhood is awake when a
        tone is transmitted; a node that is not the destination hears half
        the tone on average before going back to sleep — the analytical
        model's per-packet ``overhear`` term.
        """
        for neighbour in overhearers:
            self.charge(
                neighbour,
                KernelState.OVERHEAR,
                grant.start,
                0.5 * self._tone,
                activity="overhear",
            )
