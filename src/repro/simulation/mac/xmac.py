"""Simulated X-MAC behaviour.

Receivers poll the channel every wake-up interval ``Tw`` (each node has its
own random phase); a sender strobes from the moment it acquires the medium
until the receiver's next poll, then exchanges data and acknowledgement.
Neighbours of the sender that poll during the strobe train overhear one
strobe period each.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.network.radio import RadioMode
from repro.protocols.base import DutyCycledMACModel
from repro.protocols.xmac import XMACModel
from repro.simulation.channel import Channel
from repro.simulation.mac.base import HopOutcome, MACSimBehaviour, next_occurrence
from repro.simulation.node import SensorNode


class XMACSimBehaviour(MACSimBehaviour):
    """Operational simulation of X-MAC for one parameter setting."""

    name = "X-MAC"

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        self._wakeup = self._params[XMACModel.WAKEUP_INTERVAL]
        radio = self._radio
        packets = self._packets
        self._strobe = packets.strobe_airtime(radio)
        self._ack = packets.ack_airtime(radio)
        self._data = packets.data_airtime(radio)
        self._gap = self._ack + 2.0 * radio.turnaround_time
        self._strobe_period = self._strobe + self._gap
        self._poll = radio.wakeup_time + radio.carrier_sense_time
        self._exchange = self._data + radio.turnaround_time + self._ack

    # ------------------------------------------------------------------ #
    # Periodic behaviour
    # ------------------------------------------------------------------ #

    def assign_phase(self, node: SensorNode) -> float:
        """Each node polls on its own schedule with a uniform random phase."""
        return float(self._rng.uniform(0.0, self._wakeup))

    def charge_periodic_energy(self, node: SensorNode, horizon: float) -> None:
        """Channel polls: one short carrier sense every wake-up interval."""
        polls = int(horizon / self._wakeup)
        node.energy.record(
            RadioMode.RX, 0.0, polls * self._poll, activity="poll"
        )

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #

    def plan_hop(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
        overhearers: Sequence[SensorNode],
    ) -> HopOutcome:
        """Strobe until the receiver's next poll, then exchange data and ack."""
        start = channel.free_at(sender.node_id, now)
        if start > now:
            start += self.backoff(self._strobe_period)
        # The receiver polls at phase + k * Tw; the strobe train must cover
        # the first poll after the strobing starts.
        receiver_poll = next_occurrence(start, self._wakeup, receiver.phase)
        strobe_duration = max(0.0, receiver_poll - start) + self._strobe_period
        transmission_end = start + strobe_duration + self._exchange
        airtime = strobe_duration + self._exchange
        channel.reserve(sender.node_id, start, airtime)

        # Sender: alternating strobes and ack-listen gaps, then data + ack.
        strobe_tx_fraction = self._strobe / self._strobe_period
        sender.energy.record(
            RadioMode.TX, start, strobe_duration * strobe_tx_fraction, activity="strobe-tx"
        )
        sender.energy.record(
            RadioMode.RX,
            start,
            strobe_duration * (1.0 - strobe_tx_fraction),
            activity="strobe-ack-listen",
        )
        sender.energy.record(RadioMode.TX, start, self._data, activity="data-tx")
        sender.energy.record(RadioMode.RX, start, self._ack, activity="ack-rx")

        # Receiver: wakes at its poll, hears the residual strobe, answers the
        # early ack, receives the data frame and acknowledges it.
        receiver.energy.record(
            RadioMode.RX, receiver_poll, 0.5 * self._strobe_period + self._strobe, activity="strobe-rx"
        )
        receiver.energy.record(RadioMode.TX, receiver_poll, self._ack, activity="early-ack-tx")
        receiver.energy.record(RadioMode.RX, receiver_poll, self._data, activity="data-rx")
        receiver.energy.record(RadioMode.TX, receiver_poll, self._ack, activity="ack-tx")

        # Overhearers: neighbours whose poll falls inside the strobe train
        # wake up, hear one addressed strobe, and go back to sleep.
        for neighbour in overhearers:
            poll_time = next_occurrence(start, self._wakeup, neighbour.phase)
            if poll_time <= start + strobe_duration:
                neighbour.energy.record(
                    RadioMode.RX, poll_time, 1.5 * self._strobe_period, activity="overhear"
                )
        return HopOutcome(
            transmission_start=start,
            completion=transmission_end,
            airtime=airtime,
        )
