"""Simulated X-MAC behaviour.

Receivers poll the channel every wake-up interval ``Tw`` (each node has its
own random phase); a sender strobes from the moment it acquires the medium
until the receiver's next poll, then exchanges data and acknowledgement.
Neighbours of the sender that poll during the strobe train overhear one
strobe period each.

Only the strobed-preamble logic lives here; scheduling, contention,
data/ack accounting and periodic costs come from the
:class:`~repro.simulation.mac.base.DutyCycleKernel`.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.protocols.base import DutyCycledMACModel
from repro.protocols.xmac import XMACModel
from repro.simulation.channel import Channel
from repro.simulation.mac.base import (
    DutyCycleKernel,
    HopOutcome,
    KernelState,
    MediumGrant,
    PeriodicCharge,
    next_occurrence,
)
from repro.simulation.node import SensorNode


class XMACSimBehaviour(DutyCycleKernel):
    """Operational simulation of X-MAC for one parameter setting."""

    name = "X-MAC"
    supports_batch = True

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        self._wakeup = self._params[XMACModel.WAKEUP_INTERVAL]
        radio = self._radio
        packets = self._packets
        self._strobe = packets.strobe_airtime(radio)
        self._gap = self._ack + 2.0 * radio.turnaround_time
        self._strobe_period = self._strobe + self._gap

    # ------------------------------------------------------------------ #
    # Periodic behaviour
    # ------------------------------------------------------------------ #

    def assign_phase(self, node: SensorNode) -> float:
        """Each node polls on its own schedule with a uniform random phase."""
        return float(self._rng.uniform(0.0, self._wakeup))

    def periodic_charges(self) -> Tuple[PeriodicCharge, ...]:
        """Channel polls: one short carrier sense every wake-up interval."""
        return (
            PeriodicCharge(
                state=KernelState.POLL,
                interval=self._wakeup,
                duration=self._poll_cost,
                activity="poll",
            ),
        )

    # ------------------------------------------------------------------ #
    # Hop transitions
    # ------------------------------------------------------------------ #

    def acquire_grant(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
    ) -> MediumGrant:
        """Acquire the medium, then strobe until the receiver's next poll."""
        start = self.acquire_medium(
            sender, now, channel, deferral_backoff=self._strobe_period
        )
        # The receiver polls at phase + k * Tw; the strobe train must cover
        # the first poll after the strobing starts.
        receiver_poll = next_occurrence(start, self._wakeup, receiver.phase)
        strobe_duration = max(0.0, receiver_poll - start) + self._strobe_period
        return MediumGrant(
            start=start,
            transmission_start=start,
            info={"receiver_poll": receiver_poll, "strobe_duration": strobe_duration},
        )

    def perform_exchange(
        self,
        grant: MediumGrant,
        sender: SensorNode,
        receiver: SensorNode,
        channel: Channel,
    ) -> HopOutcome:
        """Strobe train, early ack, then the data/ack exchange."""
        start = grant.start
        receiver_poll = grant.info["receiver_poll"]
        strobe_duration = grant.info["strobe_duration"]
        transmission_end = start + strobe_duration + self._exchange
        airtime = strobe_duration + self._exchange
        channel.reserve(sender.node_id, start, airtime)

        # Sender: alternating strobes and ack-listen gaps, then data + ack.
        strobe_tx_fraction = self._strobe / self._strobe_period
        self.charge(
            sender,
            KernelState.TX_PREAMBLE,
            start,
            strobe_duration * strobe_tx_fraction,
            activity="strobe-tx",
        )
        self.charge(
            sender,
            KernelState.RX_ACK,
            start,
            strobe_duration * (1.0 - strobe_tx_fraction),
            activity="strobe-ack-listen",
        )
        self.charge_sender_data_ack(sender, start)

        # Receiver: wakes at its poll, hears the residual strobe, answers the
        # early ack, receives the data frame and acknowledges it.
        self.charge(
            receiver,
            KernelState.RX_PREAMBLE,
            receiver_poll,
            0.5 * self._strobe_period + self._strobe,
            activity="strobe-rx",
        )
        self.charge(
            receiver, KernelState.TX_ACK, receiver_poll, self._ack, activity="early-ack-tx"
        )
        self.charge_receiver_data_ack(receiver, receiver_poll)
        return HopOutcome(
            transmission_start=start,
            completion=transmission_end,
            airtime=airtime,
        )

    def charge_overhearers(
        self,
        grant: MediumGrant,
        outcome: HopOutcome,
        sender: SensorNode,
        overhearers: Sequence[SensorNode],
    ) -> None:
        """Neighbours whose poll falls inside the strobe train wake up, hear
        one addressed strobe, and go back to sleep."""
        start = grant.start
        strobe_duration = grant.info["strobe_duration"]
        for neighbour in overhearers:
            poll_time = next_occurrence(start, self._wakeup, neighbour.phase)
            if poll_time <= start + strobe_duration:
                self.charge(
                    neighbour,
                    KernelState.OVERHEAR,
                    poll_time,
                    1.5 * self._strobe_period,
                    activity="overhear",
                )
