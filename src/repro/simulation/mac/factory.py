"""Factory mapping analytical models to simulated behaviours."""

from __future__ import annotations

from typing import List, Mapping, Sequence, Type

import numpy as np

from repro.exceptions import SimulationError
from repro.protocols.base import DutyCycledMACModel
from repro.protocols.dmac import DMACModel
from repro.protocols.lmac import LMACModel
from repro.protocols.registry import available_protocols, protocol_class
from repro.protocols.scpmac import SCPMACModel
from repro.protocols.xmac import XMACModel
from repro.simulation.mac.base import MACSimBehaviour
from repro.simulation.mac.dmac import DMACSimBehaviour
from repro.simulation.mac.lmac import LMACSimBehaviour
from repro.simulation.mac.scpmac import SCPMACSimBehaviour
from repro.simulation.mac.xmac import XMACSimBehaviour

#: Analytical-model class → simulated-behaviour class.
_BEHAVIOURS: dict[Type[DutyCycledMACModel], Type[MACSimBehaviour]] = {
    XMACModel: XMACSimBehaviour,
    DMACModel: DMACSimBehaviour,
    LMACModel: LMACSimBehaviour,
    SCPMACModel: SCPMACSimBehaviour,
}


def has_behaviour_for(model_class: Type[DutyCycledMACModel]) -> bool:
    """Whether a simulated behaviour is registered for a model class.

    Args:
        model_class: The analytical model class to look up (subclasses of a
            registered class count, matching :func:`behaviour_for_model`).

    Returns:
        True when :func:`behaviour_for_model` would succeed for instances
        of ``model_class``.
    """
    return any(
        isinstance(model_class, type) and issubclass(model_class, registered)
        for registered in _BEHAVIOURS
    )


def available_mac_protocols() -> List[str]:
    """Canonical names of the registered protocols that can be simulated.

    Cross-references the protocol name registry with the behaviour registry,
    so callers (spec validation, campaign assembly, CLI help) can tell
    *simulatable* protocols apart from analytical-only ones by name before
    any model is constructed.

    Returns:
        Sorted canonical protocol names with a registered simulated
        behaviour (all four built-ins: ``dmac``, ``lmac``, ``scpmac``,
        ``xmac`` — plus any user-registered protocol whose model class has
        a behaviour registered via :func:`register_behaviour`).
    """
    return [
        name
        for name in available_protocols()
        if has_behaviour_for(protocol_class(name))
    ]


def behaviour_class_for(model: DutyCycledMACModel) -> Type[MACSimBehaviour]:
    """Resolve the behaviour class for a model without instantiating it.

    Instantiating a behaviour may consume RNG draws; the batched engine uses
    this to pick a batch kernel before any randomness is spent.

    Args:
        model: The analytical protocol model.

    Returns:
        The behaviour class :func:`behaviour_for_model` would instantiate.

    Raises:
        SimulationError: if the model has no registered simulated
            counterpart.
    """
    for model_class, behaviour_class in _BEHAVIOURS.items():
        if isinstance(model, model_class):
            return behaviour_class
    raise SimulationError(
        f"no simulated behaviour is registered for {type(model).__name__} "
        f"({model.name}); protocols with a simulator: "
        f"{', '.join(available_mac_protocols())}"
    )


def behaviour_for_model(
    model: DutyCycledMACModel,
    params: Mapping[str, float] | Sequence[float] | np.ndarray,
    rng: np.random.Generator,
) -> MACSimBehaviour:
    """Instantiate the simulated behaviour matching an analytical model.

    Args:
        model: The analytical protocol model.
        params: Concrete parameter vector to simulate (mapping or array).
        rng: Random generator for phases and backoffs.

    Returns:
        The behaviour instance bound to ``model``'s configuration.

    Raises:
        SimulationError: if the model has no registered simulated
            counterpart (an analytical-only user-registered protocol); the
            message lists the simulatable protocol names.
    """
    return behaviour_class_for(model)(model, params, rng)


def register_behaviour(
    model_class: Type[DutyCycledMACModel], behaviour_class: Type[MACSimBehaviour]
) -> None:
    """Register a simulated behaviour for a user-defined protocol model.

    Args:
        model_class: The analytical model class the behaviour simulates.
        behaviour_class: The behaviour implementation.

    Raises:
        SimulationError: if either argument is not a subclass of the
            expected base class.
    """
    if not issubclass(model_class, DutyCycledMACModel):
        raise SimulationError("model_class must derive from DutyCycledMACModel")
    if not issubclass(behaviour_class, MACSimBehaviour):
        raise SimulationError("behaviour_class must derive from MACSimBehaviour")
    _BEHAVIOURS[model_class] = behaviour_class
