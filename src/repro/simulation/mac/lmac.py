"""Simulated LMAC behaviour.

Time is divided into frames of ``N`` slots of equal length; every node owns
one slot (chosen uniformly at random here — the distributed slot-assignment
protocol itself is out of scope and replaced by a collision-free random
assignment per node).  Nodes listen to the control section of every slot
(periodic cost) and transmit their own control message once per frame; data
units ride in the owner's slot, addressed to the tree parent.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.network.radio import RadioMode
from repro.protocols.base import DutyCycledMACModel
from repro.protocols.lmac import LMACModel
from repro.simulation.channel import Channel
from repro.simulation.mac.base import HopOutcome, MACSimBehaviour, next_occurrence
from repro.simulation.node import SensorNode


class LMACSimBehaviour(MACSimBehaviour):
    """Operational simulation of LMAC for one parameter setting."""

    name = "LMAC"

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        if not isinstance(model, LMACModel):
            raise TypeError("LMACSimBehaviour requires an LMACModel")
        self._slot_length = self._params[LMACModel.SLOT_LENGTH]
        self._slot_count = int(round(self._params[LMACModel.SLOT_COUNT]))
        self._frame = self._slot_length * self._slot_count
        radio = self._radio
        packets = self._packets
        self._control = packets.control_airtime(radio)
        self._data = packets.data_airtime(radio)
        self._guard = model._guard_time  # noqa: SLF001 - same package family
        self._wakeup = radio.wakeup_time

    # ------------------------------------------------------------------ #
    # Periodic behaviour
    # ------------------------------------------------------------------ #

    def assign_phase(self, node: SensorNode) -> float:
        """Each node owns a uniformly random slot index within the frame."""
        slot_index = int(self._rng.integers(0, self._slot_count))
        return slot_index * self._slot_length

    def charge_periodic_energy(self, node: SensorNode, horizon: float) -> None:
        """Listen to every other slot's control section; send own control."""
        frames = int(horizon / self._frame)
        listen_per_slot = self._control + self._guard + self._wakeup
        node.energy.record(
            RadioMode.RX,
            0.0,
            frames * (self._slot_count - 1) * listen_per_slot,
            activity="control-listen",
        )
        node.energy.record(
            RadioMode.TX,
            0.0,
            frames * (self._control + self._wakeup),
            activity="control-tx",
        )

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #

    def plan_hop(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
        overhearers: Sequence[SensorNode],
    ) -> HopOutcome:
        """Wait for the sender's own slot, announce in the control section,
        then transmit the data unit to the parent."""
        del overhearers  # control-section listening is already charged per frame
        slot_start = next_occurrence(now, self._frame, sender.phase)
        # Slot ownership is collision-free by construction; the medium check
        # only guards against the (rare) case of overlapping random slots.
        start = channel.free_at(sender.node_id, slot_start)
        if start > slot_start:
            start = next_occurrence(start, self._frame, sender.phase)
        data_start = start + self._guard + self._control
        completion = data_start + self._data
        airtime = self._guard + self._control + self._data
        channel.reserve(sender.node_id, start, airtime)

        # The sender's control transmission is part of the periodic cost;
        # only the data unit is charged per packet.
        sender.energy.record(RadioMode.TX, data_start, self._data, activity="data-tx")
        # The receiver was listening to the control section anyway (periodic);
        # staying awake for the addressed data unit is the extra cost.
        receiver.energy.record(RadioMode.RX, data_start, self._data, activity="data-rx")
        return HopOutcome(
            transmission_start=start,
            completion=completion,
            airtime=airtime,
        )
