"""Simulated LMAC behaviour.

Time is divided into frames of ``N`` slots of equal length; every node owns
one slot (chosen uniformly at random here — the distributed slot-assignment
protocol itself is out of scope and replaced by a collision-free random
assignment per node).  Nodes listen to the control section of every slot
(periodic cost) and transmit their own control message once per frame; data
units ride in the owner's slot, addressed to the tree parent.

Only the slot-ownership logic lives here; scheduling, the periodic-cost
closed form and the data exchange accounting come from the
:class:`~repro.simulation.mac.base.DutyCycleKernel`.  LMAC keeps the
kernel's no-op overhearing transition: neighbourhood listening is already
part of the per-frame control-section cost.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.protocols.base import DutyCycledMACModel
from repro.protocols.lmac import LMACModel
from repro.simulation.channel import Channel
from repro.simulation.mac.base import (
    DutyCycleKernel,
    HopOutcome,
    KernelState,
    MediumGrant,
    PeriodicCharge,
    next_occurrence,
)
from repro.simulation.node import SensorNode


class LMACSimBehaviour(DutyCycleKernel):
    """Operational simulation of LMAC for one parameter setting."""

    name = "LMAC"
    supports_batch = True

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        if not isinstance(model, LMACModel):
            raise TypeError("LMACSimBehaviour requires an LMACModel")
        self._slot_length = self._params[LMACModel.SLOT_LENGTH]
        self._slot_count = int(round(self._params[LMACModel.SLOT_COUNT]))
        self._frame = self._slot_length * self._slot_count
        self._control = self._packets.control_airtime(self._radio)
        self._guard = model._guard_time  # noqa: SLF001 - same package family
        self._wakeup = self._radio.wakeup_time

    # ------------------------------------------------------------------ #
    # Periodic behaviour
    # ------------------------------------------------------------------ #

    def assign_phase(self, node: SensorNode) -> float:
        """Each node owns a uniformly random slot index within the frame."""
        slot_index = int(self._rng.integers(0, self._slot_count))
        return slot_index * self._slot_length

    def periodic_charges(self) -> Tuple[PeriodicCharge, ...]:
        """Listen to every other slot's control section; send own control."""
        return (
            PeriodicCharge(
                state=KernelState.RX_CONTROL,
                interval=self._frame,
                duration=self._control + self._guard + self._wakeup,
                multiplier=self._slot_count - 1,
                activity="control-listen",
            ),
            PeriodicCharge(
                state=KernelState.TX_CONTROL,
                interval=self._frame,
                duration=self._control + self._wakeup,
                activity="control-tx",
            ),
        )

    # ------------------------------------------------------------------ #
    # Hop transitions
    # ------------------------------------------------------------------ #

    def acquire_grant(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
    ) -> MediumGrant:
        """Wait for the sender's own slot (retry a frame later if occupied)."""
        slot_start = next_occurrence(now, self._frame, sender.phase)
        # Slot ownership is collision-free by construction; the medium check
        # only guards against the (rare) case of overlapping random slots.
        start = channel.free_at(sender.node_id, slot_start)
        if start > slot_start:
            start = next_occurrence(start, self._frame, sender.phase)
        return MediumGrant(
            start=start, transmission_start=start + self._guard + self._control
        )

    def perform_exchange(
        self,
        grant: MediumGrant,
        sender: SensorNode,
        receiver: SensorNode,
        channel: Channel,
    ) -> HopOutcome:
        """Announce in the control section, then send the data unit."""
        data_start = grant.transmission_start
        completion = data_start + self._data
        airtime = self._guard + self._control + self._data
        channel.reserve(sender.node_id, grant.start, airtime)

        # The sender's control transmission is part of the periodic cost;
        # only the data unit is charged per packet.  LMAC data units are
        # not acknowledged — the next frame's control section confirms.
        self.charge_sender_data_ack(sender, data_start, ack=False)
        # The receiver was listening to the control section anyway (periodic);
        # staying awake for the addressed data unit is the extra cost.
        self.charge_receiver_data_ack(receiver, data_start, ack=False)
        return HopOutcome(
            transmission_start=grant.start,
            completion=completion,
            airtime=airtime,
        )
