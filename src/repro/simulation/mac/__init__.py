"""Per-protocol forwarding behaviours for the simulator.

Each behaviour translates the protocol's operation into three things the
runner needs: the periodic (traffic-independent) energy cost of a node, the
time at which a queued packet can actually be handed to the next hop, and the
energy charged to the sender, the receiver and the overhearing neighbours for
that hop.

All four built-in behaviours are subclasses of the shared
:class:`~repro.simulation.mac.base.DutyCycleKernel` — the duty-cycle MAC
state machine (kernel states, periodic-cost table, contention windows,
data/ack exchange accounting); each subclass implements only its
distinguishing transitions.
"""

from repro.simulation.mac.base import (
    DutyCycleKernel,
    HopOutcome,
    KernelState,
    MACSimBehaviour,
    MediumGrant,
    PeriodicCharge,
    next_occurrence,
)
from repro.simulation.mac.xmac import XMACSimBehaviour
from repro.simulation.mac.dmac import DMACSimBehaviour
from repro.simulation.mac.lmac import LMACSimBehaviour
from repro.simulation.mac.scpmac import SCPMACSimBehaviour
from repro.simulation.mac.factory import (
    available_mac_protocols,
    behaviour_for_model,
    register_behaviour,
)

__all__ = [
    "DutyCycleKernel",
    "HopOutcome",
    "KernelState",
    "MACSimBehaviour",
    "MediumGrant",
    "PeriodicCharge",
    "next_occurrence",
    "XMACSimBehaviour",
    "DMACSimBehaviour",
    "LMACSimBehaviour",
    "SCPMACSimBehaviour",
    "available_mac_protocols",
    "behaviour_for_model",
    "register_behaviour",
]
