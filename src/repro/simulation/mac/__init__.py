"""Per-protocol forwarding behaviours for the simulator.

Each behaviour translates the protocol's operation into three things the
runner needs: the periodic (traffic-independent) energy cost of a node, the
time at which a queued packet can actually be handed to the next hop, and the
energy charged to the sender, the receiver and the overhearing neighbours for
that hop.
"""

from repro.simulation.mac.base import HopOutcome, MACSimBehaviour, next_occurrence
from repro.simulation.mac.xmac import XMACSimBehaviour
from repro.simulation.mac.dmac import DMACSimBehaviour
from repro.simulation.mac.lmac import LMACSimBehaviour
from repro.simulation.mac.factory import behaviour_for_model

__all__ = [
    "HopOutcome",
    "MACSimBehaviour",
    "next_occurrence",
    "XMACSimBehaviour",
    "DMACSimBehaviour",
    "LMACSimBehaviour",
    "behaviour_for_model",
]
