"""Base class shared by the simulated MAC behaviours.

A behaviour is instantiated from an analytical protocol model plus a concrete
parameter vector, so the simulator and the closed-form model are guaranteed
to describe the same configuration (same wake-up interval, frame length,
slot structure, radio and frame sizes).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.network.packets import PacketModel
from repro.network.radio import RadioModel
from repro.protocols.base import DutyCycledMACModel
from repro.simulation.channel import Channel
from repro.simulation.node import SensorNode


def next_occurrence(now: float, period: float, offset: float) -> float:
    """First time ``>= now`` of the periodic schedule ``offset + k * period``.

    Args:
        now: Current time.
        period: Schedule period (must be positive).
        offset: Phase offset of the schedule.

    Returns:
        The earliest schedule occurrence at or after ``now`` (with a small
        tolerance so an occurrence ``now`` sits exactly on is returned, not
        skipped).

    Raises:
        SimulationError: if the period is not positive.
    """
    if period <= 0:
        raise SimulationError(f"period must be positive, got {period!r}")
    if now <= offset:
        return offset
    cycles = math.ceil((now - offset) / period - 1e-12)
    return offset + cycles * period


@dataclass(frozen=True)
class HopOutcome:
    """Result of planning one hop transmission.

    Attributes:
        transmission_start: Time the sender starts occupying the medium.
        completion: Time at which the packet is fully handed to the receiver
            (queueable at the next hop).
        airtime: Time the medium is reserved around the sender.
    """

    transmission_start: float
    completion: float
    airtime: float

    def __post_init__(self) -> None:
        if self.completion < self.transmission_start:
            raise SimulationError("hop completes before its transmission starts")
        if self.airtime < 0:
            raise SimulationError("airtime must be non-negative")


class MACSimBehaviour(abc.ABC):
    """Simulated counterpart of one :class:`DutyCycledMACModel` configuration.

    Args:
        model: The analytical protocol model (provides scenario and timing
            constants).
        params: The concrete parameter vector to simulate.
        rng: Source of randomness for phases and backoffs.
    """

    name: str = "abstract"

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self._model = model
        self._params = model.coerce(params)
        self._rng = rng
        self._scenario = model.scenario
        self._radio: RadioModel = model.scenario.radio
        self._packets: PacketModel = model.scenario.packets

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> DutyCycledMACModel:
        """The analytical model this behaviour was built from."""
        return self._model

    @property
    def params(self) -> Mapping[str, float]:
        """The simulated parameter vector."""
        return dict(self._params)

    @property
    def radio(self) -> RadioModel:
        """The radio hardware model."""
        return self._radio

    @property
    def rng(self) -> np.random.Generator:
        """The behaviour's random generator."""
        return self._rng

    def backoff(self, scale: float) -> float:
        """A small uniform random backoff in ``[0, scale]`` seconds.

        Args:
            scale: Upper bound of the backoff; non-positive scales yield 0.

        Returns:
            The drawn backoff, consuming one draw from the behaviour's RNG.
        """
        if scale <= 0:
            return 0.0
        return float(self._rng.uniform(0.0, scale))

    # ------------------------------------------------------------------ #
    # Protocol-specific pieces
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def assign_phase(self, node: SensorNode) -> float:
        """Random phase offset of the node's periodic activity (seconds)."""

    @abc.abstractmethod
    def charge_periodic_energy(self, node: SensorNode, horizon: float) -> None:
        """Charge the node's traffic-independent periodic costs over the run.

        These are the costs a node pays even when it never sees a packet
        (channel polls, slot listening, schedule maintenance); they are
        deterministic, so they are charged in closed form instead of being
        simulated event by event.
        """

    @abc.abstractmethod
    def plan_hop(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
        overhearers: Sequence[SensorNode],
    ) -> HopOutcome:
        """Plan (and account for) forwarding one packet from sender to receiver.

        Implementations must:

        * determine when the transmission can actually start (next wake-up /
          slot of the relevant party, medium availability via ``channel``),
        * reserve the medium around the sender for the airtime,
        * charge the transmission/reception energies to the sender's and
          receiver's accounts and overhearing energy to ``overhearers``,
        * return the :class:`HopOutcome` with the completion time.
        """
