"""Duty-cycle MAC kernel shared by the simulated behaviours.

Every duty-cycled MAC simulator is the same machine wearing different
clothes: nodes sleep, wake periodically, sense the channel, contend, exchange
a preamble, a data frame and (usually) an acknowledgement, and pay energy for
each of those states.  This module factors that machine out once:

* :class:`KernelState` — the radio states a behaviour can charge time to,
  each mapped onto a physical :class:`~repro.network.radio.RadioMode`;
* :class:`PeriodicCharge` — one row of the declarative periodic-cost table a
  protocol publishes (channel polls, slot listening, SYNC exchanges), turned
  into closed-form energy by the kernel;
* :class:`MediumGrant` — the hand-off between the medium-acquisition and the
  exchange phases of one hop;
* :class:`DutyCycleKernel` — the state-machine base class: a template
  ``plan_hop`` (acquire → exchange → overhear) plus the shared primitives
  (periodic wakeup scheduling, contention windows, data/ack exchange
  accounting) so a concrete protocol only implements its distinguishing
  transitions (X-MAC strobed preambles, LMAC slot ownership, DMAC staggered
  schedules, SCP-MAC synchronized polling).

A behaviour is instantiated from an analytical protocol model plus a concrete
parameter vector, so the simulator and the closed-form model are guaranteed
to describe the same configuration (same wake-up interval, frame length,
slot structure, radio and frame sizes).
"""

from __future__ import annotations

import abc
import enum
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.network.packets import PacketModel
from repro.network.radio import RadioMode, RadioModel
from repro.protocols.base import DutyCycledMACModel
from repro.simulation.channel import Channel
from repro.simulation.node import SensorNode


def next_occurrence(now: float, period: float, offset: float) -> float:
    """First time ``>= now`` of the periodic schedule ``offset + k * period``.

    Args:
        now: Current time.
        period: Schedule period (must be positive).
        offset: Phase offset of the schedule.

    Returns:
        The earliest schedule occurrence at or after ``now`` (with a small
        tolerance so an occurrence ``now`` sits exactly on is returned, not
        skipped).

    Raises:
        SimulationError: if the period is not positive.
    """
    if period <= 0:
        raise SimulationError(f"period must be positive, got {period!r}")
    if now <= offset:
        return offset
    cycles = math.ceil((now - offset) / period - 1e-12)
    return offset + cycles * period


@dataclass(frozen=True)
class HopOutcome:
    """Result of planning one hop transmission.

    Attributes:
        transmission_start: Time the sender starts occupying the medium.
        completion: Time at which the packet is fully handed to the receiver
            (queueable at the next hop).
        airtime: Time the medium is reserved around the sender.
    """

    transmission_start: float
    completion: float
    airtime: float

    def __post_init__(self) -> None:
        if self.completion < self.transmission_start:
            raise SimulationError("hop completes before its transmission starts")
        if self.airtime < 0:
            raise SimulationError("airtime must be non-negative")


class KernelState(str, enum.Enum):
    """States of the duty-cycle MAC kernel a behaviour can charge time to.

    Each state maps onto one physical radio mode (:data:`STATE_MODES`); the
    split exists so energy is accounted *by cause* — the validation tooling
    compares the per-state breakdown against the analytical decomposition
    (carrier sensing, transmission, reception, overhearing, synchronization).
    """

    #: Periodic channel poll / duty-cycle wake-up carrier sense.
    POLL = "poll"
    #: Carrier-sense contention listening before a transmission.
    CONTEND = "contend"
    #: Preamble transmission (X-MAC strobes, SCP-MAC wakeup tone).
    TX_PREAMBLE = "tx-preamble"
    #: Preamble reception (residual strobe / tone heard after a poll).
    RX_PREAMBLE = "rx-preamble"
    #: Control/SYNC frame transmission (LMAC control section, SCP-MAC SYNC).
    TX_CONTROL = "tx-control"
    #: Control/SYNC frame reception or slot listening.
    RX_CONTROL = "rx-control"
    #: Data frame transmission.
    TX_DATA = "tx-data"
    #: Data frame reception.
    RX_DATA = "rx-data"
    #: Acknowledgement transmission.
    TX_ACK = "tx-ack"
    #: Acknowledgement reception (sender waiting for the ack).
    RX_ACK = "rx-ack"
    #: Overhearing a transmission addressed to somebody else.
    OVERHEAR = "overhear"


#: Kernel state → physical radio mode the time is charged in.
STATE_MODES: Mapping[KernelState, RadioMode] = {
    KernelState.POLL: RadioMode.RX,
    KernelState.CONTEND: RadioMode.RX,
    KernelState.TX_PREAMBLE: RadioMode.TX,
    KernelState.RX_PREAMBLE: RadioMode.RX,
    KernelState.TX_CONTROL: RadioMode.TX,
    KernelState.RX_CONTROL: RadioMode.RX,
    KernelState.TX_DATA: RadioMode.TX,
    KernelState.RX_DATA: RadioMode.RX,
    KernelState.TX_ACK: RadioMode.TX,
    KernelState.RX_ACK: RadioMode.RX,
    KernelState.OVERHEAR: RadioMode.RX,
}


@dataclass(frozen=True)
class PeriodicCharge:
    """One row of a behaviour's traffic-independent periodic cost table.

    The kernel turns each row into closed-form energy:
    ``int(horizon / interval) * multiplier * duration`` seconds in ``state``.
    ``multiplier`` is an integer count per interval (e.g. "listen to N-1
    slot control sections per frame"), kept separate from ``duration`` so
    the closed form multiplies integers before touching floats.

    Attributes:
        state: Kernel state the time is charged in.
        interval: Period of the activity in seconds (one charge per full
            interval that fits in the horizon).
        duration: Radio-on seconds per charged event.
        multiplier: Integer number of events per interval.
        activity: Energy-account label (defaults to the state's value).
    """

    state: KernelState
    interval: float
    duration: float
    multiplier: int = 1
    activity: Optional[str] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SimulationError(
                f"periodic charge interval must be positive, got {self.interval!r}"
            )
        if self.duration < 0 or self.multiplier < 0:
            raise SimulationError("periodic charge duration/multiplier must be >= 0")


@dataclass(frozen=True)
class MediumGrant:
    """Hand-off between the acquisition and exchange phases of one hop.

    Attributes:
        start: Time the sender starts occupying (or strobing toward) the
            medium.
        transmission_start: Time the actual data transmission begins.
        info: Protocol-specific context carried from
            :meth:`DutyCycleKernel.acquire_grant` to
            :meth:`DutyCycleKernel.perform_exchange` (e.g. the receiver's
            poll time, the drawn contention delay).
    """

    start: float
    transmission_start: float
    info: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "info", dict(self.info))
        if self.transmission_start < self.start:
            raise SimulationError("transmission cannot start before the grant")


class MACSimBehaviour(abc.ABC):
    """Simulated counterpart of one :class:`DutyCycledMACModel` configuration.

    Args:
        model: The analytical protocol model (provides scenario and timing
            constants).
        params: The concrete parameter vector to simulate.
        rng: Source of randomness for phases and backoffs.
    """

    name: str = "abstract"

    #: Whether the array-batched engine has a kernel replicating this
    #: behaviour bit-for-bit (see :mod:`repro.simulation.batched`).  The
    #: batched engine falls back to the scalar driver for behaviours that
    #: leave this False, so every protocol keeps working either way.
    supports_batch: bool = False

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self._model = model
        self._params = model.coerce(params)
        self._rng = rng
        self._scenario = model.scenario
        self._radio: RadioModel = model.scenario.radio
        self._packets: PacketModel = model.scenario.packets

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> DutyCycledMACModel:
        """The analytical model this behaviour was built from."""
        return self._model

    @property
    def params(self) -> Mapping[str, float]:
        """The simulated parameter vector."""
        return dict(self._params)

    @property
    def radio(self) -> RadioModel:
        """The radio hardware model."""
        return self._radio

    @property
    def rng(self) -> np.random.Generator:
        """The behaviour's random generator."""
        return self._rng

    def backoff(self, scale: float) -> float:
        """A small uniform random backoff in ``[0, scale]`` seconds.

        Args:
            scale: Upper bound of the backoff; non-positive scales yield 0.

        Returns:
            The drawn backoff, consuming one draw from the behaviour's RNG.
        """
        if scale <= 0:
            return 0.0
        return float(self._rng.uniform(0.0, scale))

    # ------------------------------------------------------------------ #
    # Protocol-specific pieces
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def assign_phase(self, node: SensorNode) -> float:
        """Random phase offset of the node's periodic activity (seconds)."""

    @abc.abstractmethod
    def charge_periodic_energy(self, node: SensorNode, horizon: float) -> None:
        """Charge the node's traffic-independent periodic costs over the run.

        These are the costs a node pays even when it never sees a packet
        (channel polls, slot listening, schedule maintenance); they are
        deterministic, so they are charged in closed form instead of being
        simulated event by event.
        """

    @abc.abstractmethod
    def plan_hop(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
        overhearers: Sequence[SensorNode],
    ) -> HopOutcome:
        """Plan (and account for) forwarding one packet from sender to receiver.

        Implementations must:

        * determine when the transmission can actually start (next wake-up /
          slot of the relevant party, medium availability via ``channel``),
        * reserve the medium around the sender for the airtime,
        * charge the transmission/reception energies to the sender's and
          receiver's accounts and overhearing energy to ``overhearers``,
        * return the :class:`HopOutcome` with the completion time.
        """


class DutyCycleKernel(MACSimBehaviour):
    """State-machine base class of the duty-cycled MAC simulators.

    The kernel owns the pieces every protocol repeats — per-state energy
    accounting (:meth:`charge`), the closed-form periodic cost table
    (:meth:`periodic_charges`), medium acquisition with deferral backoff
    (:meth:`acquire_medium`), contention windows (:meth:`contention_delay`)
    and the data/ack exchange (:meth:`charge_sender_data_ack` /
    :meth:`charge_receiver_data_ack`).  ``plan_hop`` is a fixed template::

        acquire_grant()  ->  perform_exchange()  ->  charge_overhearers()

    and subclasses implement only those transitions.  Kernel subclasses keep
    the original behaviours' arithmetic verbatim, so a run at a given seed
    produces bit-identical traces to the pre-kernel simulators.
    """

    def __init__(
        self,
        model: DutyCycledMACModel,
        params: Mapping[str, float] | Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(model, params, rng)
        radio = self._radio
        packets = self._packets
        #: Shared frame airtimes every duty-cycled protocol exchanges.
        self._data = packets.data_airtime(radio)
        self._ack = packets.ack_airtime(radio)
        #: One data + turnaround + ack exchange once both parties are awake.
        self._exchange = self._data + radio.turnaround_time + self._ack
        #: Cost of one duty-cycle wake-up + clear-channel assessment.
        self._poll_cost = radio.wakeup_time + radio.carrier_sense_time

    # ------------------------------------------------------------------ #
    # Per-state energy accounting
    # ------------------------------------------------------------------ #

    def charge(
        self,
        node: SensorNode,
        state: KernelState,
        start: float,
        duration: float,
        activity: Optional[str] = None,
    ) -> None:
        """Charge ``duration`` seconds of ``state`` to a node's account.

        Args:
            node: The node whose energy account is charged.
            state: The kernel state (maps onto a radio mode).
            start: Interval start time.
            duration: Radio-on seconds (non-negative).
            activity: Energy-account label; defaults to the state's value.
        """
        node.energy.record(
            STATE_MODES[state], start, duration, activity=activity or state.value
        )

    # ------------------------------------------------------------------ #
    # Periodic wakeup/sleep scheduling
    # ------------------------------------------------------------------ #

    def periodic_charges(self) -> Tuple[PeriodicCharge, ...]:
        """The behaviour's traffic-independent periodic cost table.

        Subclasses describe their duty cycle declaratively (one row per
        periodic activity); the kernel's :meth:`charge_periodic_energy`
        turns the table into closed-form energy.  The default is an empty
        table (a protocol with no idle cost).
        """
        return ()

    def charge_periodic_energy(self, node: SensorNode, horizon: float) -> None:
        """Charge the node's periodic cost table in closed form.

        For each :class:`PeriodicCharge` the node pays
        ``int(horizon / interval)`` events of ``multiplier * duration``
        seconds in the row's state — integer counts are multiplied before
        floats so the closed form is bit-identical to an event-by-event sum.
        """
        for row in self.periodic_charges():
            events = int(horizon / row.interval)
            self.charge(
                node,
                row.state,
                0.0,
                events * row.multiplier * row.duration,
                activity=row.activity,
            )

    # ------------------------------------------------------------------ #
    # Medium acquisition and contention
    # ------------------------------------------------------------------ #

    def acquire_medium(
        self,
        sender: SensorNode,
        now: float,
        channel: Channel,
        deferral_backoff: float = 0.0,
    ) -> float:
        """Earliest time the sender sees an idle medium, with deferral backoff.

        Args:
            sender: The transmitting node.
            now: Time the sender wants to transmit.
            channel: The shared medium.
            deferral_backoff: Scale of the random backoff added when the
                medium was busy (0 disables the backoff and draws nothing).

        Returns:
            ``now`` when the medium is idle; otherwise the end of the
            current reservation plus a uniform random backoff in
            ``[0, deferral_backoff]``.
        """
        start = channel.free_at(sender.node_id, now)
        if start > now:
            start += self.backoff(deferral_backoff)
        return start

    def contention_delay(self, window: float) -> float:
        """Delay of one contention round in a window of ``window`` seconds.

        Half the window is spent deterministically (the expected carrier
        sense before the slot boundary), plus a uniform random backoff over
        the other half — one RNG draw per call.
        """
        return 0.5 * window + self.backoff(0.5 * window)

    # ------------------------------------------------------------------ #
    # Preamble / data / ack exchange accounting
    # ------------------------------------------------------------------ #

    def charge_sender_data_ack(
        self, sender: SensorNode, at: float, ack: bool = True
    ) -> None:
        """Charge the sender's side of one data(+ack) exchange.

        Args:
            sender: The transmitting node.
            at: Time the exchange starts (for overlap detection).
            ack: Whether the protocol acknowledges data frames (the sender
                then listens for the ack).
        """
        self.charge(sender, KernelState.TX_DATA, at, self._data, activity="data-tx")
        if ack:
            self.charge(sender, KernelState.RX_ACK, at, self._ack, activity="ack-rx")

    def charge_receiver_data_ack(
        self, receiver: SensorNode, at: float, ack: bool = True
    ) -> None:
        """Charge the receiver's side of one data(+ack) exchange.

        Args:
            receiver: The receiving node.
            at: Time the exchange starts (for overlap detection).
            ack: Whether the receiver answers with an acknowledgement.
        """
        self.charge(receiver, KernelState.RX_DATA, at, self._data, activity="data-rx")
        if ack:
            self.charge(receiver, KernelState.TX_ACK, at, self._ack, activity="ack-tx")

    def charge_receiver_ack(self, receiver: SensorNode, at: float) -> None:
        """Charge only the receiver's acknowledgement transmission.

        Used by protocols whose receive slot listening is already part of
        the periodic cost (DMAC), so only the ack is a per-packet extra.
        """
        self.charge(receiver, KernelState.TX_ACK, at, self._ack, activity="ack-tx")

    # ------------------------------------------------------------------ #
    # The hop template
    # ------------------------------------------------------------------ #

    def plan_hop(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
        overhearers: Sequence[SensorNode],
    ) -> HopOutcome:
        """Plan one hop through the kernel's fixed transition sequence."""
        grant = self.acquire_grant(sender, receiver, now, channel)
        outcome = self.perform_exchange(grant, sender, receiver, channel)
        self.charge_overhearers(grant, outcome, sender, overhearers)
        return outcome

    @abc.abstractmethod
    def acquire_grant(
        self,
        sender: SensorNode,
        receiver: SensorNode,
        now: float,
        channel: Channel,
    ) -> MediumGrant:
        """SLEEP → WAKEUP → CONTEND: when may the sender occupy the medium?

        The protocol's scheduling transition: wait for the relevant party's
        next wake-up / slot / synchronized poll, check medium availability
        (and consume any contention draws), and return the
        :class:`MediumGrant` the exchange transition continues from.
        """

    @abc.abstractmethod
    def perform_exchange(
        self,
        grant: MediumGrant,
        sender: SensorNode,
        receiver: SensorNode,
        channel: Channel,
    ) -> HopOutcome:
        """PREAMBLE → DATA → ACK: reserve the medium and charge both parties.

        The protocol's exchange transition: reserve the medium around the
        sender for the hop's airtime, charge the preamble/data/ack energies
        to the sender's and receiver's accounts, and return the
        :class:`HopOutcome`.
        """

    def charge_overhearers(
        self,
        grant: MediumGrant,
        outcome: HopOutcome,
        sender: SensorNode,
        overhearers: Sequence[SensorNode],
    ) -> None:
        """OVERHEAR: charge neighbours that were awake during the exchange.

        Default: nothing — protocols whose neighbourhood listening is
        already part of the periodic cost table (LMAC) keep this no-op.
        """
