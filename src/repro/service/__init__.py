"""The experiment service: the spec API behind an async job server.

A long-running front end over the declarative pipeline: specs POSTed as
JSON become journaled jobs, a worker pool executes them on the shared
:class:`~repro.store.ResultStore` via the normal
``runner_for(spec, store=...)`` path, and results are served byte-identical
to ``repro run spec.json``.  Start it with ``repro-mac-game serve --store
DIR``; drive it with :class:`ServiceClient`.  See ``docs/service.md``.
"""

from repro.service.client import JobFailedError, ServiceClient, ServiceError
from repro.service.jobs import JOB_STATES, TERMINAL_STATES, Job, JobError, JobQueue
from repro.service.server import API_PREFIX, ExperimentService
from repro.service.workers import WorkerPool

__all__ = [
    "API_PREFIX",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ExperimentService",
    "Job",
    "JobError",
    "JobFailedError",
    "JobQueue",
    "ServiceClient",
    "ServiceError",
    "WorkerPool",
]
