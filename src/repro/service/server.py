"""The experiment service: a stdlib-only HTTP front end over the job queue.

:class:`ExperimentService` wires the persistent pieces together — one
shared :class:`~repro.store.ResultStore`, one journaled
:class:`~repro.service.jobs.JobQueue` (default ``STORE/jobs``), a
:class:`~repro.service.workers.WorkerPool` — and puts a small REST API in
front (``http.server.ThreadingHTTPServer``; no new dependencies):

========  ==========================  =============================================
Method    Path                        Meaning
========  ==========================  =============================================
POST      ``/v1/jobs``                submit a spec (201 new, 200 already known)
GET       ``/v1/jobs/{id}``           job status + progress counters
GET       ``/v1/jobs/{id}/result``    the ResultSet JSON (200 done, 202 pending,
                                      409 failed/cancelled)
DELETE    ``/v1/jobs/{id}``           cancel a queued job
GET       ``/v1/queue``               every job + per-state counts + store stats
GET       ``/v1/healthz``             liveness probe
========  ==========================  =============================================

The result endpoint serves the bytes the worker stored —
:meth:`ResultSet.json_text() <repro.api.results.ResultSet.json_text>`
verbatim — so a POSTed spec answers byte-identically to
``repro run spec.json --out`` on the same store.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro import __version__
from repro.api.spec import ExperimentSpec
from repro.exceptions import ReproError
from repro.service.jobs import JobQueue
from repro.service.workers import WorkerPool
from repro.store import ResultStore

__all__ = ["ExperimentService", "API_PREFIX"]

#: Every route of the API lives under this prefix.
API_PREFIX = "/v1"

_JSON = "application/json"


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the owning service hangs off ``self.server``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/" + __version__

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    @property
    def service(self) -> "ExperimentService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.service.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(self, status: int, body: bytes, content_type: str = _JSON) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        self._send(status, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))

    def _error(self, status: int, message: str, kind: str = "") -> None:
        self._send_json(status, {"error": message, "error_kind": kind})

    def _route(self) -> Tuple[str, str]:
        """``(route, job_id)`` of the request path, with the prefix stripped."""
        path = self.path.split("?", 1)[0].rstrip("/")
        if not path.startswith(API_PREFIX):
            return "", ""
        parts = [part for part in path[len(API_PREFIX):].split("/") if part]
        if parts[:1] == ["jobs"] and len(parts) == 2:
            return "job", parts[1]
        if parts[:1] == ["jobs"] and len(parts) == 3 and parts[2] == "result":
            return "result", parts[1]
        if len(parts) == 1:
            return parts[0], ""
        return "", ""

    # ------------------------------------------------------------------ #
    # Methods
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        route, job_id = self._route()
        if route == "healthz":
            self._send_json(200, self.service.health())
        elif route == "queue":
            self._send_json(200, self.service.queue_snapshot())
        elif route == "job":
            self._get_status(job_id)
        elif route == "result":
            self._get_result(job_id)
        else:
            self._error(404, f"no such route: {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        route, _ = self._route()
        if route != "jobs":
            self._error(404, f"no such route: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            spec = ExperimentSpec.from_dict(payload)
        except (ValueError, TypeError) as error:
            self._error(400, f"request body is not valid JSON: {error}")
            return
        except ReproError as error:
            # The CLI exits EXIT_ERROR (2) on these; the service's analogue
            # is a 400 naming the exception class.
            self._error(400, str(error), type(error).__name__)
            return
        job, created = self.service.queue.submit(spec)
        self._send_json(201 if created else 200, job.summary())

    def do_DELETE(self) -> None:  # noqa: N802
        route, job_id = self._route()
        if route != "job":
            self._error(404, f"no such route: {self.path}")
            return
        queue = self.service.queue
        job = queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id}")
            return
        try:
            self._send_json(200, queue.cancel(job_id).summary())
        except ReproError as error:
            self._error(409, str(error), type(error).__name__)

    def _get_status(self, job_id: str) -> None:
        job = self.service.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id}")
            return
        summary = job.summary()
        summary["store"] = self.service.store_stats()
        self._send_json(200, summary)

    def _get_result(self, job_id: str) -> None:
        queue = self.service.queue
        job = queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id}")
            return
        if job.state in ("queued", "running"):
            self._send_json(202, job.summary())
            return
        if job.state in ("failed", "cancelled"):
            self._error(409, job.error or f"job is {job.state}", job.error_kind)
            return
        text = queue.result_text(job_id)
        if text is None:  # done event journaled but result vanished on disk
            self._error(500, f"result of done job {job_id} is missing")
            return
        self._send(200, text.encode("utf-8"))


class ExperimentService:
    """The assembled service: store + queue + worker pool + HTTP server.

    Args:
        store_dir: Persistent result store shared by every job (created if
            missing).  Opened *before* the queue so a fresh directory is a
            valid store by the time jobs land in it.
        queue_dir: Queue directory (journal + result files).  Defaults to
            ``STORE/jobs`` — the record tree under ``records/`` is not
            touched, so store verify/merge/gc ignore the queue.
        host: Bind address.
        port: Bind port; ``0`` picks a free one (see :attr:`port`).
        workers: Worker threads draining the queue.
        verbose: Log one line per request to stderr.
    """

    def __init__(
        self,
        store_dir: Union[str, Path],
        queue_dir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        verbose: bool = False,
    ) -> None:
        self.verbose = verbose
        self.store = ResultStore(store_dir)
        self.queue = JobQueue(queue_dir or Path(store_dir) / "jobs")
        self.pool = WorkerPool(self.queue, store=self.store, workers=workers)
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """The bound address."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0 was asked)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the API, e.g. ``http://127.0.0.1:8642/v1``."""
        return f"http://{self._host}:{self._port}{API_PREFIX}"

    def health(self) -> Dict[str, object]:
        """The liveness payload of ``GET /v1/healthz``."""
        return {
            "status": "ok",
            "version": __version__,
            "workers": self.pool._count,
            "jobs": self.queue.counts(),
        }

    def store_stats(self) -> Dict[str, int]:
        """Shared-store counters, straight from :meth:`ResultStore.stats`."""
        return self.store.stats().as_dict()

    def queue_snapshot(self) -> Dict[str, object]:
        """The payload of ``GET /v1/queue``."""
        return {
            "counts": self.queue.counts(),
            "jobs": [job.summary() for job in self.queue.jobs()],
            "store": self.store_stats(),
        }

    def start(self) -> None:
        """Bind the socket and start the worker pool + serving thread."""
        if self._httpd is not None:
            return
        httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        httpd.daemon_threads = True
        httpd.service = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._host, self._port = httpd.server_address[0], httpd.server_address[1]
        self.pool.start()
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Block until the server is stopped (the CLI's foreground mode)."""
        if self._thread is not None:
            while self._thread.is_alive():
                self._thread.join(0.5)

    def stop(self) -> None:
        """Stop serving, drain the workers, close the journal."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.pool.stop()
        self.queue.close()

    def __enter__(self) -> "ExperimentService":
        self.start()
        return self

    def __exit__(self, *_: object) -> None:
        self.stop()
