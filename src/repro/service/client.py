"""Thin stdlib client of the experiment service.

:class:`ServiceClient` wraps the REST API with ``urllib.request`` — no new
dependencies — and is what the tests, the CI identity check
(``tools/check_service.py``) and the service benchmark drive the server
with.  The one composite helper, :meth:`ServiceClient.run`, is
submit-poll-fetch: POST a spec, wait for the job to finish, return the
result **bytes** exactly as served (so callers can compare them against a
``repro run`` artifact without re-serializing).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.api.spec import ExperimentSpec
from repro.exceptions import ReproError

__all__ = ["ServiceClient", "ServiceError", "JobFailedError"]


class ServiceError(ReproError):
    """The service answered with an error status.

    Attributes:
        status: The HTTP status code.
        payload: The decoded JSON error body (``error`` / ``error_kind``),
            empty when the body was not JSON.
    """

    def __init__(self, status: int, payload: Mapping[str, object]) -> None:
        message = str(payload.get("error", "")) or f"HTTP {status}"
        super().__init__(f"{message} (HTTP {status})")
        self.status = status
        self.payload = dict(payload)


class JobFailedError(ServiceError):
    """A polled job ended ``failed`` or ``cancelled``."""


class ServiceClient:
    """Talk to one experiment service.

    Args:
        base_url: The API root, e.g. ``http://127.0.0.1:8642/v1`` (a
            trailing slash is tolerated).
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Raw requests
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> Tuple[int, bytes]:
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        ok: Tuple[int, ...] = (200,),
    ) -> Tuple[int, Dict[str, object]]:
        status, raw = self._request(method, path, body)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            payload = {}
        if status not in ok:
            raise ServiceError(status, payload)
        return status, payload

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")[1]

    def queue(self) -> Dict[str, object]:
        """``GET /queue``: all jobs, per-state counts, store stats."""
        return self._json("GET", "/queue")[1]

    def submit(
        self, spec: Union[ExperimentSpec, Mapping[str, object]]
    ) -> Tuple[Dict[str, object], bool]:
        """``POST /jobs``: submit a spec.

        Args:
            spec: An :class:`ExperimentSpec` or its ``to_dict()`` mapping.

        Returns:
            ``(job_summary, created)`` — ``created`` is ``False`` when the
            service already knew the job (idempotent resubmit).

        Raises:
            ServiceError: on a 400 (malformed body or spec).
        """
        if isinstance(spec, ExperimentSpec):
            spec = spec.to_dict()
        body = json.dumps(spec, sort_keys=True).encode("utf-8")
        status, payload = self._json("POST", "/jobs", body, ok=(200, 201))
        return payload, status == 201

    def status(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/{id}``: state, progress counters, store stats."""
        return self._json("GET", f"/jobs/{job_id}")[1]

    def result_bytes(self, job_id: str) -> Optional[bytes]:
        """``GET /jobs/{id}/result``.

        Returns:
            The result bytes when the job is done, ``None`` while it is
            still queued or running (HTTP 202).

        Raises:
            JobFailedError: when the job failed or was cancelled (409).
            ServiceError: on 404/500.
        """
        status, raw = self._request("GET", f"/jobs/{job_id}/result")
        if status == 200:
            return raw
        if status == 202:
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            payload = {}
        if status == 409:
            raise JobFailedError(status, payload)
        raise ServiceError(status, payload)

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        """The decoded ResultSet payload, or ``None`` while pending."""
        raw = self.result_bytes(job_id)
        return None if raw is None else json.loads(raw.decode("utf-8"))

    def cancel(self, job_id: str) -> Dict[str, object]:
        """``DELETE /jobs/{id}``: cancel a queued job."""
        return self._json("DELETE", f"/jobs/{job_id}")[1]

    # ------------------------------------------------------------------ #
    # Composite
    # ------------------------------------------------------------------ #

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_interval: float = 0.05
    ) -> bytes:
        """Poll until the job is done and return the result bytes.

        Raises:
            JobFailedError: when the job failed or was cancelled.
            TimeoutError: when the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        while True:
            raw = self.result_bytes(job_id)
            if raw is not None:
                return raw
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not done within {timeout:.0f}s"
                )
            time.sleep(poll_interval)

    def run(
        self,
        spec: Union[ExperimentSpec, Mapping[str, object]],
        timeout: float = 300.0,
        poll_interval: float = 0.05,
    ) -> bytes:
        """Submit a spec and block until its result is served.

        Returns:
            The result bytes exactly as the server sent them — compare
            against ``repro run spec.json --out`` output directly.
        """
        job, _ = self.submit(spec)
        return self.wait(str(job["job_id"]), timeout, poll_interval)
