"""Worker pool draining the job queue onto the experiment engine.

Each worker is a daemon thread looping ``claim → run → finish/fail``.
Every job runs through :func:`repro.api.engine.runner_for` with the pool's
shared :class:`~repro.store.ResultStore`, so the whole service behaves like
one long-lived warm cache: the first submission of a spec solves it, every
later submission — same spec or one sharing work units — is answered from
the store in O(read), and the status endpoint's ``store_hits``/``misses``/
``puts`` counters come straight from the run metadata.

A worker thread never dies to an exception: :class:`~repro.exceptions.ReproError`
subclasses (infeasible solve, bad spec) *and* unexpected errors both mark
the job ``failed`` (the exception class name is kept for the HTTP mapping)
and the worker claims the next job.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.api import run as run_experiment
from repro.api.engine import runner_for
from repro.service.jobs import Job, JobQueue
from repro.store import ResultStore

__all__ = ["WorkerPool"]

#: Run-metadata keys surfaced as job progress counters.
_PROGRESS_KEYS = (
    "cache_hits",
    "cache_misses",
    "store_hits",
    "store_misses",
    "store_puts",
)

#: How often an idle worker re-checks for shutdown, in seconds.
_CLAIM_TIMEOUT = 0.2


class WorkerPool:
    """Daemon threads executing queued jobs on a shared result store.

    Args:
        queue: The queue to drain.
        store: Persistent store every job's runner reads through and writes
            behind — the reason repeat submissions are answered warm.
            ``None`` runs each job cold (tests only).
        workers: Number of worker threads.
    """

    def __init__(
        self,
        queue: JobQueue,
        store: Optional[ResultStore] = None,
        workers: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._queue = queue
        self._store = store
        self._count = workers
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    @property
    def store(self) -> Optional[ResultStore]:
        """The store shared by every job."""
        return self._store

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self._count):
            thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Ask the workers to finish their current job and join them."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self._queue.claim(timeout=_CLAIM_TIMEOUT)
            if job is None:
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        try:
            runner = runner_for(job.spec, store=self._store)
            result = run_experiment(job.spec, runner=runner)
            progress = {
                "units": len(result.records),
                "ok": len(result.ok_records),
                "failed": len(result.failed_records),
            }
            for key in _PROGRESS_KEYS:
                if key in result.metadata:
                    progress[key] = result.metadata[key]
            self._queue.finish(job.job_id, result.json_text(), progress)
        except Exception as error:  # noqa: BLE001 - a job must never kill its worker
            self._queue.fail(job.job_id, str(error), type(error).__name__)
