"""Durable job queue of the experiment service.

One :class:`JobQueue` owns a directory::

    ROOT/
      jobs.jsonl            # append-only journal of submissions + transitions
      results/<job_id>.json # the finished ResultSet text, one file per job

Jobs are keyed by the spec's existing SHA-256 provenance hash
(:meth:`~repro.api.spec.ExperimentSpec.spec_hash`), which makes submission
idempotent for free: POSTing a spec that is already queued, running or done
returns the existing job instead of executing it again.  A job moves
through the state machine ::

    queued ──▶ running ──▶ done
       │           │
       │           └─────▶ failed
       └─────────────────▶ cancelled

and every transition is appended to the journal (write + flush + fsync)
*after* any artifact it depends on is safely on disk — a ``done`` event is
only journaled once the result file has been published with an atomic
rename.  Restarting a queue replays the journal: finished jobs come back
finished with their results readable, jobs that were ``queued`` or caught
mid-``running`` by a crash are re-queued (the shared result store makes the
re-run incremental), and a torn final line — the signature of a crash
mid-append — is ignored.  ``failed`` and ``cancelled`` are sticky across
restarts; resubmitting such a job re-queues it explicitly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.api.spec import ExperimentSpec
from repro.exceptions import ReproError

__all__ = ["JOB_STATES", "TERMINAL_STATES", "Job", "JobError", "JobQueue"]

#: Every state of the job lifecycle, in documentation order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job only leaves through an explicit resubmission.
TERMINAL_STATES = ("done", "failed", "cancelled")

_JOURNAL_NAME = "jobs.jsonl"
_RESULTS_DIR = "results"


class JobError(ReproError):
    """A queue operation referenced an unknown job or an invalid transition."""


@dataclasses.dataclass
class Job:
    """One submitted experiment and its lifecycle bookkeeping.

    Mutable on purpose: instances live inside a :class:`JobQueue` and are
    only mutated under its lock.  Callers outside the queue should treat a
    returned job as a snapshot and use :meth:`summary` for reporting.

    Attributes:
        job_id: The spec's SHA-256 provenance hash.
        spec: The submitted experiment spec.
        state: Current state, one of :data:`JOB_STATES`.
        submitted_at: Unix time of the first submission.
        started_at: Unix time the last execution attempt began, if any.
        finished_at: Unix time the job reached a terminal state, if any.
        attempts: Number of times the job entered ``running``.
        error: Human-readable reason when the job failed.
        error_kind: Exception class name of the failure (what the HTTP
            layer maps to a status code).
        progress: Engine counters of the finished run (unit counts plus
            the cache/store hit/miss/put deltas from the run metadata).
    """

    job_id: str
    spec: ExperimentSpec
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: str = ""
    error_kind: str = ""
    progress: Dict[str, object] = dataclasses.field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """JSON-ready description used by the status and queue endpoints."""
        return {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "error_kind": self.error_kind,
            "progress": dict(self.progress),
        }


class JobQueue:
    """Disk-journaled FIFO queue of experiment jobs, safe across threads.

    Args:
        root: Queue directory (created if missing).  An existing journal is
            replayed before the queue accepts new work; see the module
            docstring for the replay rules.

    Raises:
        JobError: when the journal contains a structurally broken non-final
            line (a torn *final* line is tolerated as a crash artifact).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._results = self._root / _RESULTS_DIR
        self._results.mkdir(exist_ok=True)
        self._journal_path = self._root / _JOURNAL_NAME
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._requeued = self._replay()
        self._journal = open(self._journal_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Journal
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Path:
        """The queue's directory."""
        return self._root

    @property
    def requeued(self) -> int:
        """Jobs the last journal replay put back into ``queued``."""
        return self._requeued

    def _append(self, event: Mapping[str, object]) -> None:
        """Durably append one journal event (caller holds the lock)."""
        self._journal.write(json.dumps(event, sort_keys=True) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _replay(self) -> int:
        """Rebuild the in-memory table from the journal; return requeues."""
        if not self._journal_path.exists():
            return 0
        lines = self._journal_path.read_text(encoding="utf-8").splitlines()
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError:
                if number == len(lines) - 1:
                    break  # torn final line: the crash interrupted an append
                raise JobError(
                    f"corrupt journal line {number + 1} in {self._journal_path}"
                ) from None
            self._apply(event, number + 1)
        requeued = 0
        for job in self._jobs.values():
            interrupted = job.state == "running"
            lost_result = job.state == "done" and not self._result_path(
                job.job_id
            ).exists()
            if interrupted or lost_result:
                job.state = "queued"
                requeued += 1
        return requeued

    def _apply(self, event: Mapping[str, object], line: int) -> None:
        """Apply one replayed journal event to the in-memory table."""
        kind = event.get("event")
        job_id = str(event.get("job_id", ""))
        if kind == "submit":
            try:
                spec = ExperimentSpec.from_dict(event["spec"])
            except (KeyError, ReproError) as error:
                raise JobError(
                    f"unreplayable submit on journal line {line}: {error}"
                ) from None
            if job_id not in self._jobs:
                self._order.append(job_id)
            self._jobs[job_id] = Job(
                job_id=job_id,
                spec=spec,
                submitted_at=float(event.get("at", 0.0)),
            )
        elif kind == "state":
            job = self._jobs.get(job_id)
            if job is None:
                raise JobError(
                    f"journal line {line} transitions unknown job {job_id[:12]}…"
                )
            job.state = str(event.get("state", job.state))
            if job.state == "running":
                job.attempts += 1
                job.started_at = float(event.get("at", 0.0))
            elif job.state in TERMINAL_STATES:
                job.finished_at = float(event.get("at", 0.0))
            job.error = str(event.get("error", ""))
            job.error_kind = str(event.get("error_kind", ""))
            progress = event.get("progress")
            if isinstance(progress, dict):
                job.progress = dict(progress)
        else:
            raise JobError(f"unknown journal event {kind!r} on line {line}")

    def _transition(self, job: Job, state: str, **extra: object) -> None:
        """Journal and apply one state change (caller holds the lock)."""
        now = time.time()
        job.state = state
        if state == "running":
            job.attempts += 1
            job.started_at = now
        elif state in TERMINAL_STATES:
            job.finished_at = now
        self._append({"event": "state", "job_id": job.job_id, "state": state,
                      "at": now, **extra})

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    def submit(self, spec: ExperimentSpec) -> Tuple[Job, bool]:
        """Enqueue a spec, deduplicated by its provenance hash.

        Args:
            spec: The experiment to run.  The job id is ``spec.spec_hash()``
                (runtime policy excluded), so two submissions that differ
                only in workers/cache/engine share one job — the first
                submission's runtime policy is the one that executes.

        Returns:
            ``(job, created)``.  ``created`` is ``False`` when the spec was
            already queued, running or done (idempotent resubmit) — a
            ``failed`` or ``cancelled`` job is re-queued instead, keeping
            its id and attempt count.
        """
        job_id = spec.spec_hash()
        with self._has_work:
            job = self._jobs.get(job_id)
            if job is not None:
                if job.state in ("failed", "cancelled"):
                    job.error = ""
                    job.error_kind = ""
                    job.progress = {}
                    job.finished_at = None
                    self._transition(job, "queued")
                    self._has_work.notify()
                return job, False
            job = Job(job_id=job_id, spec=spec, submitted_at=time.time())
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._append({"event": "submit", "job_id": job_id,
                          "spec": spec.to_dict(), "at": job.submitted_at})
            self._has_work.notify()
            return job, True

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job.

        Args:
            job_id: The job to cancel.

        Returns:
            The cancelled job.

        Raises:
            JobError: when the job is unknown, already terminal, or
                running (the worker pool does not preempt a solve in
                flight; let it finish or restart the service).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id}")
            if job.state != "queued":
                raise JobError(
                    f"job {job_id[:12]}… is {job.state}; only queued jobs "
                    "can be cancelled"
                )
            self._transition(job, "cancelled")
            return job

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Move the oldest queued job to ``running`` and return it.

        Args:
            timeout: Seconds to block waiting for work; ``None`` waits
                forever.

        Returns:
            The claimed job, or ``None`` when the timeout expired with the
            queue empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._has_work:
            while True:
                for job_id in self._order:
                    job = self._jobs[job_id]
                    if job.state == "queued":
                        self._transition(job, "running")
                        return job
                if deadline is None:
                    self._has_work.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._has_work.wait(remaining)

    def finish(self, job_id: str, result_text: str,
               progress: Optional[Mapping[str, object]] = None) -> Job:
        """Publish a running job's result and mark it ``done``.

        The result file is staged and atomically renamed *before* the
        ``done`` event hits the journal, so a replayed ``done`` always has
        its result readable (and a crash between the two re-queues the job
        instead of serving nothing).

        Args:
            job_id: The running job.
            result_text: The ResultSet's canonical JSON text
                (:meth:`repro.api.results.ResultSet.json_text`), served
                verbatim by the result endpoint.
            progress: Final engine counters to surface on the status
                endpoint.

        Returns:
            The finished job.

        Raises:
            JobError: when the job is unknown or not running.
        """
        with self._lock:
            job = self._require_running(job_id, "finish")
            path = self._result_path(job_id)
            handle, staging = tempfile.mkstemp(
                prefix=f"{job_id[:12]}.", suffix=".tmp", dir=self._results
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    stream.write(result_text)
                    stream.flush()
                    os.fsync(stream.fileno())
                os.replace(staging, path)
            except BaseException:
                try:
                    os.unlink(staging)
                except OSError:
                    pass
                raise
            job.progress = dict(progress or {})
            self._transition(job, "done", progress=job.progress)
            return job

    def fail(self, job_id: str, error: str, error_kind: str = "") -> Job:
        """Mark a running job ``failed`` with a reason.

        Args:
            job_id: The running job.
            error: Human-readable failure reason.
            error_kind: Exception class name (drives the HTTP mapping).

        Returns:
            The failed job.

        Raises:
            JobError: when the job is unknown or not running.
        """
        with self._lock:
            job = self._require_running(job_id, "fail")
            job.error = error
            job.error_kind = error_kind
            self._transition(job, "failed", error=error, error_kind=error_kind)
            return job

    def _require_running(self, job_id: str, verb: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job {job_id}")
        if job.state != "running":
            raise JobError(f"cannot {verb} job {job_id[:12]}… in state {job.state}")
        return job

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def get(self, job_id: str) -> Optional[Job]:
        """The job under ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (every state present, zeros included)."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    def _result_path(self, job_id: str) -> Path:
        return self._results / f"{job_id}.json"

    def result_text(self, job_id: str) -> Optional[str]:
        """The stored result text of a ``done`` job, or ``None``."""
        try:
            return self._result_path(job_id).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def close(self) -> None:
        """Flush and close the journal handle (the queue becomes read-only)."""
        with self._lock:
            if not self._journal.closed:
                self._journal.flush()
                self._journal.close()
