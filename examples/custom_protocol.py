"""Apply the game framework to a protocol that is not in the paper.

The framework is protocol-agnostic: anything that can express its bottleneck
energy and end-to-end delay as functions of a tunable parameter vector can be
dropped into the same Nash bargaining machinery.  This example defines a toy
"Beacon-MAC" (receiver-initiated: receivers advertise their wake-ups with
beacons, senders wait for the next beacon of their parent), registers it with
``register_protocol(..., overwrite=True)`` (safe to re-run in a notebook),
and solves the game for it alongside X-MAC through the declarative
experiment pipeline — the registry is what makes a user-defined name valid
in an :class:`~repro.api.spec.ExperimentSpec`'s ``protocols`` field.

Run with::

    python examples/custom_protocol.py
"""

from __future__ import annotations

from functools import cached_property

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, run
from repro.core.parameters import Parameter, ParameterSpace
from repro.protocols.base import DutyCycledMACModel, EnergyBreakdown
from repro.protocols.registry import register_protocol, unregister_protocol


class BeaconMACModel(DutyCycledMACModel):
    """Receiver-initiated duty-cycled MAC (in the spirit of RI-MAC / A-MAC).

    Tunable parameter: the beacon interval ``Tb``.  Receivers wake every
    ``Tb`` and transmit a short beacon; a sender stays awake from the moment
    it has a packet until it hears its parent's beacon (``Tb / 2`` on
    average, spent *listening* rather than strobing), then exchanges data and
    acknowledgement.
    """

    name = "Beacon-MAC"
    family = "receiver-initiated"

    BEACON_INTERVAL = "beacon_interval"

    @cached_property
    def parameter_space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                Parameter(
                    name=self.BEACON_INTERVAL,
                    lower=0.02,
                    upper=min(5.0, self.scenario.sampling_period),
                    unit="s",
                    description="receiver beacon interval Tb",
                )
            ]
        )

    def _beacon_interval(self, params) -> float:
        return self.coerce(params)[self.BEACON_INTERVAL]

    def energy_breakdown(self, params, ring: int) -> EnergyBreakdown:
        beacon = self._beacon_interval(params)
        radio = self.scenario.radio
        packets = self.scenario.packets
        traffic = self.traffic.ring_traffic(ring)
        beacon_airtime = packets.strobe_airtime(radio)
        data = packets.data_airtime(radio)
        ack = packets.ack_airtime(radio)

        carrier_sense = (radio.wakeup_time + beacon_airtime) * radio.power_tx / beacon
        transmit = traffic.output * (0.5 * beacon * radio.power_rx + data * radio.power_tx + ack * radio.power_rx)
        receive = traffic.input * (data * radio.power_rx + ack * radio.power_tx)
        overhear = traffic.background * beacon_airtime * radio.power_rx
        sleep = radio.power_sleep * max(0.0, 1.0 - self.duty_cycle(params, ring))
        return EnergyBreakdown(
            carrier_sense=carrier_sense,
            transmit=transmit,
            receive=receive,
            overhear=overhear,
            sleep=sleep,
        )

    def hop_latency(self, params, ring: int) -> float:
        del ring
        beacon = self._beacon_interval(params)
        packets = self.scenario.packets
        radio = self.scenario.radio
        return 0.5 * beacon + packets.hop_exchange_time(radio)

    def duty_cycle(self, params, ring: int) -> float:
        beacon = self._beacon_interval(params)
        traffic = self.traffic.ring_traffic(ring)
        packets = self.scenario.packets
        radio = self.scenario.radio
        awake = (
            (radio.wakeup_time + packets.strobe_airtime(radio)) / beacon
            + traffic.output * (0.5 * beacon + packets.hop_exchange_time(radio))
            + traffic.input * packets.hop_exchange_time(radio)
        )
        return min(1.0, awake)

    def capacity_margin(self, params) -> float:
        beacon = self._beacon_interval(params)
        traffic = self.traffic.ring_traffic(self.scenario.topology.bottleneck_ring)
        packets = self.scenario.packets
        radio = self.scenario.radio
        busy = (traffic.output + traffic.input) * (0.5 * beacon + packets.hop_exchange_time(radio))
        return self.max_utilization - busy


def main() -> None:
    # ``overwrite=True`` makes the registration idempotent, so re-running
    # the script (or a notebook cell) never trips over the previous run.
    register_protocol("beaconmac", BeaconMACModel, overwrite=True)
    try:
        # The registered name is now a valid spec protocol: one declarative
        # description, planned and executed like any built-in workload.
        spec = (
            ExperimentSpec.experiment("solve", name="beacon-mac-demo")
            .with_scenario({"depth": 5, "density": 8, "sampling_period": 300.0})
            .with_protocols("xmac", "beaconmac")
            .with_requirements(energy_budget=0.06, max_delay=2.0)
            .with_solver(grid_points=80)
        )
        result = run(spec)
        rows = [
            {
                "protocol": record.value.protocol,
                "E_best [mW]": record.value.energy_best * 1000.0,
                "E_worst [mW]": record.value.energy_worst * 1000.0,
                "E* [mW]": record.value.energy_star * 1000.0,
                "L* [ms]": record.value.delay_star * 1000.0,
                "fairness": record.value.bargaining.fairness_residual,
            }
            for record in result
        ]
        print(format_table(rows, precision=4))
        print()
        print(f"# spec sha256: {result.provenance[:16]}…")
        print(
            "Beacon-MAC trades the sender's strobing for idle listening: the game "
            "framework prices both and finds each protocol's own fair operating point."
        )
    finally:
        unregister_protocol("beaconmac")


if __name__ == "__main__":
    main()
