"""Quickstart: solve the energy-delay game for one protocol.

Run with::

    python examples/quickstart.py

The script builds the default scenario (5 rings, 8 neighbours, one reading
per node every 5 minutes on a CC2420-class radio), binds an X-MAC model to
it, and solves the cooperative game between the Energy player and the Delay
player for an application that allows at most 0.06 J/s per node and 2 seconds
of end-to-end delay.
"""

from __future__ import annotations

from repro import ApplicationRequirements, EnergyDelayGame
from repro.analysis.reporting import format_table
from repro.protocols import XMACModel
from repro.scenario import default_scenario


def main() -> None:
    scenario = default_scenario()
    model = XMACModel(scenario)
    requirements = ApplicationRequirements(
        energy_budget=0.06,  # J consumed per second of operation (radio power)
        max_delay=2.0,  # seconds, end-to-end
        sampling_rate=scenario.sampling_rate,
    )

    game = EnergyDelayGame(model, requirements)
    solution = game.solve()

    print(f"Scenario: {scenario.describe()}")
    print(f"Protocol: {model.name} ({model.family})")
    print()
    rows = [
        {
            "point": "energy optimum (P1)",
            "E [J/s]": solution.energy_best,
            "L [ms]": solution.delay_worst * 1000.0,
            "parameters": dict(solution.energy_optimum.point.parameters),
        },
        {
            "point": "delay optimum (P2)",
            "E [J/s]": solution.energy_worst,
            "L [ms]": solution.delay_best * 1000.0,
            "parameters": dict(solution.delay_optimum.point.parameters),
        },
        {
            "point": "Nash bargaining (P4)",
            "E [J/s]": solution.energy_star,
            "L [ms]": solution.delay_star * 1000.0,
            "parameters": dict(solution.bargaining.point.parameters),
        },
    ]
    print(format_table(rows))
    print()
    print(f"Nash product: {solution.bargaining.nash_product:.3e}")
    print(f"Proportional-fairness residual: {solution.bargaining.fairness_residual:+.4f}")
    lifetime = model.lifetime_days(solution.bargaining.point.parameters)
    print(f"Estimated bottleneck-node lifetime at the agreed point: {lifetime:.0f} days")


if __name__ == "__main__":
    main()
