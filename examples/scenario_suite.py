"""Scenario suite: the bargaining game across many environments at once.

Run with::

    python examples/scenario_suite.py

The script runs every (scenario × protocol) pair of the scenario library
through the process-pool batch runner, prints the resulting grid of Nash
bargaining agreements, and then shows the extension point: registering a
deployment-specific scenario preset and running the suite over it.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.runtime import build_runner
from repro.scenario import Scenario
from repro.network.topology import RingTopology
from repro.scenarios import (
    ScenarioPreset,
    ScenarioSuite,
    register_scenario_preset,
    scenario_presets,
    unregister_scenario_preset,
)


def run_library_suite() -> None:
    """Every registered scenario × every protocol, on 4 worker processes."""
    suite = ScenarioSuite(
        runner=build_runner(workers=4),
        grid_points_per_dimension=40,  # coarse grid: the SLSQP polish refines it
    )
    print(
        f"Running {len(suite.presets)} scenarios × {len(suite.protocols)} protocols "
        f"= {suite.pair_count} games ..."
    )
    result = suite.run()
    print(format_table(result.rows()))
    print(f"runner: {result.runner_description}; "
          f"{len(result.feasible_cells)}/{len(result.cells)} pairs feasible")


def run_custom_preset() -> None:
    """Register a deployment-specific preset and run the suite over it."""
    preset = ScenarioPreset(
        name="greenhouse",
        title="Greenhouse monitoring (3 rings, damp sub-GHz channel)",
        description=(
            "A small, dense indoor deployment sampled once per minute; "
            "short paths keep latency low even with long wake-up intervals."
        ),
        scenario=Scenario(
            topology=RingTopology(depth=3, density=10),
            sampling_rate=1.0 / 60.0,
        ),
        energy_budget=0.08,
        max_delay=2.0,
        tags=("example", "custom"),
    )
    register_scenario_preset(preset)
    try:
        result = ScenarioSuite(
            scenarios=("greenhouse",),
            protocols=("xmac", "dmac"),
            grid_points_per_dimension=40,
        ).run()
        print()
        print("Custom preset:")
        print(format_table(result.rows()))
    finally:
        unregister_scenario_preset("greenhouse")


def main() -> None:
    print(f"Scenario library: {', '.join(p.name for p in scenario_presets())}")
    print()
    run_library_suite()
    run_custom_preset()


if __name__ == "__main__":
    main()
