"""Reproduce the paper's Figure 1 and Figure 2 series.

Run with::

    python examples/reproduce_figures.py [--quick]

For every protocol (X-MAC, DMAC, LMAC) and every requirement value the script
prints the corner points ``(Ebest, Lworst)`` / ``(Eworst, Lbest)`` and the
Nash bargaining trade-off point ``(E*, L*)`` — the series plotted in the
paper's figures — and writes them to ``figure1.csv`` / ``figure2.csv``.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table, write_csv
from repro.experiments.figure1 import figure1_rows, reproduce_figure1
from repro.experiments.figure2 import figure2_rows, reproduce_figure2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use a coarser solver grid and fewer sweep points (finishes in seconds)",
    )
    parser.add_argument("--output-prefix", default="figure", help="CSV output prefix")
    args = parser.parse_args()

    grid = 30 if args.quick else 60
    delay_bounds = (1.0, 3.0, 6.0) if args.quick else (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
    energy_budgets = (0.01, 0.03, 0.06) if args.quick else (0.01, 0.02, 0.03, 0.04, 0.05, 0.06)

    print("=== Figure 1: E-L trade-off, Ebudget = 0.06 J, Lmax swept ===")
    figure1 = reproduce_figure1(delay_bounds=delay_bounds, grid_points_per_dimension=grid)
    rows1 = figure1_rows(figure1)
    print(format_table(rows1))
    path1 = write_csv(rows1, f"{args.output_prefix}1.csv")
    print(f"(wrote {path1})\n")

    print("=== Figure 2: E-L trade-off, Lmax = 6 s, Ebudget swept ===")
    figure2 = reproduce_figure2(energy_budgets=energy_budgets, grid_points_per_dimension=grid)
    rows2 = figure2_rows(figure2)
    print(format_table(rows2))
    path2 = write_csv(rows2, f"{args.output_prefix}2.csv")
    print(f"(wrote {path2})\n")

    print("Qualitative checks (the paper's headline observations):")
    for name, sweep in figure1.items():
        stars = [solution.energy_star for solution in sweep.solutions]
        monotone = all(later <= earlier + 1e-12 for earlier, later in zip(stars, stars[1:]))
        print(
            f"  - {name}: relaxing Lmax moves the agreement toward the energy player: "
            f"{'yes' if monotone else 'NO'}"
        )
    for name, sweep in figure2.items():
        stars = [solution.delay_star for solution in sweep.solutions]
        monotone = all(later <= earlier + 1e-12 for earlier, later in zip(stars, stars[1:]))
        print(
            f"  - {name}: raising Ebudget moves the agreement toward the delay player: "
            f"{'yes' if monotone else 'NO'}"
        )


if __name__ == "__main__":
    main()
