"""Compare MAC protocols for a concrete application: road-tunnel monitoring.

The paper's introduction motivates the framework with applications such as
adaptive lighting in road tunnels (Ceriotti et al., IPSN 2011): nodes report
periodically, the network must live for years on batteries, yet control loops
need bounded reporting latency.  This example uses the framework the way a
system designer would: given the application requirements, solve the game for
every protocol (including SCP-MAC, which the paper does not evaluate), and
compare the agreed operating points and the resulting node lifetimes.

Run with::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro import ApplicationRequirements, EnergyDelayGame
from repro.analysis.reporting import format_table
from repro.network.topology import RingTopology
from repro.protocols.registry import available_protocols, create_protocol
from repro.scenario import Scenario


def main() -> None:
    # Tunnel deployment: a long, shallow network (many nodes, few hops to the
    # closest gateway), one light/traffic reading per node every 2 minutes.
    scenario = Scenario(
        topology=RingTopology(depth=4, density=10),
        sampling_rate=1.0 / 120.0,
    )
    requirements = ApplicationRequirements(
        energy_budget=0.01,  # keep average radio power at 10 mW or below
        max_delay=1.5,  # control loop tolerates 1.5 s of reporting latency
        sampling_rate=scenario.sampling_rate,
    )

    print("Tunnel-monitoring scenario:", scenario.describe())
    print("Requirements:", requirements.describe())
    print()

    rows = []
    for name in available_protocols():
        model = create_protocol(name, scenario)
        game = EnergyDelayGame(model, requirements, grid_points_per_dimension=60)
        try:
            solution = game.solve()
        except Exception as error:  # infeasible for this protocol
            rows.append(
                {
                    "protocol": model.name,
                    "feasible": "no",
                    "E* [mW]": float("nan"),
                    "L* [ms]": float("nan"),
                    "lifetime [days]": float("nan"),
                    "agreed parameters": str(error)[:40] + "...",
                }
            )
            continue
        lifetime = model.lifetime_days(solution.bargaining.point.parameters)
        rows.append(
            {
                "protocol": model.name,
                "feasible": "yes",
                "E* [mW]": solution.energy_star * 1000.0,
                "L* [ms]": solution.delay_star * 1000.0,
                "lifetime [days]": lifetime,
                "agreed parameters": dict(solution.bargaining.point.parameters),
            }
        )
    print(format_table(rows, precision=4))
    print()
    feasible = [row for row in rows if row["feasible"] == "yes"]
    if feasible:
        best = min(feasible, key=lambda row: row["E* [mW]"])
        print(
            f"Recommendation: {best['protocol']} — lowest agreed energy "
            f"({best['E* [mW]']:.2f} mW) while meeting the 1.5 s latency requirement."
        )


if __name__ == "__main__":
    main()
