"""Validate the analytical protocol models against the packet-level simulator.

The paper's framework rests on closed-form energy and delay models; this
example checks them against the discrete-event simulator on the same
configuration (same topology, traffic, radio and MAC parameters), the way an
experimental section would.

Run with::

    python examples/simulation_validation.py [--horizon 4000]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.analysis.validation import validate_protocol
from repro.network.topology import RingTopology
from repro.protocols import DMACModel, LMACModel, XMACModel
from repro.scenario import Scenario
from repro.simulation import SimulationConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=float, default=4000.0, help="simulated seconds")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    scenario = Scenario(
        topology=RingTopology(depth=4, density=6),
        sampling_rate=1.0 / 600.0,
    )
    config = SimulationConfig(horizon=args.horizon, seed=args.seed)

    cases = [
        (XMACModel(scenario), {"wakeup_interval": 0.4}),
        (DMACModel(scenario), {"frame_length": 1.0}),
        (LMACModel(scenario), {"slot_length": 0.02, "slot_count": 13.0}),
    ]

    rows = []
    for model, params in cases:
        report = validate_protocol(model, params, config)
        rows.append(
            {
                "protocol": report.protocol,
                "E model [mW]": report.analytical_energy * 1000.0,
                "E sim [mW]": report.simulated_energy * 1000.0,
                "E error": f"{report.energy_error:.1%}",
                "L model [ms]": report.analytical_delay * 1000.0,
                "L sim [ms]": report.simulated_delay * 1000.0,
                "L error": f"{report.delay_error:.1%}",
                "delivery": f"{report.delivery_ratio:.1%}",
            }
        )
    print(f"Scenario: {scenario.describe()}")
    print(f"Horizon: {args.horizon:.0f} s, seed {args.seed}")
    print()
    print(format_table(rows, precision=4))
    print()
    print(
        "Energy of the bottleneck ring and end-to-end delay of the outermost ring\n"
        "agree with the closed-form models to within the tolerances recorded in\n"
        "EXPERIMENTS.md (energy within ~10%, delay within ~25% under unsaturated load)."
    )


if __name__ == "__main__":
    main()
