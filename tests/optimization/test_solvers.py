"""Unit tests for the optimization substrate (grid, SLSQP, hybrid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import Parameter, ParameterSpace
from repro.exceptions import SolverError
from repro.optimization import (
    grid_search,
    hybrid_solve,
    multistart_slsqp,
    slsqp_solve,
    weighted_sum_scan,
)


@pytest.fixture
def box_2d() -> ParameterSpace:
    return ParameterSpace([Parameter("x", -2.0, 2.0), Parameter("y", -2.0, 2.0)])


@pytest.fixture
def box_1d() -> ParameterSpace:
    return ParameterSpace([Parameter("x", 0.1, 10.0)])


def quadratic(point: np.ndarray) -> float:
    return float((point[0] - 1.0) ** 2 + (point[1] + 0.5) ** 2)


def u_shaped(point: np.ndarray) -> float:
    # The classic preamble-sampling energy shape a/x + b*x.
    return float(0.5 / point[0] + 2.0 * point[0])


class TestGridSearch:
    def test_unconstrained_quadratic(self, box_2d):
        result = grid_search(quadratic, box_2d, points_per_dimension=81)
        assert result.feasible
        assert np.allclose(result.x, [1.0, -0.5], atol=0.06)

    def test_constraint_respected(self, box_2d):
        result = grid_search(
            quadratic, box_2d, constraints=[lambda p: -0.0 - p[0]], points_per_dimension=81
        )
        assert result.feasible
        assert result.x[0] <= 1e-9

    def test_maximize_flag(self, box_1d):
        result = grid_search(lambda p: -u_shaped(p), box_1d, maximize=True, points_per_dimension=300)
        assert result.value == pytest.approx(-2.0, rel=1e-2)

    def test_infeasible_problem_reported(self, box_1d):
        result = grid_search(u_shaped, box_1d, constraints=[lambda p: -1.0], points_per_dimension=10)
        assert not result.feasible
        assert result.constraint_violation == pytest.approx(1.0)

    def test_all_nan_objective_raises(self, box_1d):
        with pytest.raises(SolverError):
            grid_search(lambda p: float("nan"), box_1d, points_per_dimension=5)


class TestSLSQP:
    def test_polishes_to_high_precision(self, box_2d):
        result = slsqp_solve(quadratic, box_2d, start=np.array([0.0, 0.0]))
        assert result.feasible
        assert np.allclose(result.x, [1.0, -0.5], atol=1e-5)

    def test_respects_inequality_constraint(self, box_2d):
        result = slsqp_solve(
            quadratic, box_2d, constraints=[lambda p: 0.5 - p[0]], start=np.array([0.0, 0.0])
        )
        assert result.x[0] <= 0.5 + 1e-6

    def test_multistart_escapes_bad_start(self, box_1d):
        result = multistart_slsqp(u_shaped, box_1d, random_starts=4, seed=1)
        assert result.feasible
        assert result.x[0] == pytest.approx(0.5, rel=1e-3)
        assert result.value == pytest.approx(2.0, rel=1e-3)


class TestHybrid:
    def test_matches_analytic_minimum_of_u_shape(self, box_1d):
        result = hybrid_solve(u_shaped, box_1d, grid_points_per_dimension=60)
        assert result.feasible
        assert result.x[0] == pytest.approx(0.5, rel=1e-3)

    def test_constrained_minimum_on_boundary(self, box_1d):
        # Constrain x >= 2: the unconstrained optimum 0.5 becomes infeasible.
        result = hybrid_solve(
            u_shaped, box_1d, constraints=[lambda p: p[0] - 2.0], grid_points_per_dimension=60
        )
        assert result.feasible
        assert result.x[0] == pytest.approx(2.0, rel=1e-3)

    def test_maximize_concave_log(self, box_1d):
        result = hybrid_solve(
            lambda p: float(np.log(p[0]) + np.log(10.0 - p[0])),
            box_1d,
            maximize=True,
            grid_points_per_dimension=60,
        )
        assert result.x[0] == pytest.approx(5.0, rel=1e-2)

    def test_reports_infeasibility_instead_of_raising(self, box_1d):
        result = hybrid_solve(u_shaped, box_1d, constraints=[lambda p: -1.0])
        assert not result.feasible


class TestWeightedSum:
    def test_scan_traces_a_tradeoff(self, box_1d):
        # first objective favours small x, second favours large x.
        points = weighted_sum_scan(
            lambda p: float(p[0]),
            lambda p: float(10.0 - p[0]),
            box_1d,
            weights=[0.0, 0.5, 1.0],
            grid_points_per_dimension=40,
        )
        assert len(points) == 3
        # Full weight on the first objective drives x to its minimum and
        # full weight on the second drives it to its maximum.
        assert points[-1].first <= points[0].first
        assert points[0].second <= points[-1].second

    def test_invalid_weight_rejected(self, box_1d):
        with pytest.raises(SolverError):
            weighted_sum_scan(
                lambda p: float(p[0]), lambda p: float(-p[0]), box_1d, weights=[1.5]
            )
