"""Differential harness: the adaptive grid stage is identical to exhaustive.

The adaptive solver (:mod:`repro.optimization.adaptive`) is only allowed to
exist because it changes *nothing*: at every resolution it must return the
exact :class:`~repro.optimization.result.SolverResult` the exhaustive
:func:`~repro.optimization.grid.grid_search` returns — same argmin point,
same tie-break, same feasibility verdict, same nominal evaluation count —
while actually evaluating a fraction of the grid.  This module enforces
that four ways:

* a seeded fuzzer sweeps the **full matrix** — every scenario preset ×
  every protocol (xmac, lmac, dmac, scpmac) × every problem (P1 energy,
  P2 delay, P4 Nash) × fuzzed requirement points and grid sizes (odd and
  even, down to degenerate) — as ~200 cases; the first :data:`FAST_CASES`
  run in tier-1 (covering all protocols and problems), the full sweep is
  marked ``slow``;
* full-game identity: ``EnergyDelayGame`` solved with
  ``method="adaptive"`` returns a ``GameSolution`` *equal* to the
  exhaustive one, for every protocol;
* artifact identity, mirroring the batched-engine precedent: the solver
  method is runtime provenance — spec hashes match, result rows match,
  campaign spec dicts exclude the knob, and a warm replay (no work
  counters) writes bytes identical to a cold adaptive run;
* edge cases: unknown methods and malformed knobs are rejected with named
  errors, infeasible-everywhere games report identical least-violation
  answers, and no-finite-point grids raise the identical ``SolverError``.

Floats are compared with ``==`` and reported in ``float.hex`` so a one-ulp
drift is visible.  Failing tuples are appended to :data:`FAILURE_LOG`
(``solver-failures.txt``) with a one-line repro command so CI can upload
them as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api.engine import run as run_experiment
from repro.api.spec import SOLVER_METHOD_KEYS, ExperimentSpec
from repro.core.problems import (
    DelayMinimizationProblem,
    EnergyMinimizationProblem,
    NashBargainingProblem,
)
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import ConfigurationError, SolverError
from repro.optimization import adaptive_grid_search, batched, grid_search
from repro.protocols.registry import create_protocol
from repro.scenarios.presets import scenario_preset, scenario_presets
from repro.validation.campaign import CampaignSpec

PROTOCOLS = ("dmac", "lmac", "scpmac", "xmac")
PROBLEMS = ("P1", "P2", "P4")
METHODS = ("exhaustive", "adaptive")

#: Fields of SolverResult compared bit-for-bit (``work`` is volatile and
#: deliberately absent: it is *expected* to differ between the methods).
_COMPARED_FIELDS = (
    "x",
    "value",
    "feasible",
    "method",
    "evaluations",
    "message",
    "constraint_violation",
)

#: Rounds of the full matrix: every preset × every protocol × every problem
#: per round, with fuzzed requirements and grid sizes.  8 presets × 4
#: protocols × 3 problems × 2 rounds = 192 cases.
MATRIX_ROUNDS = 2

#: Where failing repro tuples are appended (one JSON object per line); CI
#: uploads this file as an artifact when the sweep fails.
FAILURE_LOG = Path("solver-failures.txt")


def _hex(value):
    """Floats as hex (exact), everything else as repr."""
    if isinstance(value, float):
        return float.hex(value)
    if isinstance(value, np.ndarray):
        return [float.hex(float(item)) for item in value.ravel()]
    if isinstance(value, dict):
        return {key: _hex(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_hex(item) for item in value]
    return repr(value)


def assert_results_identical(exhaustive, adaptive, context=""):
    """Assert two SolverResults match field by field, bit for bit."""
    for field in _COMPARED_FIELDS:
        left = getattr(exhaustive, field)
        right = getattr(adaptive, field)
        if isinstance(left, np.ndarray):
            same = np.array_equal(left, right)
        else:
            same = left == right
        assert same, (
            f"{context}: {field} diverged\n"
            f"  exhaustive: {_hex(left)}\n"
            f"  adaptive:   {_hex(right)}"
        )


def _generate_cases():
    """The deterministic full-matrix sweep; the module-level seed pins it.

    Cases are ordered preset-major / protocol / problem within each round,
    so the tier-1 prefix (:data:`FAST_CASES`) covers every protocol and
    every problem.
    """
    preset_names = sorted(preset.name for preset in scenario_presets())
    rng = np.random.default_rng(202608)
    cases = []
    index = 0
    for _ in range(MATRIX_ROUNDS):
        for preset in preset_names:
            for protocol in PROTOCOLS:
                for problem in PROBLEMS:
                    max_delay = float(rng.choice((0.5, 2.0, 4.0, 8.0)))
                    energy_budget = float(rng.choice((0.01, 0.05, 0.12)))
                    grid_n = int(rng.choice((60, 61, 45, 17, 5)))
                    cases.append(
                        pytest.param(
                            preset,
                            protocol,
                            problem,
                            max_delay,
                            energy_budget,
                            grid_n,
                            id=f"{index:03d}-{preset}-{protocol}-{problem}-n{grid_n}",
                        )
                    )
                    index += 1
    return cases


CASES = _generate_cases()
#: Tier-1 subset: covers every protocol and every problem (matrix order)
#: without paying for the full sweep.
FAST_CASES = CASES[:16]


def _problem_instance(problem, model, requirements, grid_n):
    """Objective/space/constraints of one fuzzed problem, or ``None``.

    P4 needs a disagreement point; it is built from exhaustive grid solves
    of (P1) and (P2) at the same resolution — when either is infeasible
    the P4 instance cannot be constructed and the case degenerates to the
    (P1) comparison, which still exercises the infeasible branch.
    """
    if problem == "P1":
        p1 = EnergyMinimizationProblem(model, requirements)
        objective = batched(model.system_energy, model.energy_many)
        return objective, p1.space, p1.constraints(), False
    if problem == "P2":
        p2 = DelayMinimizationProblem(model, requirements)
        objective = batched(model.system_latency, model.latency_many)
        return objective, p2.space, p2.constraints(), False
    p1 = EnergyMinimizationProblem(model, requirements)
    p2 = DelayMinimizationProblem(model, requirements)
    energy_objective = batched(model.system_energy, model.energy_many)
    latency_objective = batched(model.system_latency, model.latency_many)
    try:
        r1 = grid_search(
            energy_objective, p1.space, p1.constraints(), points_per_dimension=grid_n
        )
        r2 = grid_search(
            latency_objective, p2.space, p2.constraints(), points_per_dimension=grid_n
        )
    except SolverError:
        return None
    if not (r1.feasible and r2.feasible):
        return None
    p4 = NashBargainingProblem(
        model,
        requirements,
        disagreement_energy=float(model.system_energy(r2.x)),
        disagreement_delay=float(model.system_latency(r1.x)),
    )
    objective = batched(p4.objective, p4.objective_many)
    return objective, p4.space, p4.constraints(), True


def _run_both(preset, protocol, problem, max_delay, energy_budget, grid_n):
    scenario = scenario_preset(preset).scenario
    model = create_protocol(protocol, scenario)
    requirements = ApplicationRequirements(
        energy_budget=energy_budget,
        max_delay=max_delay,
        sampling_rate=scenario.sampling_rate,
    )
    instance = _problem_instance(problem, model, requirements, grid_n)
    if instance is None:
        instance = _problem_instance("P1", model, requirements, grid_n)
    objective, space, constraints, maximize = instance
    exhaustive_error = adaptive_error = None
    exhaustive = adaptive = None
    try:
        exhaustive = grid_search(
            objective,
            space,
            constraints,
            points_per_dimension=grid_n,
            maximize=maximize,
        )
    except SolverError as error:
        exhaustive_error = str(error)
    try:
        adaptive = adaptive_grid_search(
            objective,
            space,
            constraints,
            points_per_dimension=grid_n,
            maximize=maximize,
        )
    except SolverError as error:
        adaptive_error = str(error)
    return exhaustive, adaptive, exhaustive_error, adaptive_error


def _check_case(preset, protocol, problem, max_delay, energy_budget, grid_n):
    """Run one matrix case; on failure, log the repro tuple and command."""
    case = {
        "preset": preset,
        "protocol": protocol,
        "problem": problem,
        "max_delay": max_delay,
        "energy_budget": energy_budget,
        "grid_n": grid_n,
    }
    repro = (
        "PYTHONPATH=src python -m pytest "
        "tests/optimization/test_adaptive_differential.py "
        f"-m '' -k '{preset}-{protocol}-{problem}-n{grid_n}'"
    )
    context = f"case {case!r}\n  repro: {repro}"
    try:
        exhaustive, adaptive, exhaustive_error, adaptive_error = _run_both(
            preset, protocol, problem, max_delay, energy_budget, grid_n
        )
        assert exhaustive_error == adaptive_error, (
            f"{context}: error behaviour diverged\n"
            f"  exhaustive: {exhaustive_error!r}\n"
            f"  adaptive:   {adaptive_error!r}"
        )
        if exhaustive is not None:
            assert_results_identical(exhaustive, adaptive, context=context)
    except AssertionError:
        with FAILURE_LOG.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(case, sort_keys=True) + "\n")
        raise


class TestFuzzedIdentityFast:
    """Tier-1 subset of the differential sweep."""

    @pytest.mark.parametrize(
        "preset,protocol,problem,max_delay,energy_budget,grid_n", FAST_CASES
    )
    def test_identical(self, preset, protocol, problem, max_delay, energy_budget, grid_n):
        _check_case(preset, protocol, problem, max_delay, energy_budget, grid_n)

    def test_fast_subset_covers_every_protocol_and_problem(self):
        protocols = {case.values[1] for case in FAST_CASES}
        problems = {case.values[2] for case in FAST_CASES}
        assert protocols == set(PROTOCOLS)
        assert problems == set(PROBLEMS)


@pytest.mark.slow
class TestFuzzedIdentityFull:
    """The full matrix sweep (deselected by default; ``-m slow`` runs it)."""

    @pytest.mark.parametrize(
        "preset,protocol,problem,max_delay,energy_budget,grid_n",
        CASES[len(FAST_CASES):],
    )
    def test_identical(self, preset, protocol, problem, max_delay, energy_budget, grid_n):
        _check_case(preset, protocol, problem, max_delay, energy_budget, grid_n)


class TestGameSolutionIdentity:
    """The full game returns an *equal* GameSolution under either method."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_game_solution_equal(self, protocol):
        scenario = scenario_preset("paper-default").scenario
        model = create_protocol(protocol, scenario)
        requirements = ApplicationRequirements(
            energy_budget=0.06, max_delay=6.0, sampling_rate=scenario.sampling_rate
        )
        solutions = {}
        for method in METHODS:
            game = EnergyDelayGame(
                model, requirements, grid_points_per_dimension=24, method=method
            )
            solutions[method] = game.solve()
        assert solutions["exhaustive"] == solutions["adaptive"]

    def test_adaptive_records_work_and_exhaustive_does_not(self):
        scenario = scenario_preset("paper-default").scenario
        model = create_protocol("lmac", scenario)
        requirements = ApplicationRequirements(
            energy_budget=0.06, max_delay=6.0, sampling_rate=scenario.sampling_rate
        )
        exhaustive = EnergyDelayGame(
            model, requirements, grid_points_per_dimension=24, method="exhaustive"
        ).solve()
        adaptive = EnergyDelayGame(
            model, requirements, grid_points_per_dimension=24, method="adaptive"
        ).solve()
        assert exhaustive.solver_work is None
        work = adaptive.solver_work
        assert work is not None
        assert work["coarse_evaluations"] > 0
        # Equality holds even though the volatile counters differ.
        assert exhaustive == adaptive

    def test_paper_resolution_evaluation_reduction(self):
        # The tentpole's claim: >= 5x fewer grid evaluations at the paper's
        # 60-point resolution on the 2D protocol (where the grid bites).
        scenario = scenario_preset("paper-default").scenario
        model = create_protocol("lmac", scenario)
        p1 = EnergyMinimizationProblem(
            model,
            ApplicationRequirements(
                energy_budget=0.06, max_delay=6.0, sampling_rate=scenario.sampling_rate
            ),
        )
        objective = batched(model.system_energy, model.energy_many)
        result = adaptive_grid_search(
            objective, p1.space, p1.constraints(), points_per_dimension=60
        )
        actual = result.work["coarse_evaluations"] + result.work["refined_evaluations"]
        assert result.evaluations == 60 * 60
        assert actual * 5 <= result.evaluations


class TestArtifactIdentity:
    """``solver.method`` is runtime provenance: results don't move."""

    @staticmethod
    def _spec(method: str) -> ExperimentSpec:
        return ExperimentSpec.from_dict(
            {
                "kind": "solve",
                "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
                "protocols": ["xmac", "lmac"],
                "solver": {"grid_points": 20, "method": method},
                "runtime": {"cache": False},
            }
        )

    def test_spec_hash_excludes_method_knobs(self):
        assert self._spec("exhaustive").spec_hash() == self._spec("adaptive").spec_hash()
        base = self._spec("exhaustive")
        tweaked = base.with_solver(coarse_points=9, refine_rounds=2, top_k=5)
        assert base.spec_hash() == tweaked.spec_hash()

    def test_rows_and_artifact_identical_across_methods(self):
        results = {method: run_experiment(self._spec(method)) for method in METHODS}
        assert results["exhaustive"].rows() == results["adaptive"].rows()
        payloads = {}
        for method, result in results.items():
            payload = result.as_dict()
            # The embedded spec honestly records the method it was asked to
            # run with; everything *computed* must be identical, exactly
            # like runtime.workers in the sim_engine precedent.
            payload["spec"]["solver"] = {
                key: value
                for key, value in payload["spec"]["solver"].items()
                if key not in SOLVER_METHOD_KEYS
            }
            payloads[method] = json.dumps(payload, sort_keys=True)
        assert payloads["exhaustive"] == payloads["adaptive"]

    def test_warm_replay_bytes_identical_despite_counters(self, tmp_path):
        # A cold adaptive run records work counters; a warm replay from the
        # store records none.  The artifact must not see the difference.
        from repro.api.engine import runner_for
        from repro.store import ResultStore

        spec = ExperimentSpec.from_dict(
            {
                "kind": "solve",
                "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
                "protocols": ["xmac"],
                "solver": {"grid_points": 20, "method": "adaptive"},
            }
        )
        store = ResultStore(tmp_path / "store")
        cold = run_experiment(spec, runner=runner_for(spec, store=store))
        warm = run_experiment(spec, runner=runner_for(spec, store=store))
        assert any(key.startswith("solver_") for key in cold.metadata)
        assert not any(key.startswith("solver_") for key in warm.metadata)
        assert cold.json_text() == warm.json_text()

    def test_campaign_spec_dict_excludes_method(self):
        spec = CampaignSpec(
            scenarios=("high-rate",), protocols=("xmac",), solver_method="adaptive"
        )
        assert "solver_method" not in spec.as_dict()
        assert "method" not in spec.as_dict()

    def test_cache_key_shared_across_methods(self):
        from repro.runtime.cache import solve_key

        scenario = scenario_preset("paper-default").scenario
        model = create_protocol("xmac", scenario)
        requirements = ApplicationRequirements(
            energy_budget=0.06, max_delay=6.0, sampling_rate=scenario.sampling_rate
        )
        keys = {
            method: solve_key(
                model,
                requirements,
                {
                    "grid_points_per_dimension": 24,
                    "method": method,
                    "coarse_points": 11,
                    "refine_rounds": 3,
                    "top_k": 3,
                },
            )
            for method in METHODS
        }
        assert keys["exhaustive"] == keys["adaptive"]
        bare = solve_key(model, requirements, {"grid_points_per_dimension": 24})
        assert keys["exhaustive"] == bare


class TestEdgeCases:
    """Degenerate inputs both methods must handle the same way."""

    @staticmethod
    def _p1(protocol="xmac", max_delay=6.0, energy_budget=0.06):
        scenario = scenario_preset("paper-default").scenario
        model = create_protocol(protocol, scenario)
        requirements = ApplicationRequirements(
            energy_budget=energy_budget,
            max_delay=max_delay,
            sampling_rate=scenario.sampling_rate,
        )
        problem = EnergyMinimizationProblem(model, requirements)
        objective = batched(model.system_energy, model.energy_many)
        return objective, problem.space, problem.constraints()

    def test_infeasible_everywhere_identical(self):
        objective, space, constraints = self._p1(max_delay=1e-6)
        for n in (2, 17, 60, 61):
            exhaustive = grid_search(
                objective, space, constraints, points_per_dimension=n
            )
            adaptive = adaptive_grid_search(
                objective, space, constraints, points_per_dimension=n
            )
            assert not exhaustive.feasible
            assert_results_identical(exhaustive, adaptive, context=f"infeasible n={n}")

    def test_tiny_grid_identical(self):
        objective, space, constraints = self._p1()
        for n in (2, 3):
            exhaustive = grid_search(
                objective, space, constraints, points_per_dimension=n
            )
            adaptive = adaptive_grid_search(
                objective, space, constraints, points_per_dimension=n
            )
            assert_results_identical(exhaustive, adaptive, context=f"tiny n={n}")

    def test_scalar_objective_falls_back_to_grid_search(self):
        # Without batched twins the adaptive stage has no vectorized path;
        # it must defer to the exhaustive scan rather than crawl per-point.
        _, space, _ = self._p1()
        result = adaptive_grid_search(
            lambda x: float(x[0]), space, (), points_per_dimension=9
        )
        exhaustive = grid_search(
            lambda x: float(x[0]), space, (), points_per_dimension=9
        )
        assert_results_identical(exhaustive, result, context="scalar fallback")

    def test_unknown_method_rejected_everywhere(self):
        objective, space, constraints = self._p1()
        from repro.optimization import hybrid_solve

        with pytest.raises(ConfigurationError, match="unknown solver method"):
            hybrid_solve(objective, space, constraints, method="bisect")
        with pytest.raises(ConfigurationError, match="solver.method"):
            ExperimentSpec.from_dict(
                {"kind": "solve", "solver": {"method": "bisect"}}
            )
        with pytest.raises(ConfigurationError, match="solver_method"):
            ExperimentSpec.from_dict(
                {"kind": "solve", "runtime": {"solver_method": "bisect"}}
            )
        with pytest.raises(ConfigurationError, match="unknown solver method"):
            CampaignSpec(
                scenarios=("high-rate",), protocols=("xmac",), solver_method="bisect"
            )

    @pytest.mark.parametrize(
        "knob,bad",
        [
            ("coarse_points", 1),
            ("coarse_points", 2.5),
            ("refine_rounds", 0),
            ("top_k", 0),
            ("top_k", True),
        ],
    )
    def test_invalid_knobs_rejected(self, knob, bad):
        objective, space, constraints = self._p1()
        with pytest.raises(ConfigurationError, match=f"solver.{knob}"):
            adaptive_grid_search(
                objective, space, constraints, points_per_dimension=9, **{knob: bad}
            )
        with pytest.raises(ConfigurationError, match=f"solver.{knob}"):
            ExperimentSpec.from_dict({"kind": "solve", "solver": {knob: bad}})
