"""Unit tests for the numerical convexity probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import Parameter, ParameterSpace
from repro.optimization.convexity import (
    is_convex_on_grid,
    is_quasiconcave_on_segment,
    sample_hessian_definiteness,
)


@pytest.fixture
def box() -> ParameterSpace:
    return ParameterSpace([Parameter("x", -1.0, 1.0), Parameter("y", -1.0, 1.0)])


@pytest.fixture
def positive_box() -> ParameterSpace:
    return ParameterSpace([Parameter("x", 0.1, 5.0)])


class TestConvexityProbes:
    def test_quadratic_is_convex(self, box):
        assert is_convex_on_grid(lambda p: float(p[0] ** 2 + p[1] ** 2), box)

    def test_negative_quadratic_is_not_convex(self, box):
        assert not is_convex_on_grid(lambda p: float(-(p[0] ** 2) - p[1] ** 2), box)

    def test_one_over_x_is_convex_on_positive_box(self, positive_box):
        assert is_convex_on_grid(lambda p: float(1.0 / p[0] + p[0]), positive_box)

    def test_sine_is_not_convex(self, box):
        assert not is_convex_on_grid(lambda p: float(np.sin(3 * p[0]) + np.sin(3 * p[1])), box)


class TestQuasiConcavity:
    def test_concave_log_is_quasiconcave(self, positive_box):
        assert is_quasiconcave_on_segment(lambda p: float(np.log(p[0])), positive_box)

    def test_unimodal_bump_is_quasiconcave(self, box):
        assert is_quasiconcave_on_segment(
            lambda p: float(np.exp(-(p[0] ** 2) - p[1] ** 2)), box
        )

    def test_bimodal_function_is_not_quasiconcave(self, box):
        def two_bumps(p: np.ndarray) -> float:
            return float(
                np.exp(-10 * (p[0] - 0.6) ** 2) + np.exp(-10 * (p[0] + 0.6) ** 2)
            )

        assert not is_quasiconcave_on_segment(two_bumps, box, samples=300, seed=2)


class TestHessianSampling:
    def test_convex_function_has_nonnegative_eigenvalues(self, box):
        minimum, maximum = sample_hessian_definiteness(
            lambda p: float(p[0] ** 2 + 2 * p[1] ** 2), box
        )
        assert minimum >= -1e-4
        assert maximum > 0

    def test_concave_function_has_nonpositive_eigenvalues(self, box):
        minimum, maximum = sample_hessian_definiteness(
            lambda p: float(-(p[0] ** 2) - 2 * p[1] ** 2), box
        )
        assert maximum <= 1e-4
        assert minimum < 0

    def test_saddle_has_mixed_eigenvalues(self, box):
        minimum, maximum = sample_hessian_definiteness(
            lambda p: float(p[0] ** 2 - p[1] ** 2), box
        )
        assert minimum < 0 < maximum
