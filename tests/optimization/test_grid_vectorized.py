"""The vectorized grid-search path: equivalence, detection, forcing.

``grid_search`` has two evaluation paths that must be interchangeable bit
for bit; these tests pin the contract on the real solver problems (P1, P2,
P4) and on synthetic objectives that exercise the corner cases the scalar
loop defines: non-finite margins, non-finite objectives, infeasible-only
grids, and exact ties (first optimum wins).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import Parameter, ParameterSpace
from repro.core.problems import (
    DelayMinimizationProblem,
    EnergyMinimizationProblem,
    NashBargainingProblem,
)
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import SolverError
from repro.optimization.grid import batched, grid_search
from repro.protocols.registry import PAPER_PROTOCOL_NAMES, create_protocol
from repro.scenario import default_scenario


def _requirements(scenario) -> ApplicationRequirements:
    return ApplicationRequirements(
        energy_budget=0.06, max_delay=6.0, sampling_rate=scenario.sampling_rate
    )


def _assert_same_result(a, b):
    assert np.array_equal(a.x, b.x)
    assert a.value == b.value
    assert a.feasible == b.feasible
    assert a.evaluations == b.evaluations
    assert a.constraint_violation == b.constraint_violation
    assert a.message == b.message


@pytest.mark.parametrize("protocol", PAPER_PROTOCOL_NAMES)
@pytest.mark.parametrize("maximize", [False, True])
def test_vectorized_path_bit_identical_on_solver_problems(protocol, maximize):
    scenario = default_scenario()
    model = create_protocol(protocol, scenario)
    requirements = _requirements(scenario)
    if maximize:
        problem = NashBargainingProblem(
            model, requirements, disagreement_energy=0.06, disagreement_delay=6.0
        )
        objective = batched(problem.objective, problem.objective_many)
    else:
        problem = EnergyMinimizationProblem(model, requirements)
        objective = problem._energy_objective()  # noqa: SLF001 - testing the wiring
    constraints = problem.constraints()
    kwargs = {"points_per_dimension": 25, "maximize": maximize}
    scalar = grid_search(objective, problem.space, constraints, vectorize=False, **kwargs)
    vectorized = grid_search(objective, problem.space, constraints, vectorize=True, **kwargs)
    auto = grid_search(objective, problem.space, constraints, **kwargs)
    _assert_same_result(scalar, vectorized)
    _assert_same_result(scalar, auto)


@pytest.mark.parametrize("protocol", PAPER_PROTOCOL_NAMES)
def test_p2_problem_bit_identical(protocol):
    scenario = default_scenario()
    model = create_protocol(protocol, scenario)
    problem = DelayMinimizationProblem(model, _requirements(scenario))
    objective = problem._latency_objective()  # noqa: SLF001
    constraints = problem.constraints()
    scalar = grid_search(
        objective, problem.space, constraints, points_per_dimension=25, vectorize=False
    )
    vectorized = grid_search(
        objective, problem.space, constraints, points_per_dimension=25, vectorize=True
    )
    _assert_same_result(scalar, vectorized)


@pytest.mark.parametrize("protocol", PAPER_PROTOCOL_NAMES)
def test_full_game_solution_bit_identical(protocol):
    """End to end: a game solved with the vectorized grid stage equals the
    scalar-stage solve on every reported float."""
    scenario = default_scenario()
    model = create_protocol(protocol, scenario)
    requirements = _requirements(scenario)
    fast = EnergyDelayGame(model, requirements, grid_points_per_dimension=30).solve()
    slow = EnergyDelayGame(
        model, requirements, grid_points_per_dimension=30, vectorize=False
    ).solve()
    assert fast.energy_best == slow.energy_best
    assert fast.delay_best == slow.delay_best
    assert fast.energy_worst == slow.energy_worst
    assert fast.delay_worst == slow.delay_worst
    assert fast.energy_star == slow.energy_star
    assert fast.delay_star == slow.delay_star
    assert fast.bargaining.nash_product == slow.bargaining.nash_product


# ---------------------------------------------------------------------- #
# Synthetic corner cases
# ---------------------------------------------------------------------- #


def _space() -> ParameterSpace:
    return ParameterSpace([Parameter(name="x", lower=0.0, upper=1.0)])


def _with_many(scalar_fn, vector_fn):
    return batched(scalar_fn, vector_fn)


def test_batched_wrapper_forwards_and_carries_many():
    wrapped = batched(lambda x: float(x[0]) ** 2, lambda grid: grid[:, 0] ** 2)
    assert wrapped(np.array([3.0])) == 9.0
    assert np.array_equal(wrapped.many(np.array([[2.0], [4.0]])), np.array([4.0, 16.0]))


def test_auto_detection_falls_back_without_many():
    """A plain (un-batched) constraint forces the scalar loop; results match."""
    objective = _with_many(lambda x: float(x[0]), lambda grid: grid[:, 0])
    plain_constraint = lambda x: float(x[0]) - 0.25  # noqa: E731 - no .many twin
    result = grid_search(objective, _space(), [plain_constraint], points_per_dimension=17)
    forced = grid_search(
        objective, _space(), [plain_constraint], points_per_dimension=17, vectorize=False
    )
    _assert_same_result(result, forced)


def test_vectorize_true_requires_batched_twins():
    with pytest.raises(SolverError, match="batched .many twin"):
        grid_search(lambda x: float(x[0]), _space(), vectorize=True)


def test_non_finite_margins_skip_points_identically():
    objective = _with_many(lambda x: float(x[0]), lambda grid: grid[:, 0])
    constraint = _with_many(
        lambda x: float("nan") if x[0] < 0.5 else 1.0,
        lambda grid: np.where(grid[:, 0] < 0.5, np.nan, 1.0),
    )
    scalar = grid_search(
        objective, _space(), [constraint], points_per_dimension=21, vectorize=False
    )
    vectorized = grid_search(
        objective, _space(), [constraint], points_per_dimension=21, vectorize=True
    )
    _assert_same_result(scalar, vectorized)
    assert scalar.x[0] >= 0.5  # the nan half was skipped


def test_non_finite_objective_skips_points_identically():
    objective = _with_many(
        lambda x: float("inf") if x[0] < 0.5 else float(x[0]),
        lambda grid: np.where(grid[:, 0] < 0.5, np.inf, grid[:, 0]),
    )
    scalar = grid_search(objective, _space(), points_per_dimension=21, vectorize=False)
    vectorized = grid_search(objective, _space(), points_per_dimension=21, vectorize=True)
    _assert_same_result(scalar, vectorized)
    assert scalar.x[0] >= 0.5


def test_all_points_non_finite_raises_identically():
    objective = _with_many(
        lambda x: float("nan"), lambda grid: np.full(grid.shape[0], np.nan)
    )
    with pytest.raises(SolverError):
        grid_search(objective, _space(), points_per_dimension=5, vectorize=False)
    with pytest.raises(SolverError):
        grid_search(objective, _space(), points_per_dimension=5, vectorize=True)


def test_infeasible_grid_returns_least_violation_identically():
    objective = _with_many(lambda x: float(x[0]), lambda grid: grid[:, 0])
    constraint = _with_many(
        lambda x: -1.0 - float(x[0]), lambda grid: -1.0 - grid[:, 0]
    )
    scalar = grid_search(
        objective, _space(), [constraint], points_per_dimension=11, vectorize=False
    )
    vectorized = grid_search(
        objective, _space(), [constraint], points_per_dimension=11, vectorize=True
    )
    _assert_same_result(scalar, vectorized)
    assert not scalar.feasible
    assert scalar.x[0] == 0.0  # least violation at the lower edge


def test_exact_ties_keep_first_grid_point_identically():
    """A constant objective ties everywhere; both paths keep the first point."""
    objective = _with_many(lambda x: 1.0, lambda grid: np.ones(grid.shape[0]))
    scalar = grid_search(objective, _space(), points_per_dimension=13, vectorize=False)
    vectorized = grid_search(objective, _space(), points_per_dimension=13, vectorize=True)
    _assert_same_result(scalar, vectorized)
    assert scalar.x[0] == 0.0
