"""SolveCache × ResultStore: read-through, write-behind, promotion."""

from __future__ import annotations

from repro.core.tradeoff import EnergyDelayGame
from repro.runtime.cache import SolveCache, solve_key
from repro.store import ResultStore, key_digest

FAST = {"grid_points_per_dimension": 15, "random_starts": 1}


class TestReadThroughWriteBehind:
    def test_put_writes_behind_to_disk(self, tmp_path, xmac, requirements):
        store = ResultStore(tmp_path / "store")
        cache = SolveCache(store=store)
        key = solve_key(xmac, requirements, FAST)
        solution = EnergyDelayGame(xmac, requirements, **FAST).solve()
        cache.put(key, solution)
        assert store.stats().puts == 1
        assert key_digest(key) in store

    def test_fresh_cache_reads_through(self, tmp_path, xmac, requirements):
        store = ResultStore(tmp_path / "store")
        key = solve_key(xmac, requirements, FAST)
        solution = EnergyDelayGame(xmac, requirements, **FAST).solve()
        SolveCache(store=store).put(key, solution)

        # A new cache instance (new process, same store directory) answers
        # from disk; the store lookup counts as a cache hit.
        cold = SolveCache(store=ResultStore(tmp_path / "store"))
        recovered = cold.get(key)
        assert recovered == solution
        assert cold.stats().hits == 1

    def test_store_hit_promotes_to_memory(self, tmp_path, xmac, requirements):
        store = ResultStore(tmp_path / "store")
        key = solve_key(xmac, requirements, FAST)
        SolveCache(store=store).put(key, EnergyDelayGame(xmac, requirements, **FAST).solve())

        warm_store = ResultStore(tmp_path / "store")
        cache = SolveCache(store=warm_store)
        cache.get(key)
        cache.get(key)
        # Second get is answered from memory: only one disk lookup happened.
        assert warm_store.stats().hits == 1
        assert cache.stats().hits == 2

    def test_memory_hit_does_not_rewrite_store(self, tmp_path, xmac, requirements):
        store = ResultStore(tmp_path / "store")
        cache = SolveCache(store=store)
        key = solve_key(xmac, requirements, FAST)
        solution = EnergyDelayGame(xmac, requirements, **FAST).solve()
        cache.put(key, solution)
        cache.get(key)
        cache.get(key)
        assert store.stats().puts == 1

    def test_miss_everywhere(self, tmp_path, xmac, requirements):
        cache = SolveCache(store=ResultStore(tmp_path / "store"))
        assert cache.get(solve_key(xmac, requirements, FAST)) is None
        assert cache.stats().misses == 1

    def test_cache_without_store_unchanged(self, xmac, requirements):
        cache = SolveCache()
        assert cache.store is None
        key = solve_key(xmac, requirements, FAST)
        cache.put(key, EnergyDelayGame(xmac, requirements, **FAST).solve())
        assert cache.get(key) is not None
