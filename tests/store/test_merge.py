"""merge_stores: disjoint/overlapping/conflicting shards, byte identity."""

from __future__ import annotations

import filecmp
import json

import pytest

from repro.exceptions import StoreError
from repro.store import ResultStore, key_digest, merge_stores

PAYLOAD = {"seed": 3, "energy": 0.5, "delay": 1.25, "delivery_ratio": 1.0,
           "generated": 2, "delivered": 2, "dropped": 0}


def filled(root, *names):
    store = ResultStore(root)
    for name in names:
        store.put(key_digest(("replication", name)), dict(PAYLOAD), kind="replication")
    return store


def tree_identical(left, right):
    """Byte-for-byte equality of two store trees (no shallow stat compare)."""
    left_files = {path.relative_to(left): path for path in sorted(left.rglob("*")) if path.is_file()}
    right_files = {path.relative_to(right): path for path in sorted(right.rglob("*")) if path.is_file()}
    if left_files.keys() != right_files.keys():
        return False
    return all(
        filecmp.cmp(str(left_files[name]), str(right_files[name]), shallow=False)
        for name in left_files
    )


class TestMerge:
    def test_disjoint_shards(self, tmp_path):
        filled(tmp_path / "a", "one", "two")
        filled(tmp_path / "b", "three")
        report = merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "out")
        assert (report.sources, report.written, report.shared) == (2, 3, 0)
        assert ResultStore(tmp_path / "out").record_count() == 3

    def test_identical_overlap_is_shared(self, tmp_path):
        filled(tmp_path / "a", "one", "both")
        filled(tmp_path / "b", "two", "both")
        report = merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "out")
        assert (report.written, report.shared) == (3, 1)

    def test_merged_tree_matches_single_run(self, tmp_path):
        # A sharded-then-merged store must be file-identical to the store a
        # single run over all keys would have written.
        filled(tmp_path / "all", "one", "two", "three")
        filled(tmp_path / "a", "one", "two")
        filled(tmp_path / "b", "three")
        merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "out")
        assert tree_identical(tmp_path / "all", tmp_path / "out")

    def test_merge_into_existing_destination(self, tmp_path):
        filled(tmp_path / "out", "one")
        filled(tmp_path / "b", "two")
        report = merge_stores([tmp_path / "b"], tmp_path / "out")
        assert report.written == 1
        assert ResultStore(tmp_path / "out").record_count() == 2

    def test_conflicting_payloads_hard_error(self, tmp_path):
        filled(tmp_path / "a", "contested")
        other = ResultStore(tmp_path / "b")
        other.put(
            key_digest(("replication", "contested")),
            dict(PAYLOAD, energy=9.0),
            kind="replication",
        )
        with pytest.raises(StoreError, match="merge conflict"):
            merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "out")

    def test_corrupt_source_hard_error(self, tmp_path):
        store = filled(tmp_path / "a", "victim")
        digest = key_digest(("replication", "victim"))
        store._record_path(digest).write_text("{ not json")
        with pytest.raises(StoreError, match="drop-corrupt"):
            merge_stores([tmp_path / "a"], tmp_path / "out")

    def test_missing_source_hard_error(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            merge_stores([tmp_path / "nowhere"], tmp_path / "out")

    def test_merge_is_associative_on_bytes(self, tmp_path):
        filled(tmp_path / "a", "one")
        filled(tmp_path / "b", "two")
        filled(tmp_path / "c", "three")
        merge_stores([tmp_path / "a", tmp_path / "b", tmp_path / "c"], tmp_path / "abc")
        merge_stores([tmp_path / "b", tmp_path / "c"], tmp_path / "bc")
        merge_stores([tmp_path / "a", tmp_path / "bc"], tmp_path / "a_bc")
        assert tree_identical(tmp_path / "abc", tmp_path / "a_bc")
