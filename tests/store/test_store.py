"""ResultStore: layout, atomic puts, corruption policy, maintenance."""

from __future__ import annotations

import json
import threading
import warnings

import pytest

from repro.exceptions import StoreError
from repro.store import (
    RECORD_SCHEMA,
    ResultStore,
    StoreWarning,
    key_digest,
    payload_sha256,
)

PAYLOAD = {"seed": 1, "energy": 0.25, "delay": None, "delivery_ratio": 1.0,
           "generated": 4, "delivered": 4, "dropped": 0}


def digest_of(*parts):
    return key_digest(tuple(parts))


class TestLayout:
    def test_initializes_manifest_and_dirs(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root)
        manifest = json.loads((root / "store.json").read_text())
        assert manifest == {"schema": "repro.store", "schema_version": 1}
        assert (root / "records").is_dir()
        assert (root / "tmp").is_dir()

    def test_reopens_existing_store(self, tmp_path):
        first = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "x")
        first.put(digest, PAYLOAD, kind="replication")
        second = ResultStore(tmp_path / "store")
        assert second.get(digest) == PAYLOAD

    def test_refuses_foreign_directory(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        with pytest.raises(StoreError, match="not a result store"):
            ResultStore(tmp_path)

    def test_create_false_requires_existing_store(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            ResultStore(tmp_path / "missing", create=False)

    def test_rejects_future_schema_version(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "store.json").write_text(
            json.dumps({"schema": "repro.store", "schema_version": 99})
        )
        with pytest.raises(StoreError, match="schema version"):
            ResultStore(root)

    def test_records_sharded_by_digest_prefix(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "shard-me")
        store.put(digest, PAYLOAD, kind="replication")
        assert (tmp_path / "store" / "records" / digest[:2] / f"{digest}.json").exists()


class TestGetPut:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "a")
        assert store.get(digest) is None
        assert store.put(digest, PAYLOAD, kind="replication") is True
        assert store.get(digest) == PAYLOAD
        assert digest in store

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "a")
        assert store.put(digest, PAYLOAD, kind="replication") is True
        assert store.put(digest, dict(PAYLOAD, energy=9.9), kind="replication") is False
        assert store.get(digest) == PAYLOAD  # first write wins, never rewritten
        assert store.stats().puts == 1

    def test_rejects_unknown_kind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(StoreError, match="unknown record kind"):
            store.put(digest_of("x"), PAYLOAD, kind="mystery")

    def test_no_staging_leftovers_after_puts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for index in range(5):
            store.put(digest_of("replication", index), PAYLOAD, kind="replication")
        assert list((tmp_path / "store" / "tmp").iterdir()) == []

    def test_unserializable_payload_leaves_no_record(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "bad")
        with pytest.raises(StoreError):
            store.put(digest, {"value": object()}, kind="replication")
        assert store.get(digest) is None  # miss, not a partial file
        assert store.verify().ok

    def test_stats_count_this_instance_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "a")
        store.get(digest)
        store.put(digest, PAYLOAD, kind="replication")
        store.get(digest)
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)
        assert ResultStore(tmp_path / "store").stats().puts == 0

    def test_stats_report_disk_records_and_bytes(self, tmp_path):
        # records/bytes describe the directory, so every instance — and
        # the service's progress endpoint — sees the same numbers.
        store = ResultStore(tmp_path / "store")
        assert (store.stats().records, store.stats().bytes) == (0, 0)
        for index in range(3):
            store.put(digest_of("replication", index), PAYLOAD, kind="replication")
        stats = store.stats()
        assert stats.records == 3
        expected = sum(
            path.stat().st_size
            for path in (tmp_path / "store" / "records").rglob("*.json")
        )
        assert stats.bytes == expected
        other = ResultStore(tmp_path / "store").stats()
        assert (other.records, other.bytes) == (3, expected)
        assert other.as_dict()["store_records"] == 3
        assert other.as_dict()["store_bytes"] == expected


class TestCorruption:
    def _stored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "victim")
        store.put(digest, PAYLOAD, kind="replication")
        return store, digest, store._record_path(digest)

    def test_truncated_record_is_a_miss_with_warning(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.warns(StoreWarning, match="corrupt"):
            assert store.get(digest) is None
        assert store.stats().corrupt == 1

    def test_tampered_payload_fails_integrity(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        record = json.loads(path.read_text())
        record["payload"]["energy"] = 123.0  # hash no longer matches
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        with pytest.warns(StoreWarning, match="integrity"):
            assert store.get(digest) is None

    def test_record_filed_under_wrong_key(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        other = digest_of("replication", "other")
        wrong_home = store._record_path(other)
        wrong_home.parent.mkdir(parents=True, exist_ok=True)
        wrong_home.write_text(path.read_text())
        with pytest.warns(StoreWarning, match="claims key"):
            assert store.get(other) is None

    def test_internally_consistent_rewrite_is_accepted(self, tmp_path):
        # The integrity hash is an anti-corruption check, not an
        # anti-tamper seal: a rewrite that also refreshes payload_sha256
        # reads back fine.  (Cross-machine disagreement is what
        # merge_stores' byte-compare catches.)
        store, digest, path = self._stored(tmp_path)
        record = json.loads(path.read_text())
        record["payload"]["energy"] = 123.0
        record["payload_sha256"] = payload_sha256(record["payload"])
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        assert store.get(digest) == record["payload"]

    def test_verify_reports_corrupt_records(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        clean = digest_of("replication", "clean")
        store.put(clean, PAYLOAD, kind="replication")
        path.write_text("{ not json")
        report = store.verify()
        assert not report.ok
        assert report.checked == 2
        assert [entry[0] for entry in report.corrupt] == [digest]

    def test_gc_drops_corrupt_and_tmp(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        (tmp_path / "store" / "tmp" / "orphan.tmp").write_text("partial")
        path.write_text("{ not json")
        report = store.gc(drop_corrupt=True)
        assert (report.tmp_removed, report.corrupt_removed) == (1, 1)
        assert store.record_count() == 0
        assert store.verify().ok

    def test_gc_keeps_corrupt_by_default(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        path.write_text("{ not json")
        assert store.gc().corrupt_removed == 0
        assert store.record_count() == 1


class TestConcurrency:
    def test_racing_writers_to_same_key(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "contested")
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            barrier.wait()
            try:
                store.put(digest, PAYLOAD, kind="replication")
            except Exception as error:  # noqa: BLE001 - the test asserts none occur
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.get(digest) == PAYLOAD
        assert store.record_count() == 1
        assert store.verify().ok
        assert list((tmp_path / "store" / "tmp").iterdir()) == []

    def test_two_handles_one_directory(self, tmp_path):
        left = ResultStore(tmp_path / "store")
        right = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "shared")
        assert left.put(digest, PAYLOAD, kind="replication") is True
        assert right.put(digest, PAYLOAD, kind="replication") is False
        assert right.get(digest) == PAYLOAD


class TestIntrospection:
    def test_digests_sorted(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digests = [digest_of("replication", index) for index in range(6)]
        for digest in digests:
            store.put(digest, PAYLOAD, kind="replication")
        assert list(store.digests()) == sorted(digests)

    def test_counts_by_kind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(digest_of("replication", 1), PAYLOAD, kind="replication")
        store.put(digest_of("replication", 2), PAYLOAD, kind="replication")
        assert store.counts_by_kind() == {"replication": 2}

    def test_record_text_is_canonical(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = digest_of("replication", "canon")
        store.put(digest, PAYLOAD, kind="replication")
        text = store.record_text(digest)
        record = json.loads(text)
        assert record["schema"] == RECORD_SCHEMA
        assert text == json.dumps(record, indent=2, sort_keys=True) + "\n"
