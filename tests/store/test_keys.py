"""Content-addressing: digest determinism, distinctness, type safety."""

from __future__ import annotations

import pytest

from repro.exceptions import StoreError
from repro.protocols.xmac import XMACModel
from repro.runtime.cache import freeze, model_fingerprint, solve_key
from repro.store import key_digest, replication_record_key

HEX_CHARS = set("0123456789abcdef")


class TestKeyDigest:
    def test_is_64_hex_chars(self):
        digest = key_digest(("solve", "abc", 1.5))
        assert len(digest) == 64
        assert set(digest) <= HEX_CHARS

    def test_deterministic(self):
        key = ("solve", "fp", freeze({"max_delay": 2.0}), freeze({"grid": 15}))
        assert key_digest(key) == key_digest(key)

    def test_nested_tuples_participate(self):
        assert key_digest((("a", "b"), "c")) != key_digest((("a",), "b", "c"))
        assert key_digest(("a", ("b", "c"))) != key_digest((("a", "b"), "c"))

    def test_type_tags_keep_lookalikes_apart(self):
        # The canonical encoding is type-tagged and length-prefixed, so
        # values with identical string renderings cannot collide.
        lookalikes = [(1,), (1.0,), ("1",), (b"1",), (True,), ((1,),)]
        digests = {key_digest(key) for key in lookalikes}
        assert len(digests) == len(lookalikes)

    def test_none_and_booleans(self):
        assert key_digest((None,)) != key_digest((False,))
        assert key_digest((True,)) != key_digest((False,))

    def test_float_precision_is_exact(self):
        assert key_digest((0.1,)) != key_digest((0.1 + 1e-16,)) or (0.1 == 0.1 + 1e-16)
        assert key_digest((0.5,)) != key_digest((0.5000000001,))

    def test_rejects_unfrozen_components(self):
        with pytest.raises(StoreError):
            key_digest(("solve", {"not": "frozen"}))
        with pytest.raises(StoreError):
            key_digest(("solve", [1, 2]))

    def test_solve_key_digests(self, xmac, requirements):
        # The in-memory cache key is directly digestible — the property the
        # read-through/write-behind store backend depends on.
        key = solve_key(xmac, requirements, {"grid_points_per_dimension": 15})
        assert key_digest(key) == key_digest(
            solve_key(xmac, requirements, {"grid_points_per_dimension": 15})
        )


class TestReplicationRecordKey:
    def test_shape_and_tag(self, xmac):
        key = replication_record_key(xmac, {"wakeup_interval": 0.3}, 300.0, 7)
        assert key[0] == "replication"
        assert key[1] == model_fingerprint(xmac)
        assert key[3] == 300.0
        assert key[4] == 7

    def test_distinct_per_component(self, xmac, paper_scenario):
        base = replication_record_key(xmac, {"wakeup_interval": 0.3}, 300.0, 7)
        variants = [
            replication_record_key(xmac, {"wakeup_interval": 0.31}, 300.0, 7),
            replication_record_key(xmac, {"wakeup_interval": 0.3}, 600.0, 7),
            replication_record_key(xmac, {"wakeup_interval": 0.3}, 300.0, 8),
            replication_record_key(
                XMACModel(paper_scenario), {"wakeup_interval": 0.3}, 300.0, 7
            ),
        ]
        digests = {key_digest(variant) for variant in variants}
        assert len(digests) == len(variants)
        assert key_digest(base) not in digests

    def test_disjoint_from_solve_family(self, xmac, requirements):
        solve = key_digest(solve_key(xmac, requirements, {}))
        replication = key_digest(
            replication_record_key(xmac, {"wakeup_interval": 0.3}, 300.0, 1)
        )
        assert solve != replication

    def test_int_like_seed_normalized(self, xmac):
        import numpy as np

        params = {"wakeup_interval": 0.3}
        assert key_digest(
            replication_record_key(xmac, params, 300.0, np.int64(7))
        ) == key_digest(replication_record_key(xmac, params, 300.0, 7))
