"""GameSolution JSON codec: exact round-trips, strict decode errors."""

from __future__ import annotations

import json

import pytest

from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import StoreError
from repro.network.topology import RingTopology
from repro.protocols.xmac import XMACModel
from repro.scenario import Scenario
from repro.store import solution_from_payload, solution_to_payload

FAST = {"grid_points_per_dimension": 15, "random_starts": 1}


@pytest.fixture(scope="module")
def solution():
    scenario = Scenario(topology=RingTopology(depth=4, density=6), sampling_rate=1 / 600)
    requirements = ApplicationRequirements(
        energy_budget=0.06, max_delay=6.0, sampling_rate=scenario.sampling_rate
    )
    return EnergyDelayGame(XMACModel(scenario), requirements, **FAST).solve()


class TestRoundTrip:
    def test_exact_equality(self, solution):
        assert solution_from_payload(solution_to_payload(solution)) == solution

    def test_survives_json_serialization(self, solution):
        # The store writes the payload through json.dumps; shortest-repr
        # float round-tripping must make the decoded solution bit-identical.
        payload = json.loads(json.dumps(solution_to_payload(solution)))
        decoded = solution_from_payload(payload)
        assert decoded == solution
        assert decoded.bargaining.point.energy == solution.bargaining.point.energy
        assert decoded.bargaining.point.parameters == solution.bargaining.point.parameters

    def test_payload_is_plain_json(self, solution):
        payload = solution_to_payload(solution)
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload

    def test_solver_metadata_preserved(self, solution):
        decoded = solution_from_payload(solution_to_payload(solution))
        assert decoded.bargaining.solver == solution.bargaining.solver
        assert decoded.bargaining.evaluations == solution.bargaining.evaluations
        assert decoded.energy_optimum.binding_constraint == (
            solution.energy_optimum.binding_constraint
        )


class TestDecodeErrors:
    def test_missing_field(self, solution):
        payload = solution_to_payload(solution)
        del payload["bargaining"]
        with pytest.raises(StoreError, match="malformed solve payload"):
            solution_from_payload(payload)

    def test_wrong_shape(self):
        with pytest.raises(StoreError):
            solution_from_payload({"protocol": "xmac"})

    def test_foreign_kind_payload(self):
        # A replication payload filed under a solve key must error, not
        # produce a garbage solution.
        replication_payload = {
            "seed": 1,
            "energy": 0.001,
            "delay": 0.5,
            "delivery_ratio": 1.0,
            "generated": 10,
            "delivered": 10,
            "dropped": 0,
        }
        with pytest.raises(StoreError):
            solution_from_payload(replication_payload)

    def test_non_numeric_field(self, solution):
        payload = solution_to_payload(solution)
        payload["energy_budget"] = "not-a-number"
        with pytest.raises(StoreError):
            solution_from_payload(payload)
