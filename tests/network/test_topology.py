"""Unit tests for the ring topology and concrete deployments."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.network.deployment import chain_deployment, generate_deployment, ring_deployment
from repro.network.topology import RingTopology, build_gathering_tree, ring_histogram


class TestRingTopology:
    def test_nodes_in_ring_follows_annulus_area(self):
        topology = RingTopology(depth=5, density=8)
        assert topology.nodes_in_ring(1) == 8
        assert topology.nodes_in_ring(2) == 24
        assert topology.nodes_in_ring(5) == 8 * 9

    def test_total_nodes_is_density_times_depth_squared(self):
        topology = RingTopology(depth=5, density=8)
        assert topology.total_nodes() == 8 * 25
        assert topology.total_nodes() == pytest.approx(
            sum(topology.nodes_in_ring(d) for d in topology.rings())
        )

    def test_descendants_decrease_with_ring(self):
        topology = RingTopology(depth=6, density=4)
        descendants = [topology.descendants_per_node(d) for d in topology.rings()]
        assert descendants == sorted(descendants, reverse=True)
        assert descendants[-1] == 0.0

    def test_ring1_descendants_cover_the_rest_of_the_network(self):
        topology = RingTopology(depth=5, density=8)
        # D^2 - 1 descendants split over the (2*1 - 1) = 1 "slots" per node.
        assert topology.descendants_per_node(1) == pytest.approx(24.0)

    def test_children_per_node_positive_except_last_ring(self):
        topology = RingTopology(depth=4, density=5)
        for ring in range(1, 4):
            assert topology.children_per_node(ring) > 0
        assert topology.children_per_node(4) == 0.0

    def test_bottleneck_and_delay_critical_rings(self):
        topology = RingTopology(depth=7, density=3)
        assert topology.bottleneck_ring == 1
        assert topology.delay_critical_ring == 7

    def test_invalid_ring_index_rejected(self):
        topology = RingTopology(depth=3, density=3)
        with pytest.raises(ConfigurationError):
            topology.nodes_in_ring(0)
        with pytest.raises(ConfigurationError):
            topology.nodes_in_ring(4)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            RingTopology(depth=0, density=5)
        with pytest.raises(ConfigurationError):
            RingTopology(depth=5, density=0)

    def test_describe_contains_totals(self):
        info = RingTopology(depth=3, density=4).describe()
        assert info["total_nodes"] == 36


class TestDeployments:
    def test_chain_deployment_depth_and_parents(self):
        deployment = chain_deployment(depth=5)
        assert deployment.depth == 5
        assert deployment.parent_of(3) == 2
        assert deployment.parent_of(1) == 0
        assert deployment.path_to_sink(5) == [5, 4, 3, 2, 1, 0]

    def test_chain_subtree_sizes(self):
        deployment = chain_deployment(depth=4)
        assert deployment.subtree_size(1) == 4
        assert deployment.subtree_size(4) == 1

    def test_ring_deployment_matches_analytical_populations(self):
        deployment = ring_deployment(depth=3, density=5, seed=2)
        histogram = ring_histogram(deployment)
        assert histogram == {1: 5, 2: 15, 3: 25}
        assert deployment.depth == 3

    def test_ring_deployment_every_node_routes_to_sink(self):
        deployment = ring_deployment(depth=3, density=4, seed=0)
        for node in deployment.sensor_ids:
            path = deployment.path_to_sink(node)
            assert path[-1] == 0
            assert len(path) - 1 == deployment.ring_of[node]

    def test_ring_deployment_balances_children(self):
        deployment = ring_deployment(depth=3, density=6, seed=1)
        ring1 = deployment.nodes_in_ring(1)
        loads = [deployment.subtree_size(node) for node in ring1]
        assert max(loads) <= 2 * min(loads)

    def test_generate_deployment_is_connected_and_reproducible(self):
        first = generate_deployment(depth=3, density=8, seed=7)
        second = generate_deployment(depth=3, density=8, seed=7)
        assert first.positions == second.positions
        assert set(first.sensor_ids) == set(second.sensor_ids)

    def test_generate_deployment_summary_roundtrip(self):
        deployment = generate_deployment(depth=3, density=8, seed=7)
        summary = deployment.to_ring_topology()
        assert summary.depth == deployment.depth
        assert summary.density >= 1

    def test_build_gathering_tree_rejects_disconnected_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        with pytest.raises(ConfigurationError):
            build_gathering_tree(graph, sink=0)

    def test_build_gathering_tree_requires_known_sink(self):
        import networkx as nx

        graph = nx.path_graph(3)
        with pytest.raises(ConfigurationError):
            build_gathering_tree(graph, sink=99)

    def test_ring_deployment_invalid_spacing_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_deployment(depth=3, density=4, spacing_factor=0.95)
